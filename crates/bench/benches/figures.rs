//! Timed smoke runs of the paper-figure experiments (no external harness).
//!
//! Each experiment from `verdict_bench` is run once at a reduced scale and
//! its wall-clock time reported; the `reproduce` binary runs the same
//! experiments at full scale with the complete tables.  Run with:
//!
//! ```text
//! cargo bench -p verdict-bench --bench figures
//! ```

use std::time::Instant;
use verdict_bench::*;

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = Instant::now();
    let out = f();
    println!("{label:<40} {:>8.2} ms", t0.elapsed().as_secs_f64() * 1e3);
    out
}

fn main() {
    println!("# figures — paper-experiment smoke timings (reduced scale)\n");
    let ctx = timed("workload_context(0.05, 0.08, 0.05)", || {
        workload_context(0.05, 0.08, 0.05)
    });
    let rows = timed("fig4_9_10 speedup_experiment", || speedup_experiment(&ctx));
    assert!(!rows.is_empty(), "speedup experiment produced no rows");

    timed("fig5 scaling_experiment", || {
        scaling_experiment(&[0.05, 0.1])
    });
    timed("fig6 integrated_comparison", || integrated_comparison(&ctx));
    timed("table2 native_approx_comparison", || {
        native_approx_comparison(&ctx)
    });
    timed("fig7 estimation_overhead(10k, b=25)", || {
        estimation_overhead(10_000, 25)
    });
    timed("fig8a selectivity_sweep", || {
        accuracy::selectivity_sweep(&[0.1, 0.5, 0.9])
    });
    timed("fig8b/12 sample_size_sweep", || {
        accuracy::sample_size_sweep(&[10_000, 50_000], 50)
    });
    timed("fig13 resample_count_sweep", || {
        accuracy::resample_count_sweep(50_000, &[10, 50])
    });
    timed("fig14 subsample_size_sweep", || {
        accuracy::subsample_size_sweep(50_000, &[0.25, 0.5, 0.75])
    });
    timed("fig11 preparation_time(0.05)", || preparation_time(0.05));
    println!("\nall experiments completed");
}
