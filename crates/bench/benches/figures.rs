//! Criterion benches keyed to the paper's figures and tables.
//!
//! Each group wraps the corresponding harness function from `verdict_bench`
//! at a reduced scale so `cargo bench` finishes in minutes; the `reproduce`
//! binary runs the same experiments at larger scale and prints the full
//! tables (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, Criterion};
use verdict_bench::*;

fn fig4_9_10_speedups(c: &mut Criterion) {
    let ctx = workload_context(0.05, 0.08, 0.05);
    let mut group = c.benchmark_group("fig4_9_10_speedup_workload");
    group.sample_size(10);
    group.bench_function("all_queries_through_verdictdb", |b| {
        b.iter(|| speedup_experiment(&ctx))
    });
    group.finish();
}

fn fig5_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_scaling");
    group.sample_size(10);
    group.bench_function("tq6_scale_sweep", |b| b.iter(|| scaling_experiment(&[0.05, 0.1])));
    group.finish();
}

fn fig6_integrated(c: &mut Criterion) {
    let ctx = workload_context(0.05, 0.08, 0.05);
    let mut group = c.benchmark_group("fig6_integrated_aqp");
    group.sample_size(10);
    group.bench_function("verdict_vs_integrated", |b| b.iter(|| integrated_comparison(&ctx)));
    group.finish();
}

fn table2_native(c: &mut Criterion) {
    let ctx = workload_context(0.05, 0.08, 0.05);
    let mut group = c.benchmark_group("table2_native_approx");
    group.sample_size(10);
    group.bench_function("sampling_vs_sketches", |b| b.iter(|| native_approx_comparison(&ctx)));
    group.finish();
}

fn fig7_estimation_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_estimation_overhead");
    group.sample_size(10);
    group.bench_function("flat_join_nested", |b| b.iter(|| estimation_overhead(10_000, 25)));
    group.finish();
}

fn fig8_12_13_14_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_12_13_14_accuracy");
    group.sample_size(10);
    group.bench_function("fig8a_selectivity", |b| {
        b.iter(|| accuracy::selectivity_sweep(&[0.1, 0.5, 0.9]))
    });
    group.bench_function("fig8b_12_sample_sizes", |b| {
        b.iter(|| accuracy::sample_size_sweep(&[10_000, 50_000], 50))
    });
    group.bench_function("fig13_resample_counts", |b| {
        b.iter(|| accuracy::resample_count_sweep(50_000, &[10, 50]))
    });
    group.bench_function("fig14_subsample_sizes", |b| {
        b.iter(|| accuracy::subsample_size_sweep(50_000, &[0.25, 0.5, 0.75]))
    });
    group.finish();
}

fn fig11_preparation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_sample_preparation");
    group.sample_size(10);
    group.bench_function("prepare_samples_scale_0_05", |b| b.iter(|| preparation_time(0.05)));
    group.finish();
}

criterion_group!(
    benches,
    fig4_9_10_speedups,
    fig5_scaling,
    fig6_integrated,
    table2_native,
    fig7_estimation_overhead,
    fig8_12_13_14_accuracy,
    fig11_preparation
);
criterion_main!(benches);
