//! Scalar-vs-vectorized and serial-vs-parallel kernel micro-benchmarks
//! (no external harness).
//!
//! Compares the typed-column kernels that power the engine's scan / filter /
//! aggregate hot path against a scalar reference path that materialises every
//! cell as a dynamically-typed `Value` — exactly what the engine did before
//! the typed-columnar refactor — and then the morsel-parallel kernels against
//! the serial vectorized ones.  Run with:
//!
//! ```text
//! cargo bench -p verdict-bench --bench micro_kernels
//! ```
//!
//! Emits a human-readable table on stdout and writes a machine-readable
//! perf snapshot to `BENCH_kernels.json` at the workspace root (override
//! the path with the `BENCH_KERNELS_JSON` environment variable).  The pool
//! size defaults to `available_parallelism()` and can be pinned with
//! `VERDICT_PARALLELISM`.

use std::sync::Arc;
use std::time::Instant;
use verdict_bench::kernel::{
    self, median_secs, par_filter_mask, par_grouped_sum, par_sum_avg, synthetic_columns, REPS, ROWS,
};
use verdict_core::{SampleType, VerdictConfig, VerdictContext, VerdictSession};
use verdict_engine::{Backend, Engine, TableBuilder, ThreadPool};
use verdict_server::{VerdictClient, VerdictServer};

// ---------------------------------------------------------------------------
// Serving-layer benchmarks: cached vs uncached repeats of a dashboard query,
// and protocol throughput at 1 vs N concurrent sessions.
// ---------------------------------------------------------------------------

const SERVING_ROWS: usize = 200_000;
const SERVING_QUERY: &str = "SELECT city, avg(price) AS ap FROM sales GROUP BY city ORDER BY city";

fn serving_context(cache_capacity: usize) -> Arc<VerdictContext> {
    let engine = Engine::with_seed(29);
    let table = TableBuilder::new()
        .int_column("id", (0..SERVING_ROWS as i64).collect())
        .float_column(
            "price",
            (0..SERVING_ROWS)
                .map(|i| ((i * 37) % 1000) as f64 / 10.0)
                .collect(),
        )
        .str_column(
            "city",
            (0..SERVING_ROWS)
                .map(|i| format!("city_{}", i % 10))
                .collect(),
        )
        .build()
        .unwrap();
    engine.register_table("sales", table);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.answer_cache_capacity = cache_capacity;
    let ctx = VerdictContext::new(conn, config);
    ctx.create_sample("sales", SampleType::Uniform).unwrap();
    Arc::new(ctx)
}

/// (uncached_secs, cached_secs): median latency of the dashboard repeat with
/// the answer cache off vs on (warm).
fn bench_answer_cache() -> (f64, f64) {
    let uncached_ctx = serving_context(0);
    let uncached = median_secs(|| uncached_ctx.execute(SERVING_QUERY).unwrap());

    let cached_ctx = serving_context(64);
    let warm = cached_ctx.execute(SERVING_QUERY).unwrap();
    assert!(!warm.exact && !warm.cached);
    let cached = median_secs(|| {
        let answer = cached_ctx.execute(SERVING_QUERY).unwrap();
        assert!(answer.cached, "repeat must hit the cache");
        answer
    });
    (uncached, cached)
}

/// (direct_secs, session_secs): median latency of the cache-hot dashboard
/// repeat through the direct `VerdictContext::execute` call vs the SQL-first
/// `VerdictSession` dispatch (parse → option resolution → statement match).
/// The cache-hot path is the *worst case* for relative dispatch overhead —
/// there is almost no execution time to hide it behind.
fn bench_session_dispatch() -> (f64, f64) {
    let ctx = serving_context(64);
    let warm = ctx.execute(SERVING_QUERY).unwrap();
    assert!(!warm.exact && !warm.cached);
    // Batch 1000 calls per timed rep: single cache hits are microsecond-scale,
    // too small for a stable per-call median on their own.
    const BATCH: usize = 1000;
    let direct = median_secs(|| {
        for _ in 0..BATCH {
            let answer = ctx.execute(SERVING_QUERY).unwrap();
            assert!(answer.cached);
            std::hint::black_box(answer);
        }
    }) / BATCH as f64;
    let mut session = VerdictSession::new(Arc::clone(&ctx));
    let session_secs = median_secs(|| {
        for _ in 0..BATCH {
            let response = session.execute(SERVING_QUERY).unwrap();
            assert!(response.answer().unwrap().cached);
            std::hint::black_box(response);
        }
    }) / BATCH as f64;
    (direct, session_secs)
}

/// (direct_secs, routed_secs): median latency of one engine statement called
/// directly on `Engine::execute_sql` vs routed through the type-erased
/// `Arc<dyn Backend>` plus the per-backend instrumentation layer every
/// `VerdictContext` now uses.  Isolates the cost of the pluggable-backend
/// indirection itself: one dynamic dispatch and one relaxed atomic
/// increment per statement.
fn bench_backend_dispatch() -> (f64, f64) {
    const DISPATCH_ROWS: i64 = 10_000;
    const DISPATCH_QUERY: &str = "SELECT count(*) AS n, sum(id) AS s FROM ticks";
    const BATCH: usize = 100;
    let engine = Arc::new(Engine::with_seed(31));
    let table = TableBuilder::new()
        .int_column("id", (0..DISPATCH_ROWS).collect())
        .build()
        .unwrap();
    engine.register_table("ticks", table);
    let ctx = VerdictContext::new(
        engine.clone() as Arc<dyn Backend>,
        VerdictConfig::for_testing(),
    );
    engine.execute_sql(DISPATCH_QUERY).unwrap();
    ctx.connection().execute(DISPATCH_QUERY).unwrap();
    // The indirection costs nanoseconds on a query that takes tens of
    // microseconds, so scheduler drift between two separately-timed loops
    // would dominate the difference.  Interleave the paths inside each rep
    // and take per-path medians instead.
    let mut direct_samples = Vec::with_capacity(REPS);
    let mut routed_samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(engine.execute_sql(DISPATCH_QUERY).unwrap());
        }
        direct_samples.push(t0.elapsed().as_secs_f64() / BATCH as f64);
        let t0 = Instant::now();
        for _ in 0..BATCH {
            std::hint::black_box(ctx.connection().execute(DISPATCH_QUERY).unwrap());
        }
        routed_samples.push(t0.elapsed().as_secs_f64() / BATCH as f64);
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    (median(&mut direct_samples), median(&mut routed_samples))
}

/// Aggregate protocol throughput (queries/second) at `sessions` concurrent
/// sessions issuing `requests` dashboard repeats each against a shared server.
fn bench_sessions_qps(sessions: usize, requests: usize) -> f64 {
    let ctx = serving_context(64);
    ctx.execute(SERVING_QUERY).unwrap(); // warm the cache once
    let handle = VerdictServer::bind("127.0.0.1:0", ctx)
        .unwrap()
        .spawn()
        .unwrap();
    let addr = handle.addr();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..sessions {
            scope.spawn(move || {
                let mut client = VerdictClient::connect(addr).unwrap();
                for _ in 0..requests {
                    let answer = client.query(SERVING_QUERY).unwrap();
                    assert!(answer.header.cached);
                }
                let _ = client.quit();
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    handle.stop();
    (sessions * requests) as f64 / secs.max(1e-9)
}

// ---------------------------------------------------------------------------
// Progressive streaming: time-to-first-frame and early-stop speedup over a
// 1M-row scramble (RATIO 1.0 — the paper-faithful full-table scramble).
// ---------------------------------------------------------------------------

const STREAM_ROWS: usize = 1_000_000;
const STREAM_QUERY: &str = "SELECT qty, avg(price) AS ap FROM big_sales GROUP BY qty";

fn stream_context() -> Arc<VerdictContext> {
    let engine = Engine::with_seed(41);
    let (price, qty) = synthetic_columns(STREAM_ROWS);
    let table = TableBuilder::new()
        .column("qty", qty)
        .column("price", price)
        .build()
        .unwrap();
    engine.register_table("big_sales", table);
    let conn: Arc<dyn Backend> = Arc::new(engine);
    let mut config = VerdictConfig::for_testing();
    config.io_budget = 1.0; // a full-table scramble needs a full budget
    let ctx = VerdictContext::new(conn, config);
    ctx.create_sample_with_ratio("big_sales", SampleType::Uniform, 1.0)
        .unwrap();
    Arc::new(ctx)
}

struct StreamBench {
    one_shot_secs: f64,
    first_frame_secs: f64,
    full_stream_secs: f64,
    frames: usize,
    early_stop_secs: f64,
    early_stop_fraction: f64,
}

/// Progressive vs one-shot on the 1M-row scramble: median one-shot latency,
/// median time to the first frame (one 64K block), a full drain, and an
/// early-stopped drain at `target_error = 0.01`.
fn bench_progressive_stream() -> StreamBench {
    const STREAM_REPS: usize = 3;
    fn median3(mut f: impl FnMut() -> f64) -> f64 {
        let mut times: Vec<f64> = (0..STREAM_REPS).map(|_| f()).collect();
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        times[times.len() / 2]
    }
    let ctx = stream_context();

    let one_shot_secs = median3(|| {
        let t0 = Instant::now();
        let answer = ctx.execute(STREAM_QUERY).unwrap();
        assert!(!answer.exact && !answer.cached);
        t0.elapsed().as_secs_f64()
    });

    let first_frame_secs = median3(|| {
        let mut s = VerdictSession::new(Arc::clone(&ctx));
        s.execute("SET cache = off").unwrap();
        let t0 = Instant::now();
        let mut stream = s.stream(STREAM_QUERY).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(first.rows_seen > 0);
        t0.elapsed().as_secs_f64()
    });

    let frames;
    let full_stream_secs = {
        let t0 = Instant::now();
        let mut s = VerdictSession::new(Arc::clone(&ctx));
        s.execute("SET cache = off").unwrap();
        let drained: Vec<_> = s
            .stream(STREAM_QUERY)
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        frames = drained.len();
        assert!((drained.last().unwrap().fraction - 1.0).abs() < 1e-12);
        t0.elapsed().as_secs_f64()
    };

    let (early_stop_secs, early_stop_fraction) = {
        let mut s = VerdictSession::new(Arc::clone(&ctx));
        s.execute("SET cache = off").unwrap();
        s.execute("SET target_error = 0.01").unwrap();
        let t0 = Instant::now();
        let drained: Vec<_> = s
            .stream(STREAM_QUERY)
            .unwrap()
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        let secs = t0.elapsed().as_secs_f64();
        let last = drained.last().unwrap();
        assert!(last.answer.max_relative_error() <= 0.01);
        (secs, last.fraction)
    };

    StreamBench {
        one_shot_secs,
        first_frame_secs,
        full_stream_secs,
        frames,
        early_stop_secs,
        early_stop_fraction,
    }
}

// ---------------------------------------------------------------------------
// Persistent store: cold-start load vs rebuilding the scramble from its base
// table, and streamed block-read throughput off disk.
// ---------------------------------------------------------------------------

/// Base-table rows for the store benchmark; the scramble is
/// `STORE_RATIO` of them.
const STORE_BASE_ROWS: usize = 1_000_000;
const STORE_RATIO: f64 = 0.25;

struct StoreBench {
    scramble_rows: u64,
    rebuild_secs: f64,
    cold_start_secs: f64,
    block_read_rows_per_sec: f64,
}

/// The restart question: with `--data-dir`, how fast is a scramble *back*
/// compared to rebuilding it from the base table?  Plus the sequential
/// block-decode throughput a cold-start `STREAM` reads at.
fn bench_store() -> StoreBench {
    let dir = std::env::temp_dir().join(format!("verdict_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let base = TableBuilder::new()
        .int_column("id", (0..STORE_BASE_ROWS as i64).collect())
        .float_column(
            "price",
            (0..STORE_BASE_ROWS)
                .map(|i| ((i * 37) % 1000) as f64 / 10.0)
                .collect(),
        )
        .int_column(
            "quantity",
            (0..STORE_BASE_ROWS).map(|i| (i % 7) as i64 + 1).collect(),
        )
        .build()
        .unwrap();

    // Rebuild path: a fresh engine + base table, CREATE SCRAMBLE through
    // the middleware (shuffle + subsample column), nothing persisted.
    let rebuild_secs = {
        let engine = Engine::with_seed(31);
        engine.register_table("sales", base.clone());
        let conn: Arc<dyn Backend> = Arc::new(engine);
        let mut config = VerdictConfig::for_testing();
        config.io_budget = 1.0;
        let ctx = VerdictContext::new(conn, config);
        let t0 = Instant::now();
        ctx.create_sample_with_ratio("sales", SampleType::Uniform, STORE_RATIO)
            .unwrap();
        t0.elapsed().as_secs_f64()
    };

    // Persist the same scramble once (an engine with a store attached
    // writes it through the WAL as a side effect of CREATE SCRAMBLE).
    let scramble_rows = {
        let engine = Engine::with_seed(31);
        engine.register_table("sales", base);
        let store = Arc::new(verdict_store::Store::open(&dir).unwrap());
        engine
            .catalog()
            .set_store(Arc::clone(&store) as Arc<dyn verdict_engine::StoreHandle>);
        let conn: Arc<dyn Backend> = Arc::new(engine);
        let mut config = VerdictConfig::for_testing();
        config.io_budget = 1.0;
        let ctx = VerdictContext::with_store(conn, config, Arc::clone(&store)).unwrap();
        let meta = ctx
            .create_sample_with_ratio("sales", SampleType::Uniform, STORE_RATIO)
            .unwrap();
        meta.sample_rows
    };
    let key = "verdict_sample_sales_uniform";

    // Cold start: reopen the directory and materialise the scramble — the
    // work a restarted server does instead of the rebuild above.
    let cold_start_secs = {
        let t0 = Instant::now();
        let store = verdict_store::Store::open(&dir).unwrap();
        let (table, _version) = store.load_table(key).unwrap();
        assert_eq!(table.num_rows() as u64, scramble_rows);
        t0.elapsed().as_secs_f64()
    };

    // Streamed block reads: sequential `read_range` in store-block units,
    // the access pattern of a cold-start progressive STREAM.
    let block_read_rows_per_sec = {
        use verdict_engine::ScanSource;
        let store = verdict_store::Store::open(&dir).unwrap();
        let scan = store.open_store_scan(key).unwrap();
        let rows = scan.num_rows();
        let block = verdict_store::BLOCK_ROWS as usize;
        let t0 = Instant::now();
        let mut lo = 0usize;
        while lo < rows {
            let take = block.min(rows - lo);
            let cols = scan.read_range(None, lo, take).unwrap();
            assert_eq!(cols[0].len(), take);
            lo += take;
        }
        rows as f64 / t0.elapsed().as_secs_f64().max(1e-12)
    };

    let _ = std::fs::remove_dir_all(&dir);
    StoreBench {
        scramble_rows,
        rebuild_secs,
        cold_start_secs,
        block_read_rows_per_sec,
    }
}

struct Row {
    name: &'static str,
    baseline_secs: f64,
    candidate_secs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_secs / self.candidate_secs.max(1e-12)
    }
}

fn print_table(title: &str, baseline: &str, candidate: &str, rows: &[Row]) {
    println!("\n## {title}\n");
    println!("| kernel | {baseline} (ms) | {candidate} (ms) | speedup |");
    println!("|--------|------------:|----------------:|--------:|");
    for r in rows {
        println!(
            "| {} | {:.2} | {:.2} | {:.2}x |",
            r.name,
            r.baseline_secs * 1e3,
            r.candidate_secs * 1e3,
            r.speedup()
        );
    }
}

fn json_rows(rows: &[Row], baseline_key: &str, candidate_key: &str) -> String {
    let mut out = String::new();
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"{}\": {:.6}, \"{}\": {:.6}, \"speedup\": {:.3} }}{}\n",
            r.name,
            baseline_key,
            r.baseline_secs,
            candidate_key,
            r.candidate_secs,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out
}

fn main() {
    kernel::warn_if_few_cpus();
    let cpus = kernel::cpus();
    let rustc = kernel::rustc_version();
    let pool = ThreadPool::with_default_parallelism();
    let parallelism = pool.parallelism();
    println!(
        "# micro_kernels — scalar vs typed-column vs morsel-parallel \
         ({ROWS} rows, median of {REPS}, pool of {parallelism}, {cpus} cpu(s), {rustc})"
    );
    let (price, qty) = synthetic_columns(ROWS);

    // Sanity for the parallel section: partials merge in morsel order, so
    // every kernel is bit-identical at ANY pool size.  (The scalar-vs-
    // vectorized pairs are cross-checked inside scalar_vs_vectorized_rows.)
    let serial_pool = ThreadPool::serial();
    assert_eq!(
        par_filter_mask(&price, 15.0, &serial_pool),
        par_filter_mask(&price, 15.0, &pool),
        "parallel filter mask must equal the serial mask exactly"
    );
    let (p1s, p1a) = par_sum_avg(&price, &serial_pool);
    let (pns, pna) = par_sum_avg(&price, &pool);
    assert_eq!(p1s.to_bits(), pns.to_bits());
    assert_eq!(p1a.to_bits(), pna.to_bits());
    let par_groups_1 = par_grouped_sum(&qty, &price, &serial_pool);
    let par_groups_n = par_grouped_sum(&qty, &price, &pool);
    assert_eq!(par_groups_1.len(), par_groups_n.len());
    for (a, b) in par_groups_1.iter().zip(par_groups_n.iter()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "parallel grouped sums must be bit-identical across pool sizes"
        );
    }

    // The gated section: the same rows `verdict-bench --check` re-runs.
    let vector_rows: Vec<Row> = kernel::scalar_vs_vectorized_rows()
        .into_iter()
        .map(|r| Row {
            name: r.name,
            baseline_secs: r.scalar_secs,
            candidate_secs: r.vectorized_secs,
        })
        .collect();
    print_table(
        "scalar Value path vs typed-column kernels",
        "scalar",
        "vectorized",
        &vector_rows,
    );

    let hot = vector_rows
        .iter()
        .filter(|r| r.name == "filter_gt" || r.name == "sum_avg")
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    println!("\nminimum hot-path (filter + sum/avg) speedup: {hot:.2}x");

    // Serial vectorized vs morsel-parallel (same kernels, pool-sized).
    let parallel_rows = vec![
        Row {
            name: "filter_gt",
            baseline_secs: median_secs(|| par_filter_mask(&price, 15.0, &serial_pool)),
            candidate_secs: median_secs(|| par_filter_mask(&price, 15.0, &pool)),
        },
        Row {
            name: "sum_avg",
            baseline_secs: median_secs(|| par_sum_avg(&price, &serial_pool)),
            candidate_secs: median_secs(|| par_sum_avg(&price, &pool)),
        },
        Row {
            name: "grouped_sum",
            baseline_secs: median_secs(|| par_grouped_sum(&qty, &price, &serial_pool)),
            candidate_secs: median_secs(|| par_grouped_sum(&qty, &price, &pool)),
        },
    ];
    print_table(
        &format!("serial vectorized vs morsel-parallel ({parallelism} threads)"),
        "serial",
        "parallel",
        &parallel_rows,
    );

    let par_min = parallel_rows
        .iter()
        .filter(|r| r.name == "filter_gt" || r.name == "grouped_sum")
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nminimum parallel (filter + grouped_sum) speedup at {parallelism} threads: {par_min:.2}x"
    );

    // Serving layer: answer-cache hit vs full AQP execution, and protocol
    // throughput at 1 vs 4 concurrent sessions (cache-hot dashboard repeats).
    let (uncached_secs, cached_secs) = bench_answer_cache();
    let cache_speedup = uncached_secs / cached_secs.max(1e-12);
    println!(
        "\n## answer cache ({SERVING_ROWS} rows, dashboard repeat)\n\n\
         | path | latency (ms) |\n|------|-------------:|\n\
         | uncached AQP | {:.3} |\n| cache hit | {:.3} |\n\n\
         cache speedup: {cache_speedup:.1}x",
        uncached_secs * 1e3,
        cached_secs * 1e3
    );
    let requests = 200usize;
    let qps_1 = bench_sessions_qps(1, requests);
    let qps_4 = bench_sessions_qps(4, requests);
    println!(
        "\n## protocol throughput ({requests} cache-hot repeats per session)\n\n\
         | sessions | q/s |\n|---------:|----:|\n| 1 | {qps_1:.0} |\n| 4 | {qps_4:.0} |"
    );

    // Progressive streaming: time-to-first-frame and early-stop speedup on
    // a 1M-row scramble.
    let stream = bench_progressive_stream();
    let first_frame_speedup = stream.one_shot_secs / stream.first_frame_secs.max(1e-12);
    let early_stop_speedup = stream.one_shot_secs / stream.early_stop_secs.max(1e-12);
    println!(
        "\n## progressive streaming ({STREAM_ROWS}-row scramble, 64K-row blocks)\n\n\
         | path | latency (ms) |\n|------|-------------:|\n\
         | one-shot AQP | {:.1} |\n| first frame | {:.1} |\n\
         | early stop (target_error = 0.01, {:.0}% of scramble) | {:.1} |\n\
         | full stream ({} frames) | {:.1} |\n\n\
         time-to-first-frame speedup: {first_frame_speedup:.1}x, \
         early-stop speedup: {early_stop_speedup:.1}x",
        stream.one_shot_secs * 1e3,
        stream.first_frame_secs * 1e3,
        100.0 * stream.early_stop_fraction,
        stream.early_stop_secs * 1e3,
        stream.frames,
        stream.full_stream_secs * 1e3,
    );

    // Persistent store: cold-start load vs rebuild, and streamed
    // block-read throughput.
    let store_bench = bench_store();
    let cold_start_speedup = store_bench.rebuild_secs / store_bench.cold_start_secs.max(1e-12);
    println!(
        "\n## persistent store ({} base rows, τ = {STORE_RATIO}, {}-row scramble)\n\n\
         | path | latency (ms) |\n|------|-------------:|\n\
         | rebuild scramble from base table | {:.1} |\n\
         | cold-start load from store | {:.1} |\n\n\
         cold-start speedup: {cold_start_speedup:.1}x, \
         streamed block reads: {:.1}M rows/s",
        STORE_BASE_ROWS,
        store_bench.scramble_rows,
        store_bench.rebuild_secs * 1e3,
        store_bench.cold_start_secs * 1e3,
        store_bench.block_read_rows_per_sec / 1e6,
    );

    // SQL-first session dispatch vs the direct context call, on the
    // cache-hot path where relative overhead is largest.
    let (direct_secs, session_secs) = bench_session_dispatch();
    let dispatch_overhead_pct = 100.0 * (session_secs / direct_secs.max(1e-12) - 1.0);
    println!(
        "\n## session dispatch (cache-hot repeat, worst case for relative overhead)\n\n\
         | path | latency (µs) |\n|------|-------------:|\n\
         | VerdictContext::execute | {:.3} |\n| VerdictSession::execute (SQL) | {:.3} |\n\n\
         dispatch overhead: {dispatch_overhead_pct:.2}%",
        direct_secs * 1e6,
        session_secs * 1e6
    );

    // Cost of the pluggable-backend indirection (dyn dispatch + routing
    // counters) relative to calling the engine directly.
    let (backend_direct_secs, backend_routed_secs) = bench_backend_dispatch();
    let backend_overhead_pct = 100.0 * (backend_routed_secs / backend_direct_secs.max(1e-12) - 1.0);
    println!(
        "\n## backend dispatch (Arc<dyn Backend> + instrumentation vs direct engine call)\n\n\
         | path | latency (µs) |\n|------|-------------:|\n\
         | Engine::execute_sql | {:.3} |\n| Backend::execute via context | {:.3} |\n\n\
         backend dispatch overhead: {backend_overhead_pct:.2}%",
        backend_direct_secs * 1e6,
        backend_routed_secs * 1e6
    );

    // Machine-readable snapshot, written at the workspace root (cargo bench
    // runs with the package directory as cwd).
    let path = std::env::var("BENCH_KERNELS_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR")));
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"rows\": {ROWS},\n  \"reps\": {REPS},\n  \"parallelism\": {parallelism},\n  \
         \"cpus\": {cpus},\n  \"rustc\": \"{rustc}\",\n  \"kernels\": [\n"
    ));
    json.push_str(&json_rows(&vector_rows, "scalar_secs", "vectorized_secs"));
    json.push_str(&format!(
        "  ],\n  \"min_hot_path_speedup\": {hot:.3},\n  \"parallel_kernels\": [\n"
    ));
    json.push_str(&json_rows(&parallel_rows, "serial_secs", "parallel_secs"));
    json.push_str(&format!(
        "  ],\n  \"min_parallel_speedup\": {par_min:.3},\n  \"serving\": {{\n"
    ));
    json.push_str(&format!(
        "    \"rows\": {SERVING_ROWS},\n    \"uncached_secs\": {uncached_secs:.6},\n    \
         \"cached_secs\": {cached_secs:.6},\n    \"cache_speedup\": {cache_speedup:.3},\n    \
         \"requests_per_session\": {requests},\n    \"sessions\": [\n"
    ));
    json.push_str(&format!(
        "      {{ \"sessions\": 1, \"qps\": {qps_1:.0} }},\n      {{ \"sessions\": 4, \"qps\": {qps_4:.0} }}\n"
    ));
    json.push_str("    ]\n  },\n  \"stream\": {\n");
    json.push_str(&format!(
        "    \"scramble_rows\": {STREAM_ROWS},\n    \
         \"block_rows\": 65536,\n    \
         \"one_shot_secs\": {:.6},\n    \
         \"time_to_first_frame_secs\": {:.6},\n    \
         \"full_stream_secs\": {:.6},\n    \
         \"frames\": {},\n    \
         \"early_stop_target\": 0.01,\n    \
         \"early_stop_secs\": {:.6},\n    \
         \"early_stop_fraction\": {:.4},\n    \
         \"stream_time_to_first_frame\": {first_frame_speedup:.3},\n    \
         \"stream_early_stop_speedup\": {early_stop_speedup:.3}\n",
        stream.one_shot_secs,
        stream.first_frame_secs,
        stream.full_stream_secs,
        stream.frames,
        stream.early_stop_secs,
        stream.early_stop_fraction,
    ));
    json.push_str("  },\n  \"store\": {\n");
    json.push_str(&format!(
        "    \"base_rows\": {STORE_BASE_ROWS},\n    \
         \"ratio\": {STORE_RATIO},\n    \
         \"scramble_rows\": {},\n    \
         \"rebuild_secs\": {:.6},\n    \
         \"cold_start_secs\": {:.6},\n    \
         \"cold_start_speedup\": {cold_start_speedup:.3},\n    \
         \"block_read_rows_per_sec\": {:.0}\n",
        store_bench.scramble_rows,
        store_bench.rebuild_secs,
        store_bench.cold_start_secs,
        store_bench.block_read_rows_per_sec,
    ));
    json.push_str("  },\n  \"session_dispatch\": {\n");
    json.push_str(&format!(
        "    \"query\": \"cache-hot dashboard repeat\",\n    \
         \"direct_secs\": {direct_secs:.9},\n    \
         \"session_secs\": {session_secs:.9},\n    \
         \"overhead_pct\": {dispatch_overhead_pct:.2}\n"
    ));
    json.push_str("  },\n  \"backend_dispatch\": {\n");
    json.push_str(&format!(
        "    \"query\": \"count+sum over 10k rows, in-process engine\",\n    \
         \"direct_secs\": {backend_direct_secs:.9},\n    \
         \"routed_secs\": {backend_routed_secs:.9},\n    \
         \"overhead_pct\": {backend_overhead_pct:.2}\n"
    ));
    json.push_str("  }");
    // `verdict-loadgen --json-out` maintains a `serving_scale` section in
    // this file; carry it across the rewrite so a bench run does not erase
    // the latest qps-vs-sessions curve.
    if let Some(block) = std::fs::read_to_string(&path)
        .ok()
        .as_deref()
        .and_then(extract_serving_scale)
    {
        json.push_str(",\n  ");
        json.push_str(&block);
    }
    json.push_str("\n}\n");
    std::fs::write(&path, &json).expect("write perf snapshot");
    println!("wrote {path}");
}

/// Extracts the full `"serving_scale": { … }` text from a previous snapshot
/// (key through matching close brace; the section's string values contain no
/// braces, so brace counting is sufficient).
fn extract_serving_scale(json: &str) -> Option<String> {
    let start = json.find("\"serving_scale\"")?;
    let open = start + json[start..].find('{')?;
    let mut depth = 0usize;
    for (i, c) in json[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(json[start..open + i + 1].to_string());
                }
            }
            _ => {}
        }
    }
    None
}
