//! Scalar-vs-vectorized kernel micro-benchmarks (no external harness).
//!
//! Compares the typed-column kernels that power the engine's scan / filter /
//! aggregate hot path against a scalar reference path that materialises every
//! cell as a dynamically-typed `Value` — exactly what the engine did before
//! the typed-columnar refactor.  Run with:
//!
//! ```text
//! cargo bench -p verdict-bench --bench micro_kernels
//! ```
//!
//! Emits a human-readable table on stdout and writes a machine-readable
//! perf snapshot to `BENCH_kernels.json` at the workspace root (override
//! the path with the `BENCH_KERNELS_JSON` environment variable).

use std::time::Instant;
use verdict_engine::kernels::{self, group_rows};
use verdict_engine::{Column, Value};
use verdict_sql::ast::BinaryOp;

const ROWS: usize = 1_000_000;
const REPS: usize = 7;

/// Runs `f` REPS times and returns the median wall-clock time in seconds.
fn median_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(out);
            dt
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Deterministic synthetic columns: a float "price" with ~1% NULLs and an
/// int "qty", mimicking the shape of the Instacart fact table.
fn synthetic_columns(n: usize) -> (Column, Column) {
    let mut price: Vec<Option<f64>> = Vec::with_capacity(n);
    let mut qty: Vec<i64> = Vec::with_capacity(n);
    let mut state = 0x5a5a5a5au64;
    for i in 0..n {
        // splitmix-style scramble, deterministic across runs
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        price.push(if z.is_multiple_of(100) {
            None
        } else {
            Some(1.5 + 30.0 * u)
        });
        qty.push((i % 7) as i64 + 1);
    }
    (Column::from_opt_f64(price), Column::from_i64(qty))
}

// ---------------------------------------------------------------------------
// Scalar reference paths: per-cell Value materialisation + enum dispatch,
// the exact shape of the pre-refactor evaluator.
// ---------------------------------------------------------------------------

fn scalar_filter_mask(col: &Column, threshold: f64) -> Vec<bool> {
    let t = Value::Float(threshold);
    (0..col.len())
        .map(|i| {
            col.value_at(i)
                .sql_cmp(&t)
                .map(|o| o == std::cmp::Ordering::Greater)
                .unwrap_or(false)
        })
        .collect()
}

fn scalar_sum_avg(col: &Column) -> (f64, f64) {
    let mut sum = 0.0;
    let mut count = 0u64;
    for i in 0..col.len() {
        if let Some(x) = col.value_at(i).as_f64() {
            sum += x;
            count += 1;
        }
    }
    (sum, sum / count.max(1) as f64)
}

fn scalar_grouped_sum(keys: &Column, values: &Column) -> Vec<(verdict_engine::KeyValue, f64)> {
    let mut map: std::collections::HashMap<verdict_engine::KeyValue, f64> =
        std::collections::HashMap::new();
    for i in 0..keys.len() {
        let k = verdict_engine::KeyValue::from_value(&keys.value_at(i));
        if let Some(x) = values.value_at(i).as_f64() {
            *map.entry(k).or_insert(0.0) += x;
        }
    }
    map.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Vectorized paths: typed-column kernels.
// ---------------------------------------------------------------------------

fn vector_filter_mask(col: &Column, threshold: f64) -> Vec<bool> {
    let t = Column::repeat(&Value::Float(threshold), col.len());
    kernels::column_to_mask(&kernels::compare(col, BinaryOp::Gt, &t))
}

fn vector_sum_avg(col: &Column) -> (f64, f64) {
    let (sum, count) = col.sum_count_f64();
    (sum, sum / count.max(1) as f64)
}

fn vector_grouped_sum(keys: &Column, values: &Column) -> Vec<f64> {
    let grouping = group_rows(std::slice::from_ref(keys), keys.len());
    let mut sums = vec![0.0f64; grouping.num_groups()];
    match values.data() {
        verdict_engine::ColumnData::Float64(v) => {
            for (i, &g) in grouping.gids.iter().enumerate() {
                if values.is_valid(i) {
                    sums[g] += v[i];
                }
            }
        }
        _ => {
            for (i, &g) in grouping.gids.iter().enumerate() {
                if let Some(x) = values.f64_at(i) {
                    sums[g] += x;
                }
            }
        }
    }
    sums
}

struct Row {
    name: &'static str,
    scalar_secs: f64,
    vector_secs: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.scalar_secs / self.vector_secs.max(1e-12)
    }
}

fn main() {
    println!("# micro_kernels — scalar Value path vs typed-column kernels ({ROWS} rows, median of {REPS})\n");
    let (price, qty) = synthetic_columns(ROWS);

    // Sanity: both paths must agree before we time them.
    assert_eq!(
        scalar_filter_mask(&price, 15.0),
        vector_filter_mask(&price, 15.0)
    );
    let (ss, sa) = scalar_sum_avg(&price);
    let (vs, va) = vector_sum_avg(&price);
    assert!((ss - vs).abs() < 1e-6 && (sa - va).abs() < 1e-9);
    let scalar_groups = scalar_grouped_sum(&qty, &price);
    let vector_groups = vector_grouped_sum(&qty, &price);
    assert_eq!(scalar_groups.len(), vector_groups.len());
    let scalar_total: f64 = scalar_groups.iter().map(|(_, s)| s).sum();
    let vector_total: f64 = vector_groups.iter().sum();
    assert!((scalar_total - vector_total).abs() / scalar_total.abs() < 1e-9);

    let rows = vec![
        Row {
            name: "filter_gt",
            scalar_secs: median_secs(|| scalar_filter_mask(&price, 15.0)),
            vector_secs: median_secs(|| vector_filter_mask(&price, 15.0)),
        },
        Row {
            name: "sum_avg",
            scalar_secs: median_secs(|| scalar_sum_avg(&price)),
            vector_secs: median_secs(|| vector_sum_avg(&price)),
        },
        Row {
            name: "grouped_sum",
            scalar_secs: median_secs(|| scalar_grouped_sum(&qty, &price)),
            vector_secs: median_secs(|| vector_grouped_sum(&qty, &price)),
        },
    ];

    println!("| kernel | scalar (ms) | vectorized (ms) | speedup |");
    println!("|--------|------------:|----------------:|--------:|");
    for r in &rows {
        println!(
            "| {} | {:.2} | {:.2} | {:.2}x |",
            r.name,
            r.scalar_secs * 1e3,
            r.vector_secs * 1e3,
            r.speedup()
        );
    }

    let hot = rows
        .iter()
        .filter(|r| r.name == "filter_gt" || r.name == "sum_avg")
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    println!("\nminimum hot-path (filter + sum/avg) speedup: {hot:.2}x");

    // Machine-readable snapshot, written at the workspace root (cargo bench
    // runs with the package directory as cwd).
    let path = std::env::var("BENCH_KERNELS_JSON")
        .unwrap_or_else(|_| format!("{}/../../BENCH_kernels.json", env!("CARGO_MANIFEST_DIR")));
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"rows\": {ROWS},\n  \"reps\": {REPS},\n  \"kernels\": [\n"
    ));
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"scalar_secs\": {:.6}, \"vectorized_secs\": {:.6}, \"speedup\": {:.3} }}{}\n",
            r.name,
            r.scalar_secs,
            r.vector_secs,
            r.speedup(),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str(&format!("  ],\n  \"min_hot_path_speedup\": {hot:.3}\n}}\n"));
    std::fs::write(&path, &json).expect("write perf snapshot");
    println!("wrote {path}");
}
