//! Criterion micro-benchmarks of the core VerdictDB-rs kernels: the Lemma 1
//! staircase function, the array-level error estimators, variational-table
//! construction in SQL, and the full rewrite-execute-assemble pipeline for a
//! single query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use verdict_core::estimate::{
    bootstrap_interval, default_subsample_size, traditional_subsampling_interval,
    variational_subsampling_interval,
};
use verdict_core::sample::SampleType;
use verdict_core::stats::staircase_probability;
use verdict_core::{VerdictConfig, VerdictContext};
use verdict_data::{InstacartGenerator, SyntheticGenerator};
use verdict_engine::{Connection, Engine};

fn bench_staircase(c: &mut Criterion) {
    c.bench_function("stats/staircase_probability", |b| {
        b.iter(|| staircase_probability(std::hint::black_box(1000), std::hint::black_box(250_000), 0.001))
    });
}

fn bench_estimators(c: &mut Criterion) {
    let values = SyntheticGenerator::paper_default(100_000).values();
    let ns = default_subsample_size(values.len());
    let mut group = c.benchmark_group("estimators_100k");
    group.sample_size(10);
    group.bench_function("variational_subsampling", |b| {
        b.iter(|| variational_subsampling_interval(&values, ns, 0.95, 1))
    });
    group.bench_function("traditional_subsampling_b100", |b| {
        b.iter(|| traditional_subsampling_interval(&values, 100, ns, 0.95, 1))
    });
    group.bench_function("bootstrap_b100", |b| {
        b.iter(|| bootstrap_interval(&values, 100, 0.95, 1))
    });
    group.finish();
}

fn bench_variational_table_sql(c: &mut Criterion) {
    let engine = Engine::with_seed(3);
    SyntheticGenerator::paper_default(50_000).register(&engine);
    let sql = verdict_core::estimate::sql_baselines::variational_subsampling_sql(
        "synthetic", "value", Some("grp"), 100,
    );
    let mut group = c.benchmark_group("sql");
    group.sample_size(10);
    group.bench_function("variational_table_50k_rows", |b| {
        b.iter(|| engine.execute_sql(&sql).unwrap())
    });
    group.finish();
}

fn bench_end_to_end_query(c: &mut Criterion) {
    let engine = Arc::new(Engine::with_seed(5));
    InstacartGenerator::new(0.1).register(&engine);
    let conn: Arc<dyn Connection> = engine;
    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    config.sampling_ratio = 0.02;
    config.io_budget = 0.05;
    config.seed = Some(1);
    let ctx = VerdictContext::new(conn, config);
    ctx.create_sample("order_products", SampleType::Uniform).unwrap();

    let sql = "SELECT count(*) AS n, avg(price) AS ap FROM order_products WHERE price > 5";
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for (label, exact) in [("verdictdb_approximate", false), ("exact_baseline", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &exact, |b, &exact| {
            b.iter(|| {
                if exact {
                    ctx.execute_exact(sql).unwrap()
                } else {
                    ctx.execute(sql).unwrap()
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_staircase,
    bench_estimators,
    bench_variational_table_sql,
    bench_end_to_end_query
);
criterion_main!(benches);
