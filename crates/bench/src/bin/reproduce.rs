//! Regenerates every table and figure of the VerdictDB evaluation at laptop
//! scale and prints them in a paper-aligned layout.
//!
//! Run with: `cargo run --release -p verdict-bench --bin reproduce`
//!
//! Pass `--quick` to use smaller datasets (used in CI smoke runs).

use verdict_bench::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (insta_scale, tpch_scale, ratio) = if quick {
        (0.05, 0.08, 0.05)
    } else {
        (0.3, 0.5, 0.02)
    };

    println!("# VerdictDB-rs — reproduction run (insta scale {insta_scale}, tpch scale {tpch_scale}, τ = {ratio})\n");

    // ----- Figures 4 / 9 / 10 -------------------------------------------------
    println!("## Figures 4 & 9 (speedups) and Figure 10 (actual relative errors)\n");
    let ctx = workload_context(insta_scale, tpch_scale, ratio);
    let rows = speedup_experiment(&ctx);
    println!("| query | redshift | sparksql | impala | actual rel. error | fallback |");
    println!("|-------|---------:|---------:|-------:|------------------:|----------|");
    let mut sum = [0.0f64; 3];
    let mut max = [0.0f64; 3];
    let mut n = 0.0;
    for r in &rows {
        println!(
            "| {} | {:.2}x | {:.2}x | {:.2}x | {:.2}% | {} |",
            r.query,
            r.speedups[0],
            r.speedups[1],
            r.speedups[2],
            100.0 * r.actual_relative_error,
            if r.fell_back { "exact" } else { "" }
        );
        if !r.fell_back {
            for i in 0..3 {
                sum[i] += r.speedups[i];
                max[i] = max[i].max(r.speedups[i]);
            }
            n += 1.0;
        }
    }
    println!(
        "\naverage speedup (approximated queries): redshift {:.1}x, sparksql {:.1}x, impala {:.1}x",
        sum[0] / n,
        sum[1] / n,
        sum[2] / n
    );
    println!(
        "maximum speedup: redshift {:.0}x, sparksql {:.0}x, impala {:.0}x",
        max[0], max[1], max[2]
    );
    let worst_err = rows
        .iter()
        .map(|r| r.actual_relative_error)
        .fold(0.0, f64::max);
    println!(
        "worst actual relative error across the workload: {:.2}%\n",
        100.0 * worst_err
    );

    // ----- Figure 5 -------------------------------------------------------------
    println!("## Figure 5 (speedup vs. data size, sample size fixed)\n");
    println!("| scale factor | modeled redshift speedup |");
    println!("|-------------:|-------------------------:|");
    let scales: Vec<f64> = if quick {
        vec![0.05, 0.1, 0.2]
    } else {
        vec![0.1, 0.25, 0.5, 1.0]
    };
    for (scale, speedup) in scaling_experiment(&scales) {
        println!("| {scale} | {speedup:.1}x |");
    }
    println!();

    // ----- Figure 6 -------------------------------------------------------------
    println!("## Figure 6 (VerdictDB vs tightly-integrated AQP)\n");
    println!("| query | verdictdb | integrated | verdict wins |");
    println!("|-------|----------:|-----------:|--------------|");
    let mut verdict_wins = 0usize;
    let comparison = integrated_comparison(&ctx);
    for (id, v, s, wins) in &comparison {
        println!(
            "| {} | {:.0?} | {:.0?} | {} |",
            id,
            v,
            s,
            if *wins { "yes" } else { "" }
        );
        verdict_wins += usize::from(*wins);
    }
    println!(
        "\nVerdictDB is faster on {verdict_wins}/{} queries (notably those joining two samples).\n",
        comparison.len()
    );

    // ----- Table 2 ---------------------------------------------------------------
    println!("## Table 2 (sampling-based vs native approximate aggregates)\n");
    println!(
        "| aggregate | verdict rows scanned | native rows scanned | verdict err | native err |"
    );
    println!(
        "|-----------|---------------------:|--------------------:|------------:|-----------:|"
    );
    for (label, v_rows, n_rows, v_err, n_err) in native_approx_comparison(&ctx) {
        println!(
            "| {label} | {v_rows} | {n_rows} | {:.2}% | {:.2}% |",
            100.0 * v_err,
            100.0 * n_err
        );
    }
    println!();

    // ----- Figure 7 ---------------------------------------------------------------
    println!("## Figure 7 (error-estimation runtime: variational vs baselines)\n");
    println!("| query shape | variational | traditional subsampling | consolidated bootstrap |");
    println!("|-------------|------------:|------------------------:|-----------------------:|");
    let sample_rows = if quick { 20_000 } else { 100_000 };
    for (shape, v, t, b) in estimation_overhead(sample_rows, 100) {
        println!("| {shape} | {v:.1?} | {t:.1?} | {b:.1?} |");
    }
    println!();

    // ----- Figures 8a / 8b ----------------------------------------------------------
    println!("## Figure 8a (estimated vs groundtruth error across selectivity)\n");
    println!("| selectivity | estimated rel. error | groundtruth rel. error |");
    println!("|------------:|---------------------:|-----------------------:|");
    for (sel, est, truth) in accuracy::selectivity_sweep(&[0.1, 0.3, 0.5, 0.7, 0.9]) {
        println!("| {sel:.1} | {:.3}% | {:.3}% |", 100.0 * est, 100.0 * truth);
    }
    println!("\n## Figure 8b / Figure 12 (error-bound accuracy across sample sizes)\n");
    println!("| n | CLT | bootstrap | subsampling | variational |");
    println!("|--:|----:|----------:|------------:|------------:|");
    let sizes: Vec<usize> = if quick {
        vec![10_000, 50_000]
    } else {
        vec![10_000, 100_000, 1_000_000]
    };
    for (n, clt, boot, tsub, vsub) in accuracy::sample_size_sweep(&sizes, 100) {
        println!(
            "| {n} | {:.1}% | {:.1}% | {:.1}% | {:.1}% |",
            100.0 * clt,
            100.0 * boot,
            100.0 * tsub,
            100.0 * vsub
        );
    }
    println!();

    // ----- Figure 13 ------------------------------------------------------------------
    println!("## Figure 13 (accuracy / latency vs number of resamples b)\n");
    println!("| b | bootstrap err | subsampling err | variational err | bootstrap time | variational time |");
    println!("|--:|--------------:|----------------:|----------------:|---------------:|-----------------:|");
    let n13 = if quick { 50_000 } else { 500_000 };
    for (b, be, te, ve, bt, vt) in accuracy::resample_count_sweep(n13, &[10, 50, 100, 200]) {
        println!(
            "| {b} | {:.1}% | {:.1}% | {:.1}% | {bt:.1?} | {vt:.1?} |",
            100.0 * be,
            100.0 * te,
            100.0 * ve
        );
    }
    println!();

    // ----- Figure 14 -------------------------------------------------------------------
    println!("## Figure 14 (effect of the subsample size ns = n^x)\n");
    println!("| exponent x | relative error of the bound |");
    println!("|-----------:|----------------------------:|");
    let n14 = if quick { 100_000 } else { 500_000 };
    for (x, err) in accuracy::subsample_size_sweep(n14, &[0.25, 0.333, 0.5, 0.667, 0.75]) {
        println!("| {x:.3} | {:.1}% |", 100.0 * err);
    }
    println!();

    // ----- Figure 11 ------------------------------------------------------------------
    println!("## Figure 11 (sample preparation time vs data movement)\n");
    println!("| task | time |");
    println!("|------|-----:|");
    for (task, t) in preparation_time(if quick { 0.05 } else { 0.3 }) {
        println!("| {task} | {t:.1?} |");
    }
    println!();
}
