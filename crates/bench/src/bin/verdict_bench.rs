//! `verdict-bench` — the kernel perf regression gate.
//!
//! ```text
//! verdict-bench --check BENCH_kernels.json [--tolerance 0.10] [--strict]
//! verdict-bench                    # informational run, no gate
//! ```
//!
//! `--check` re-runs the scalar-vs-vectorized kernel rows (the same code the
//! `micro_kernels` bench uses, via [`verdict_bench::kernel`]) and compares
//! each fresh `vectorized_secs` against the committed baseline snapshot.
//! Any kernel more than `tolerance` (default 10%) slower than its baseline
//! fails the gate with exit code 1; a baseline entry with no matching fresh
//! row also fails (stale baseline — regenerate it with `cargo bench -p
//! verdict-bench --bench micro_kernels`).  Fresh rows absent from the
//! baseline are reported as new and pass.
//!
//! On top of the relative tolerance, a regression must also exceed
//! [`NOISE_FLOOR_SECS`] in absolute terms: for sub-millisecond kernels a
//! 10% swing is scheduler noise, not a regression, and a gate that flakes
//! on noise gets deleted rather than fixed.  For the same reason, on a
//! machine with fewer than [`MIN_GATE_CPUS`] cores the verdicts are
//! reported but the gate exits 0 (advisory mode) — back-to-back medians
//! on an oversubscribed 1-core box swing by 30%+ with no code change at
//! all.  `--strict` forces a hard failure regardless of core count.
//!
//! The baseline is parsed with a purpose-built scanner for the snapshot's
//! own line-per-entry format (this workspace has no JSON dependency); only
//! lines carrying both a `"name"` and a `"vectorized_secs"` key are
//! consulted, which selects exactly the gated `"kernels"` section.

use verdict_bench::kernel;

/// Absolute slack a regression must clear in addition to the relative
/// tolerance: one millisecond, i.e. one nanosecond per row at
/// [`kernel::ROWS`] rows — below the run-to-run jitter of medians on a
/// shared CI runner, so only real slowdowns can clear both bars.
const NOISE_FLOOR_SECS: f64 = 0.001;

/// Below this core count gate verdicts are advisory (exit 0 unless
/// `--strict`): the same threshold [`kernel::warn_if_few_cpus`] warns at.
const MIN_GATE_CPUS: usize = 4;

/// Pulls the string following `"name":` out of one snapshot line.
fn extract_name(line: &str) -> Option<String> {
    let rest = line.split("\"name\"").nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Pulls the number following `"vectorized_secs":` out of one snapshot line.
fn extract_vectorized_secs(line: &str) -> Option<f64> {
    let rest = line.split("\"vectorized_secs\"").nth(1)?;
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The `(name, vectorized_secs)` pairs of the baseline's gated section.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    text.lines()
        .filter_map(|line| Some((extract_name(line)?, extract_vectorized_secs(line)?)))
        .collect()
}

fn usage() -> ! {
    eprintln!("usage: verdict-bench [--check BENCH_kernels.json] [--tolerance 0.10] [--strict]");
    std::process::exit(2);
}

fn main() {
    let mut check: Option<String> = None;
    let mut tolerance = 0.10f64;
    let mut strict = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = Some(args.next().unwrap_or_else(|| usage())),
            "--tolerance" => {
                tolerance = args
                    .next()
                    .and_then(|t| t.parse().ok())
                    .filter(|t: &f64| *t >= 0.0)
                    .unwrap_or_else(|| usage())
            }
            "--strict" => strict = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    kernel::warn_if_few_cpus();
    println!(
        "# verdict-bench — {} rows, median of {}, {} cpu(s), {}",
        kernel::ROWS,
        kernel::REPS,
        kernel::cpus(),
        kernel::rustc_version()
    );
    let fresh = kernel::scalar_vs_vectorized_rows();

    let Some(baseline_path) = check else {
        println!("\n| kernel | scalar (ms) | vectorized (ms) | speedup |");
        println!("|--------|------------:|----------------:|--------:|");
        for r in &fresh {
            println!(
                "| {} | {:.2} | {:.2} | {:.2}x |",
                r.name,
                r.scalar_secs * 1e3,
                r.vectorized_secs * 1e3,
                r.speedup()
            );
        }
        println!("\n(no --check: informational run, nothing gated)");
        return;
    };

    let text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("verdict-bench: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = parse_baseline(&text);
    if baseline.is_empty() {
        eprintln!("verdict-bench: no gated kernel entries found in {baseline_path}");
        std::process::exit(2);
    }

    println!(
        "\ngate: fresh vectorized_secs vs {baseline_path} (fail above {:.0}%)\n",
        tolerance * 100.0
    );
    println!("| kernel | baseline (ms) | fresh (ms) | delta | verdict |");
    println!("|--------|--------------:|-----------:|------:|---------|");
    let mut failures = 0usize;
    for r in &fresh {
        match baseline.iter().find(|(name, _)| name == r.name) {
            Some((_, base_secs)) => {
                let delta = r.vectorized_secs / base_secs.max(1e-12) - 1.0;
                let regressed =
                    delta > tolerance && r.vectorized_secs - base_secs > NOISE_FLOOR_SECS;
                if regressed {
                    failures += 1;
                }
                println!(
                    "| {} | {:.3} | {:.3} | {:+.1}% | {} |",
                    r.name,
                    base_secs * 1e3,
                    r.vectorized_secs * 1e3,
                    delta * 100.0,
                    if regressed { "REGRESSED" } else { "ok" }
                );
            }
            None => println!(
                "| {} | — | {:.3} | — | new (no baseline) |",
                r.name,
                r.vectorized_secs * 1e3
            ),
        }
    }
    for (name, _) in &baseline {
        if !fresh.iter().any(|r| r.name == *name) {
            failures += 1;
            println!("| {name} | (in baseline) | — | — | MISSING — stale baseline |");
        }
    }
    if failures > 0 {
        if kernel::cpus() < MIN_GATE_CPUS && !strict {
            eprintln!(
                "\nverdict-bench: {failures} kernel(s) over tolerance, but this machine \
                 has {} cpu(s) (< {MIN_GATE_CPUS}) so timings are not trustworthy — \
                 ADVISORY ONLY, not failing the gate (pass --strict to override)",
                kernel::cpus()
            );
            return;
        }
        eprintln!(
            "\nverdict-bench: {failures} kernel(s) failed the gate; if the change is \
             intentional, regenerate the baseline with `cargo bench -p verdict-bench \
             --bench micro_kernels` and commit BENCH_kernels.json"
        );
        std::process::exit(1);
    }
    println!(
        "\nall kernels within tolerance ({:.0}% + {:.1} ms noise floor)",
        tolerance * 100.0,
        NOISE_FLOOR_SECS * 1e3
    );
}
