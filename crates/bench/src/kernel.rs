//! Shared scalar-vs-vectorized kernel micro-benchmark rows.
//!
//! Backs both the `micro_kernels` bench (which writes the committed
//! `BENCH_kernels.json` perf snapshot) and the `verdict-bench` regression
//! gate binary (which re-runs the same rows and compares them against that
//! snapshot), so the gate and the snapshot can never drift apart on *what*
//! they measure.
//!
//! The scalar paths materialise every cell as a dynamically-typed `Value`
//! with per-cell enum dispatch — the exact shape of the engine before the
//! typed-columnar refactor.  The vectorized paths are the packed-mask /
//! dictionary-key / radix-partition kernels the engine runs today.

use std::time::Instant;
use verdict_engine::kernels::{self, group_rows_with};
use verdict_engine::{Column, ColumnData, SelVec, ThreadPool, Value};
use verdict_sql::ast::BinaryOp;

/// Rows per benchmarked column.
pub const ROWS: usize = 1_000_000;
/// Repetitions per timing (the median is reported).
pub const REPS: usize = 7;

/// Runs `f` [`REPS`] times and returns the median wall-clock time in seconds.
pub fn median_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..REPS)
        .map(|_| {
            let t0 = Instant::now();
            let out = f();
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(out);
            dt
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Deterministic synthetic columns: a float "price" with ~1% NULLs and an
/// int "qty" with 7 distinct values, mimicking the shape of the Instacart
/// fact table.
pub fn synthetic_columns(n: usize) -> (Column, Column) {
    let mut price: Vec<Option<f64>> = Vec::with_capacity(n);
    let mut qty: Vec<i64> = Vec::with_capacity(n);
    let mut state = 0x5a5a5a5au64;
    for i in 0..n {
        // splitmix-style scramble, deterministic across runs
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        price.push(if z.is_multiple_of(100) {
            None
        } else {
            Some(1.5 + 30.0 * u)
        });
        qty.push((i % 7) as i64 + 1);
    }
    (Column::from_opt_f64(price), Column::from_i64(qty))
}

/// 16-distinct dense int keys: squarely inside the dictionary-grouping
/// window (a tiny min..max range, direct-indexed group codes).
pub fn keys_16(n: usize) -> Column {
    Column::from_i64((0..n as i64).map(|i| i % 16).collect())
}

/// ~n-distinct wide int keys: far beyond any dictionary, the shape the
/// radix-partitioned grouping path exists for.
pub fn keys_distinct(n: usize) -> Column {
    Column::from_i64((0..n as i64).map(|i| i.wrapping_mul(104_729)).collect())
}

/// A wide scan input: a float selector column plus `width` float payload
/// columns, for the late-materialization scan benchmark.
pub fn scan_columns(n: usize, width: usize) -> (Column, Vec<Column>) {
    let (sel, _) = synthetic_columns(n);
    let payload = (0..width)
        .map(|c| Column::from_f64((0..n).map(|i| ((i * (c + 3)) % 1000) as f64).collect()))
        .collect();
    (sel, payload)
}

// ---------------------------------------------------------------------------
// Scalar reference paths.
// ---------------------------------------------------------------------------

/// Per-cell `Value` comparison into a `Vec<bool>` mask.
pub fn scalar_filter_mask(col: &Column, threshold: f64) -> Vec<bool> {
    let t = Value::Float(threshold);
    (0..col.len())
        .map(|i| {
            col.value_at(i)
                .sql_cmp(&t)
                .map(|o| o == std::cmp::Ordering::Greater)
                .unwrap_or(false)
        })
        .collect()
}

/// Per-cell `Value` sum/avg fold.
pub fn scalar_sum_avg(col: &Column) -> (f64, f64) {
    let mut sum = 0.0;
    let mut count = 0u64;
    for i in 0..col.len() {
        if let Some(x) = col.value_at(i).as_f64() {
            sum += x;
            count += 1;
        }
    }
    (sum, sum / count.max(1) as f64)
}

/// Per-cell `KeyValue`-hashed grouped sum.
pub fn scalar_grouped_sum(keys: &Column, values: &Column) -> Vec<(verdict_engine::KeyValue, f64)> {
    let mut map: std::collections::HashMap<verdict_engine::KeyValue, f64> =
        std::collections::HashMap::new();
    for i in 0..keys.len() {
        let k = verdict_engine::KeyValue::from_value(&keys.value_at(i));
        // The group exists even when this row's value is NULL — GROUP BY
        // semantics, and what the gid-indexed vectorized fold produces.
        let entry = map.entry(k).or_insert(0.0);
        if let Some(x) = values.value_at(i).as_f64() {
            *entry += x;
        }
    }
    map.into_iter().collect()
}

/// Row-at-a-time scan: test the selector per row, materialise every payload
/// cell of surviving rows as a `Value` — the pre-refactor scan shape.
pub fn scalar_scan_gather(sel: &Column, payload: &[Column], threshold: f64) -> Vec<Vec<Value>> {
    let t = Value::Float(threshold);
    let mut out = Vec::new();
    for i in 0..sel.len() {
        let keep = sel
            .value_at(i)
            .sql_cmp(&t)
            .map(|o| o == std::cmp::Ordering::Greater)
            .unwrap_or(false);
        if keep {
            out.push(payload.iter().map(|c| c.value_at(i)).collect());
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Vectorized paths: the engine's typed-column kernels (serial pool).
// ---------------------------------------------------------------------------

/// Fused branch-free compare + packed-mask kernel.
pub fn vector_filter_mask(col: &Column, threshold: f64) -> SelVec {
    let t = Column::repeat(&Value::Float(threshold), col.len());
    kernels::par_filter_mask(col, BinaryOp::Gt, &t, &ThreadPool::serial())
}

/// Typed sum/avg kernel.
pub fn vector_sum_avg(col: &Column) -> (f64, f64) {
    let (sum, count) = col.sum_count_f64();
    (sum, sum / count.max(1) as f64)
}

/// Strategy-dispatched grouping (dict / radix / hash by key shape) plus a
/// dense gid-indexed sum fold.
pub fn vector_grouped_sum(keys: &Column, values: &Column, pool: &ThreadPool) -> Vec<f64> {
    let grouping = group_rows_with(std::slice::from_ref(keys), keys.len(), pool);
    let mut sums = vec![0.0f64; grouping.num_groups()];
    match values.data() {
        ColumnData::Float64(v) => {
            for (i, &g) in grouping.gids.iter().enumerate() {
                if values.is_valid(i) {
                    sums[g] += v[i];
                }
            }
        }
        _ => {
            for (i, &g) in grouping.gids.iter().enumerate() {
                if let Some(x) = values.f64_at(i) {
                    sums[g] += x;
                }
            }
        }
    }
    sums
}

/// Late-materialized scan: packed mask over the selector column only, then a
/// per-column gather of the surviving rows — never touching the payload
/// cells of filtered-out rows.
pub fn late_mat_scan(
    sel: &Column,
    payload: &[Column],
    threshold: f64,
    pool: &ThreadPool,
) -> Vec<Column> {
    let t = Column::repeat(&Value::Float(threshold), sel.len());
    let mask = kernels::par_filter_mask(sel, BinaryOp::Gt, &t, pool);
    let rows = mask.indices();
    payload.iter().map(|c| c.take(&rows)).collect()
}

// ---------------------------------------------------------------------------
// Morsel-parallel paths: the same kernels across a ThreadPool.  Partial
// states merge in morsel order, so results are bit-identical to running the
// same morsel decomposition on one thread.
// ---------------------------------------------------------------------------

/// Morsel-parallel fused compare + packed mask.
pub fn par_filter_mask(col: &Column, threshold: f64, pool: &ThreadPool) -> SelVec {
    let t = Column::repeat(&Value::Float(threshold), col.len());
    kernels::par_filter_mask(col, BinaryOp::Gt, &t, pool)
}

/// Morsel-parallel sum/avg.
pub fn par_sum_avg(col: &Column, pool: &ThreadPool) -> (f64, f64) {
    let (sum, count) = col.par_sum_count_f64(pool);
    (sum, sum / count.max(1) as f64)
}

/// Morsel-parallel grouped sum (strategy-dispatched grouping + per-morsel
/// partial sums merged in morsel order).
pub fn par_grouped_sum(keys: &Column, values: &Column, pool: &ThreadPool) -> Vec<f64> {
    let n = keys.len();
    let grouping = group_rows_with(std::slice::from_ref(keys), n, pool);
    let num_groups = grouping.num_groups();
    let partials = pool.run_morsels(n, |range| {
        let mut sums = vec![0.0f64; num_groups];
        match values.data() {
            ColumnData::Float64(v) => {
                for i in range {
                    if values.is_valid(i) {
                        sums[grouping.gids[i]] += v[i];
                    }
                }
            }
            _ => {
                for i in range {
                    if let Some(x) = values.f64_at(i) {
                        sums[grouping.gids[i]] += x;
                    }
                }
            }
        }
        sums
    });
    partials
        .into_iter()
        .reduce(|mut merged, partial| {
            for (dst, src) in merged.iter_mut().zip(partial) {
                *dst += src;
            }
            merged
        })
        .unwrap_or_else(|| vec![0.0; num_groups])
}

// ---------------------------------------------------------------------------
// The gated rows.
// ---------------------------------------------------------------------------

/// One scalar-vs-vectorized benchmark row; `vectorized_secs` is what the
/// regression gate compares against the committed baseline.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Stable kernel name (the gate matches baseline entries by it).
    pub name: &'static str,
    /// Median seconds on the scalar `Value` reference path.
    pub scalar_secs: f64,
    /// Median seconds on the vectorized kernel path.
    pub vectorized_secs: f64,
}

impl KernelRow {
    /// Scalar-over-vectorized speedup factor.
    pub fn speedup(&self) -> f64 {
        self.scalar_secs / self.vectorized_secs.max(1e-12)
    }
}

/// Payload columns in the late-materialization scan row.
pub const SCAN_WIDTH: usize = 8;
/// Selector threshold for the scan row (~10% of rows survive).
pub const SCAN_THRESHOLD: f64 = 28.5;

/// Runs every scalar-vs-vectorized row at [`ROWS`] rows — cross-checking
/// each pair for agreement before timing it — and returns the rows in the
/// order they appear in `BENCH_kernels.json`.
pub fn scalar_vs_vectorized_rows() -> Vec<KernelRow> {
    let serial = ThreadPool::serial();
    let (price, qty) = synthetic_columns(ROWS);
    let k16 = keys_16(ROWS);
    let kwide = keys_distinct(ROWS);
    let (sel, payload) = scan_columns(ROWS, SCAN_WIDTH);

    // Sanity: every scalar/vectorized pair must agree before we time it.
    assert_eq!(
        scalar_filter_mask(&price, 15.0),
        vector_filter_mask(&price, 15.0).to_bools()
    );
    let (ss, sa) = scalar_sum_avg(&price);
    let (vs, va) = vector_sum_avg(&price);
    assert!((ss - vs).abs() < 1e-6 && (sa - va).abs() < 1e-9);
    for keys in [&qty, &k16, &kwide] {
        let scalar_groups = scalar_grouped_sum(keys, &price);
        let vector_groups = vector_grouped_sum(keys, &price, &serial);
        assert_eq!(scalar_groups.len(), vector_groups.len());
        let scalar_total: f64 = scalar_groups.iter().map(|(_, s)| s).sum();
        let vector_total: f64 = vector_groups.iter().sum();
        assert!((scalar_total - vector_total).abs() / scalar_total.abs() < 1e-9);
    }
    let scalar_rows = scalar_scan_gather(&sel, &payload, SCAN_THRESHOLD);
    let gathered = late_mat_scan(&sel, &payload, SCAN_THRESHOLD, &serial);
    assert!(gathered.iter().all(|c| c.len() == scalar_rows.len()));
    let scalar_checksum: f64 = scalar_rows
        .iter()
        .flat_map(|r| r.iter().filter_map(|v| v.as_f64()))
        .sum();
    let gathered_checksum: f64 = gathered.iter().map(|c| c.sum_count_f64().0).sum();
    assert!((scalar_checksum - gathered_checksum).abs() / scalar_checksum.abs() < 1e-9);

    vec![
        KernelRow {
            name: "filter_gt",
            scalar_secs: median_secs(|| scalar_filter_mask(&price, 15.0)),
            vectorized_secs: median_secs(|| vector_filter_mask(&price, 15.0)),
        },
        KernelRow {
            name: "sum_avg",
            scalar_secs: median_secs(|| scalar_sum_avg(&price)),
            vectorized_secs: median_secs(|| vector_sum_avg(&price)),
        },
        KernelRow {
            name: "grouped_sum",
            scalar_secs: median_secs(|| scalar_grouped_sum(&qty, &price)),
            vectorized_secs: median_secs(|| vector_grouped_sum(&qty, &price, &serial)),
        },
        KernelRow {
            name: "grouped_sum_16d",
            scalar_secs: median_secs(|| scalar_grouped_sum(&k16, &price)),
            vectorized_secs: median_secs(|| vector_grouped_sum(&k16, &price, &serial)),
        },
        KernelRow {
            name: "grouped_sum_1m",
            scalar_secs: median_secs(|| scalar_grouped_sum(&kwide, &price)),
            vectorized_secs: median_secs(|| vector_grouped_sum(&kwide, &price, &serial)),
        },
        KernelRow {
            name: "late_mat_scan",
            scalar_secs: median_secs(|| scalar_scan_gather(&sel, &payload, SCAN_THRESHOLD)),
            vectorized_secs: median_secs(|| late_mat_scan(&sel, &payload, SCAN_THRESHOLD, &serial)),
        },
    ]
}

// ---------------------------------------------------------------------------
// Machine provenance for the perf snapshot.
// ---------------------------------------------------------------------------

/// Logical CPUs available to this process.
pub fn cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The active `rustc -V` string, or `"unknown"` when rustc is unreachable.
pub fn rustc_version() -> String {
    let rustc = std::env::var_os("RUSTC").unwrap_or_else(|| "rustc".into());
    std::process::Command::new(rustc)
        .arg("-V")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Prints a loud warning when fewer than 4 cores are available: parallel
/// speedups are meaningless and timings are noisy on such boxes, so their
/// snapshots should not become the committed baseline.
pub fn warn_if_few_cpus() {
    let n = cpus();
    if n < 4 {
        eprintln!(
            "WARNING: only {n} CPU core(s) available — timings will be noisy and \
             parallel speedups meaningless; do not commit a BENCH_kernels.json \
             baseline produced on this machine"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_vectorized_paths_agree_on_small_inputs() {
        let n = 10_000;
        let serial = ThreadPool::serial();
        let (price, qty) = synthetic_columns(n);
        assert_eq!(
            scalar_filter_mask(&price, 15.0),
            vector_filter_mask(&price, 15.0).to_bools()
        );
        for keys in [&qty, &keys_16(n), &keys_distinct(n)] {
            let scalar: f64 = scalar_grouped_sum(keys, &price)
                .iter()
                .map(|(_, s)| s)
                .sum();
            let vector: f64 = vector_grouped_sum(keys, &price, &serial).iter().sum();
            assert!((scalar - vector).abs() / scalar.abs() < 1e-9);
        }
        let (sel, payload) = scan_columns(n, 4);
        let scalar_rows = scalar_scan_gather(&sel, &payload, SCAN_THRESHOLD);
        let gathered = late_mat_scan(&sel, &payload, SCAN_THRESHOLD, &serial);
        assert!(!scalar_rows.is_empty());
        assert!(gathered.iter().all(|c| c.len() == scalar_rows.len()));
    }

    #[test]
    fn machine_provenance_is_reportable() {
        assert!(cpus() >= 1);
        assert!(!rustc_version().is_empty());
    }
}
