//! Benchmark harness reproducing the tables and figures of the VerdictDB
//! evaluation (§6 and Appendix B of the paper).
//!
//! Each experiment is a plain function returning printable rows, so the same
//! code backs the `reproduce` binary (which regenerates EXPERIMENTS.md-style
//! output) and the Criterion benches.  Scales are parameters: the defaults
//! target seconds-per-experiment on a laptop; the shapes — who wins, by
//! roughly what factor, where the crossovers fall — are what the paper's
//! conclusions rest on and are preserved at any scale.

pub mod kernel;

use std::sync::Arc;
use std::time::{Duration, Instant};
use verdict_core::estimate::{
    bootstrap_interval, clt_interval, default_subsample_size, sql_baselines,
    traditional_subsampling_interval, variational_subsampling_interval,
};
use verdict_core::integrated::{IntegratedAqp, IntegratedSample};
use verdict_core::sample::SampleType;
use verdict_core::{VerdictConfig, VerdictContext};
use verdict_data::{
    instacart_queries, tpch_queries, InstacartGenerator, SyntheticGenerator, TpchGenerator,
};
use verdict_engine::{Backend, Engine, EngineProfile, ExecStats};

/// One per-query row of the speedup/error experiments (Figures 4, 9, 10).
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub query: String,
    pub exact_rows_scanned: u64,
    pub approx_rows_scanned: u64,
    pub exact_elapsed: Duration,
    pub approx_elapsed: Duration,
    /// Modeled speedup per engine profile, in [redshift, sparksql, impala] order.
    pub speedups: Vec<f64>,
    /// Worst actual relative error of the approximate answer vs the exact one.
    pub actual_relative_error: f64,
    /// True when VerdictDB fell back to exact execution.
    pub fell_back: bool,
}

/// Builds a fully-sampled workload context shared by the speedup experiments.
pub fn workload_context(insta_scale: f64, tpch_scale: f64, sampling_ratio: f64) -> VerdictContext {
    let engine = Arc::new(Engine::with_seed(20180610));
    InstacartGenerator::new(insta_scale).register(&engine);
    TpchGenerator::new(tpch_scale).register(&engine);
    let conn: Arc<dyn Backend> = engine;
    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    config.sampling_ratio = sampling_ratio;
    config.io_budget = (sampling_ratio * 2.5).min(0.5);
    config.seed = Some(4);
    let ctx = VerdictContext::new(conn, config);
    for table in ["order_products", "lineitem", "tpch_orders", "orders"] {
        let _ = ctx.create_sample(table, SampleType::Uniform);
    }
    let _ = ctx.create_sample(
        "orders",
        SampleType::Hashed {
            columns: vec!["order_id".into()],
        },
    );
    let _ = ctx.create_sample(
        "order_products",
        SampleType::Hashed {
            columns: vec!["order_id".into()],
        },
    );
    let _ = ctx.create_sample(
        "lineitem",
        SampleType::Hashed {
            columns: vec!["l_orderkey".into()],
        },
    );
    let _ = ctx.create_sample(
        "tpch_orders",
        SampleType::Hashed {
            columns: vec!["o_orderkey".into()],
        },
    );
    let _ = ctx.create_sample(
        "lineitem",
        SampleType::Stratified {
            columns: vec!["l_returnflag".into(), "l_linestatus".into()],
        },
    );
    let _ = ctx.create_sample(
        "orders",
        SampleType::Stratified {
            columns: vec!["city".into()],
        },
    );
    ctx
}

/// Figures 4, 9, 10: per-query speedups (under the three engine profiles) and
/// actual relative errors for the full tq-*/iq-* workload.
pub fn speedup_experiment(ctx: &VerdictContext) -> Vec<SpeedupRow> {
    let mut rows = Vec::new();
    for q in tpch_queries().iter().chain(instacart_queries().iter()) {
        let exact = match ctx.execute_exact(&q.sql) {
            Ok(a) => a,
            Err(_) => continue,
        };
        let approx = match ctx.execute(&q.sql) {
            Ok(a) => a,
            Err(_) => continue,
        };
        let exact_stats = ExecStats {
            rows_scanned: exact.rows_scanned,
            elapsed: exact.elapsed,
        };
        let approx_stats = ExecStats {
            rows_scanned: approx.rows_scanned,
            elapsed: approx.elapsed,
        };
        let speedups: Vec<f64> = EngineProfile::all()
            .iter()
            .map(|p| {
                if approx.exact {
                    1.0
                } else {
                    p.speedup(&exact_stats, &approx_stats)
                }
            })
            .collect();
        rows.push(SpeedupRow {
            query: q.id.to_string(),
            exact_rows_scanned: exact.rows_scanned,
            approx_rows_scanned: approx.rows_scanned,
            exact_elapsed: exact.elapsed,
            approx_elapsed: approx.elapsed,
            speedups,
            actual_relative_error: actual_relative_error(&approx.table, &exact.table),
            fell_back: approx.exact,
        });
    }
    rows
}

/// Worst relative difference between the numeric columns of an approximate
/// and an exact result (rows matched positionally after both are sorted by
/// their first column).
pub fn actual_relative_error(approx: &verdict_engine::Table, exact: &verdict_engine::Table) -> f64 {
    if approx.num_rows() == 0 || exact.num_rows() == 0 || approx.num_rows() != exact.num_rows() {
        return 0.0;
    }
    // Rows are matched on the first column's value (the group key) so that
    // answers ordered by an *estimated* aggregate are still compared
    // group-to-group; single-row answers match trivially.
    let mut exact_by_key: std::collections::HashMap<verdict_engine::KeyValue, usize> =
        std::collections::HashMap::new();
    for r in 0..exact.num_rows() {
        exact_by_key.insert(
            verdict_engine::KeyValue::from_value(&exact.value_at(r, 0)),
            r,
        );
    }
    let mut worst: f64 = 0.0;
    for ra in 0..approx.num_rows() {
        let key = verdict_engine::KeyValue::from_value(&approx.value_at(ra, 0));
        let Some(&re) = exact_by_key.get(&key) else {
            continue;
        };
        for c in 0..exact.num_columns().min(approx.num_columns()) {
            let (Some(a), Some(e)) = (approx.value(ra, c).as_f64(), exact.value(re, c).as_f64())
            else {
                continue;
            };
            if e.abs() > 1e-9 {
                worst = worst.max((a - e).abs() / e.abs());
            }
        }
    }
    worst
}

/// Figure 5: speedup versus original data size with the sample size held
/// fixed.  Returns `(scale, modeled redshift speedup)` pairs for tq-6.
pub fn scaling_experiment(scales: &[f64]) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    let sql = &tpch_queries()
        .iter()
        .find(|q| q.id == "tq-6")
        .unwrap()
        .sql
        .clone();
    for &scale in scales {
        let engine = Arc::new(Engine::with_seed(3));
        TpchGenerator::new(scale).register(&engine);
        let conn: Arc<dyn Backend> = engine;
        let mut config = VerdictConfig::default();
        config.min_table_rows = 10_000;
        // fixed-size sample: ratio shrinks as the data grows
        config.sampling_ratio = (0.02 / scale).min(0.5);
        config.io_budget = (config.sampling_ratio * 2.5).min(0.6);
        config.seed = Some(9);
        let ctx = VerdictContext::new(conn, config);
        let _ = ctx.create_sample("lineitem", SampleType::Uniform);
        let exact = ctx.execute_exact(sql).unwrap();
        let approx = ctx.execute(sql).unwrap();
        let profile = EngineProfile::redshift();
        let speedup = profile.speedup(
            &ExecStats {
                rows_scanned: exact.rows_scanned,
                elapsed: exact.elapsed,
            },
            &ExecStats {
                rows_scanned: approx.rows_scanned,
                elapsed: approx.elapsed,
            },
        );
        out.push((scale, speedup));
    }
    out
}

/// Figure 6: VerdictDB versus the tightly-integrated AQP baseline.
/// Returns `(query id, verdict latency, integrated latency, verdict wins)`.
pub fn integrated_comparison(ctx: &VerdictContext) -> Vec<(String, Duration, Duration, bool)> {
    let mut integrated = IntegratedAqp::new(Arc::clone(ctx.connection()));
    for meta in ctx.meta().all() {
        if matches!(meta.sample_type, SampleType::Uniform) {
            integrated.register_sample(IntegratedSample {
                base_table: meta.base_table.clone(),
                sample_table: meta.sample_table.clone(),
                ratio: meta.ratio,
            });
        }
    }
    let mut rows = Vec::new();
    for q in instacart_queries().iter().chain(tpch_queries().iter()) {
        let Ok(verdict) = ctx.execute(&q.sql) else {
            continue;
        };
        let Ok(snappy) = integrated.execute(&q.sql) else {
            continue;
        };
        // model the latency so the fixed middleware overhead matters the same
        // way for both systems
        let profile = EngineProfile::spark_sql();
        let v = profile.model_latency(&ExecStats {
            rows_scanned: verdict.rows_scanned,
            elapsed: verdict.elapsed,
        });
        let s = profile.model_latency(&ExecStats {
            rows_scanned: snappy.rows_scanned,
            elapsed: snappy.elapsed,
        });
        rows.push((q.id.to_string(), v, s, v < s));
    }
    rows
}

/// Table 2: sampling-based count-distinct / median versus the engine's native
/// approximate aggregates (full-scan sketches).  Returns rows of
/// `(label, verdict rows scanned, native rows scanned, verdict err, native err)`.
pub fn native_approx_comparison(ctx: &VerdictContext) -> Vec<(String, u64, u64, f64, f64)> {
    let conn = ctx.connection();
    let mut rows = Vec::new();

    let exact_distinct = conn
        .execute("SELECT count(DISTINCT order_id) AS d FROM order_products")
        .unwrap();
    let truth = exact_distinct.table.value(0, 0).as_f64().unwrap();
    let verdict = ctx
        .execute("SELECT count(DISTINCT order_id) AS d FROM order_products")
        .unwrap();
    let native = conn
        .execute("SELECT ndv(order_id) AS d FROM order_products")
        .unwrap();
    rows.push((
        "count-distinct".to_string(),
        verdict.rows_scanned,
        native.stats.rows_scanned,
        (verdict.table.value(0, 0).as_f64().unwrap() - truth).abs() / truth,
        (native.table.value(0, 0).as_f64().unwrap() - truth).abs() / truth,
    ));

    let exact_median = conn
        .execute("SELECT median(price) AS m FROM order_products")
        .unwrap();
    let truth = exact_median.table.value(0, 0).as_f64().unwrap();
    let verdict = ctx
        .execute("SELECT median(price) AS m FROM order_products")
        .unwrap();
    let native = conn
        .execute("SELECT approx_median(price) AS m FROM order_products")
        .unwrap();
    rows.push((
        "median".to_string(),
        verdict.rows_scanned,
        native.stats.rows_scanned,
        (verdict.table.value(0, 0).as_f64().unwrap() - truth).abs() / truth,
        (native.table.value(0, 0).as_f64().unwrap() - truth).abs() / truth,
    ));
    rows
}

/// Figure 7: middleware runtime of the three SQL error-estimation strategies
/// over a sample table, for flat / join / nested query shapes.  Returns
/// `(shape, variational, traditional, consolidated bootstrap)` latencies.
pub fn estimation_overhead(
    sample_rows: usize,
    b: u64,
) -> Vec<(String, Duration, Duration, Duration)> {
    let engine = Engine::with_seed(17);
    SyntheticGenerator::paper_default(sample_rows).register(&engine);
    // a second sample table for the join shape
    engine
        .execute_sql("CREATE TABLE synthetic_dim AS SELECT grp, avg(value) AS grp_value FROM synthetic GROUP BY grp")
        .unwrap();

    let time = |sql: &str| {
        let start = Instant::now();
        engine.execute_sql(sql).unwrap();
        start.elapsed()
    };

    let mut out = Vec::new();
    // flat
    out.push((
        "flat".to_string(),
        time(&sql_baselines::variational_subsampling_sql(
            "synthetic",
            "value",
            Some("grp"),
            b,
        )),
        time(&sql_baselines::traditional_subsampling_sql(
            "synthetic",
            "value",
            Some("grp"),
            b,
            0.01,
        )),
        time(&sql_baselines::consolidated_bootstrap_sql(
            "synthetic",
            "value",
            Some("grp"),
            b,
        )),
    ));
    // join: the same estimators over a joined source
    let join_src = "synthetic INNER JOIN synthetic_dim ON synthetic.grp = synthetic_dim.grp";
    out.push((
        "join".to_string(),
        time(&sql_baselines::variational_subsampling_sql(
            join_src,
            "value",
            Some("grp"),
            b,
        )),
        time(&sql_baselines::traditional_subsampling_sql(
            join_src,
            "value",
            Some("grp"),
            b,
            0.01,
        )),
        time(&sql_baselines::consolidated_bootstrap_sql(
            join_src,
            "value",
            Some("grp"),
            b,
        )),
    ));
    // nested: estimators over an aggregate-in-FROM derived table
    let nested_src =
        "(SELECT grp, id, sum(value) AS value FROM synthetic GROUP BY grp, id) AS nested_t";
    out.push((
        "nested".to_string(),
        time(&sql_baselines::variational_subsampling_sql(
            nested_src,
            "value",
            Some("grp"),
            b,
        )),
        time(&sql_baselines::traditional_subsampling_sql(
            nested_src,
            "value",
            Some("grp"),
            b,
            0.01,
        )),
        time(&sql_baselines::consolidated_bootstrap_sql(
            nested_src,
            "value",
            Some("grp"),
            b,
        )),
    ));
    out
}

/// Figures 8a/8b/12/13/14: error-estimation accuracy experiments on the
/// synthetic dataset.  All return `(x, estimated relative error)` series,
/// with the method-specific comparisons bundled where the figure needs them.
pub mod accuracy {
    use super::*;

    /// Figure 8a: estimated count error across selectivities (n = 10K).
    pub fn selectivity_sweep(selectivities: &[f64]) -> Vec<(f64, f64, f64)> {
        let n = 10_000;
        let gen = SyntheticGenerator::paper_default(200_000);
        let values = gen.values();
        let mut out = Vec::new();
        for &sel in selectivities {
            // groundtruth: count estimate error for a Bernoulli(sel) predicate
            // estimated from a sample of size n out of the population
            let population = values.len() as f64;
            let truth_count = population * sel;
            let sample: Vec<f64> = values.iter().take(n).copied().collect();
            // the estimator counts qualifying sample rows scaled to the population
            let qualifying: Vec<f64> = sample
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    if (i as f64 / n as f64) < sel {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let ci =
                variational_subsampling_interval(&qualifying, default_subsample_size(n), 0.95, 7);
            let estimated_rel = ci.half_width() / sel.max(1e-9);
            let groundtruth_rel = 1.96 * ((sel * (1.0 - sel) / n as f64).sqrt()) / sel;
            out.push((sel, estimated_rel, groundtruth_rel));
            let _ = truth_count;
        }
        out
    }

    /// Figures 8b/12: relative error of the estimated bound per method, for
    /// several sample sizes. Returns `(n, clt, bootstrap, subsampling, variational)`.
    pub fn sample_size_sweep(sizes: &[usize], b: usize) -> Vec<(usize, f64, f64, f64, f64)> {
        let mut out = Vec::new();
        for &n in sizes {
            let values = SyntheticGenerator::paper_default(n).values();
            let truth = 1.96 * 10.0 / (n as f64).sqrt() / 10.0; // true relative error of the mean
            let rel = |hw: f64| ((hw / 10.0) - truth).abs() / truth;
            let clt = clt_interval(&values, 0.95);
            let boot = bootstrap_interval(&values, b, 0.95, 1);
            let tsub =
                traditional_subsampling_interval(&values, b, default_subsample_size(n), 0.95, 2);
            let vsub =
                variational_subsampling_interval(&values, default_subsample_size(n), 0.95, 3);
            out.push((
                n,
                rel(clt.half_width()),
                rel(boot.half_width()),
                rel(tsub.half_width()),
                rel(vsub.half_width()),
            ));
        }
        out
    }

    /// Figure 13: accuracy and latency versus the number of resamples b.
    /// Returns `(b, bootstrap err, subsampling err, variational err, bootstrap time, variational time)`.
    pub fn resample_count_sweep(
        n: usize,
        bs: &[usize],
    ) -> Vec<(usize, f64, f64, f64, Duration, Duration)> {
        let values = SyntheticGenerator::paper_default(n).values();
        let truth = 1.96 * 10.0 / (n as f64).sqrt() / 10.0;
        let rel = |hw: f64| ((hw / 10.0) - truth).abs() / truth;
        let mut out = Vec::new();
        for &b in bs {
            let t0 = Instant::now();
            let boot = bootstrap_interval(&values, b, 0.95, 1);
            let boot_time = t0.elapsed();
            let tsub = traditional_subsampling_interval(&values, b, n / b.max(1), 0.95, 2);
            let t1 = Instant::now();
            let vsub = variational_subsampling_interval(&values, n / b.max(1), 0.95, 3);
            let vsub_time = t1.elapsed();
            out.push((
                b,
                rel(boot.half_width()),
                rel(tsub.half_width()),
                rel(vsub.half_width()),
                boot_time,
                vsub_time,
            ));
        }
        out
    }

    /// Figure 14: relative error of the error bound versus the subsample size
    /// exponent (ns = n^x).  Returns `(exponent, relative error)`.
    pub fn subsample_size_sweep(n: usize, exponents: &[f64]) -> Vec<(f64, f64)> {
        let values = SyntheticGenerator::paper_default(n).values();
        let truth = 1.96 * 10.0 / (n as f64).sqrt() / 10.0;
        exponents
            .iter()
            .map(|&x| {
                let ns = (n as f64).powf(x).round().max(2.0) as usize;
                let ci = variational_subsampling_interval(&values, ns, 0.95, 11);
                (x, ((ci.half_width() / 10.0) - truth).abs() / truth)
            })
            .collect()
    }
}

/// Figure 11: sample-preparation time versus baseline data-movement work.
/// Returns `(task, duration)` rows.
pub fn preparation_time(scale: f64) -> Vec<(String, Duration)> {
    let engine = Arc::new(Engine::with_seed(23));
    InstacartGenerator::new(scale).register(&engine);
    let conn: Arc<dyn Backend> = engine.clone();
    let mut config = VerdictConfig::default();
    config.min_table_rows = 10_000;
    let ctx = VerdictContext::new(conn, config);

    // baseline: "data transfer" modelled as a full copy of the fact table
    let t0 = Instant::now();
    engine
        .execute_sql("CREATE TABLE order_products_copy AS SELECT * FROM order_products")
        .unwrap();
    let copy_time = t0.elapsed();

    let t1 = Instant::now();
    ctx.create_sample("order_products", SampleType::Uniform)
        .unwrap();
    let uniform_time = t1.elapsed();

    let t2 = Instant::now();
    ctx.create_sample(
        "orders",
        SampleType::Stratified {
            columns: vec!["city".into()],
        },
    )
    .unwrap();
    let stratified_time = t2.elapsed();

    vec![
        ("full data copy (transfer baseline)".to_string(), copy_time),
        ("uniform sample creation".to_string(), uniform_time),
        ("stratified sample creation".to_string(), stratified_time),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_experiment_produces_rows_with_speedups_over_one() {
        let ctx = workload_context(0.05, 0.08, 0.05);
        let rows = speedup_experiment(&ctx);
        assert!(rows.len() >= 30);
        let sped_up = rows
            .iter()
            .filter(|r| !r.fell_back && r.speedups[0] > 1.0)
            .count();
        assert!(sped_up >= 20, "only {sped_up} queries sped up");
        // fallback queries report 1x
        assert!(rows
            .iter()
            .filter(|r| r.fell_back)
            .all(|r| r.speedups[0] == 1.0));
    }

    #[test]
    fn estimation_overhead_shows_variational_beats_bootstrap() {
        // Note: on the vectorized in-memory engine the O(b·n) baselines are
        // cheaper than they would be on the paper's distributed engines (a
        // CASE column costs far less than re-materialising resamples), so the
        // gap here is smaller than the paper's 100-350x; the invariant that
        // must hold is that variational subsampling never loses to the
        // consolidated-bootstrap formulation on flat and join queries.
        let rows = estimation_overhead(50_000, 100);
        for (shape, vsub, _tsub, boot) in rows {
            if shape == "nested" {
                continue;
            }
            assert!(
                vsub < boot,
                "{shape}: variational {vsub:?} should beat bootstrap {boot:?}"
            );
        }
    }

    #[test]
    fn subsample_size_sweep_has_minimum_near_sqrt_n() {
        let rows = accuracy::subsample_size_sweep(100_000, &[0.25, 0.5, 0.75]);
        let at = |x: f64| rows.iter().find(|(e, _)| (*e - x).abs() < 1e-9).unwrap().1;
        assert!(at(0.5) <= at(0.25) * 1.5 + 0.05);
        assert!(at(0.5) <= at(0.75) * 1.5 + 0.05);
    }
}
