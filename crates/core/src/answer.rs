//! The Answer Rewriter: turns the raw result of the rewritten query back into
//! the answer of the *original* query, together with error estimates.
//!
//! The rewritten (mean-like) query returns one row per (output group,
//! subsample id) with per-subsample unbiased estimates of every aggregate.
//! Following variational subsampling (Theorem 2), the point estimate for a
//! group is the subsample-size-weighted mean of the per-subsample estimates
//! (which algebraically equals the full-sample Horvitz–Thompson estimate),
//! and the error is derived from the spread of the per-subsample estimates,
//! scaled by `sqrt(avg(ns_i)) / sqrt(n_g)` exactly as in the paper's Query 9.

use crate::config::VerdictConfig;
use crate::error::{VerdictError, VerdictResult};
use crate::rewrite::{columns, AggClass, OutputColumn, QueryAnalysis, RewriteOutput};
use crate::stats::{normal_critical_value, stddev, weighted_mean};
use std::collections::HashMap;
use verdict_engine::{Column, DataType, Field, KeyValue, Schema, Table, Value};
use verdict_sql::ast::{BinaryOp, Expr, UnaryOp};
use verdict_sql::dialect::GenericDialect;
use verdict_sql::printer::print_expr;

/// The estimate and error bound reported for one aggregate column of one group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggEstimate {
    /// The unbiased point estimate.
    pub estimate: f64,
    /// Half-width of the confidence interval at the configured confidence level.
    pub error: f64,
}

impl AggEstimate {
    /// Relative error (error / |estimate|).
    ///
    /// A degenerate point estimate (near zero, NaN, or infinite) cannot
    /// anchor a relative error; returning 0 there would claim *perfect*
    /// accuracy for exactly the groups whose estimates are most suspect, so
    /// the relative error is `f64::INFINITY` instead.  The one exception is
    /// an estimate of 0 with an error bound of 0: every subsample agreed on
    /// exactly zero, which is an exact answer, not a degenerate one — an
    /// infinite value there would force the accuracy contract to rerun
    /// queries the estimator already answered exactly.  Averaging callers
    /// must skip non-finite entries (see [`ColumnErrorSummary`]).
    pub fn relative_error(&self) -> f64 {
        if !self.estimate.is_finite() || self.estimate.abs() < f64::EPSILON {
            if self.estimate == 0.0 && self.error.abs() < f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.error / self.estimate.abs()
        }
    }
}

/// Error summary for one aggregate output column across all groups.
///
/// `mean_relative_error` averages the *finite* per-group relative errors
/// (degenerate groups would otherwise swamp the mean with infinity), while
/// `max_relative_error` keeps the worst value including `f64::INFINITY`, so
/// the accuracy contract still triggers an exact rerun when any group's
/// estimate is degenerate.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnErrorSummary {
    /// Output column name the summary refers to.
    pub column: String,
    /// Mean of the finite per-group relative errors.
    pub mean_relative_error: f64,
    /// Worst per-group relative error (may be `f64::INFINITY`).
    pub max_relative_error: f64,
}

/// The assembled approximate answer.
#[derive(Debug, Clone)]
pub struct AssembledAnswer {
    /// The result table in the shape of the original query (plus optional
    /// `<column>_err` columns when configured).
    pub table: Table,
    /// Per-aggregate-column error summaries.
    pub errors: Vec<ColumnErrorSummary>,
}

#[derive(Debug, Default, Clone)]
struct GroupData {
    key_values: Vec<Value>,
    /// One entry per subsample cell: (subsample size, per-aggregate estimate).
    cells: Vec<(f64, HashMap<usize, f64>)>,
    distinct: HashMap<usize, AggEstimate>,
    extreme: HashMap<usize, Value>,
}

/// Assembles the final answer from the raw results of the rewritten parts.
pub fn assemble(
    rewrite: &RewriteOutput,
    mean_result: Option<&Table>,
    distinct_result: Option<&Table>,
    extreme_result: Option<&Table>,
    config: &VerdictConfig,
) -> VerdictResult<AssembledAnswer> {
    let analysis = &rewrite.analysis;
    let group_count = analysis.group_by.len();
    let mut groups: HashMap<Vec<KeyValue>, GroupData> = HashMap::new();
    let mut group_order: Vec<Vec<KeyValue>> = Vec::new();

    // --- mean-like part -----------------------------------------------------
    if let Some(table) = mean_result {
        let sid_idx = required_column(table, columns::SID)?;
        let size_idx = required_column(table, columns::SUB_SIZE)?;
        let group_idxs = group_columns(table, group_count)?;
        let mut est_idxs: HashMap<usize, usize> = HashMap::new();
        for spec in &analysis.aggregates {
            if spec.class == AggClass::MeanLike {
                let col = format!("{}{}", columns::EST_PREFIX, spec.index);
                est_idxs.insert(spec.index, required_column(table, &col)?);
            }
        }
        for row in 0..table.num_rows() {
            let key: Vec<KeyValue> = group_idxs
                .iter()
                .map(|&c| KeyValue::from_value(&table.value_at(row, c)))
                .collect();
            let entry = groups.entry(key.clone()).or_insert_with(|| {
                group_order.push(key.clone());
                GroupData {
                    key_values: group_idxs.iter().map(|&c| table.value_at(row, c)).collect(),
                    ..GroupData::default()
                }
            });
            let size = table.value(row, size_idx).as_f64().unwrap_or(0.0);
            let mut cell = HashMap::new();
            for (agg_idx, col_idx) in &est_idxs {
                if let Some(v) = table.value(row, *col_idx).as_f64() {
                    cell.insert(*agg_idx, v);
                }
            }
            let _ = table.value(row, sid_idx); // sid itself is not needed beyond grouping
            entry.cells.push((size, cell));
        }
    }

    // --- count-distinct part --------------------------------------------------
    if let (Some(table), Some((_, scales))) = (distinct_result, &rewrite.distinct_query) {
        let group_idxs = group_columns(table, group_count)?;
        for spec in &analysis.aggregates {
            if spec.class != AggClass::Distinct {
                continue;
            }
            let col = format!("{}{}", columns::DISTINCT_PREFIX, spec.index);
            let col_idx = required_column(table, &col)?;
            let scale = *scales.get(&spec.index).unwrap_or(&1.0);
            for row in 0..table.num_rows() {
                let key: Vec<KeyValue> = group_idxs
                    .iter()
                    .map(|&c| KeyValue::from_value(&table.value_at(row, c)))
                    .collect();
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    group_order.push(key.clone());
                    GroupData {
                        key_values: group_idxs.iter().map(|&c| table.value_at(row, c)).collect(),
                        ..GroupData::default()
                    }
                });
                let raw = table.value(row, col_idx).as_f64().unwrap_or(0.0);
                let estimate = raw * scale;
                // Binomial-style error: the observed distinct count is roughly
                // Binomial(D, 1/scale), so sd(D̂) ≈ scale * sqrt(raw * (1 - 1/scale)).
                let error = if scale > 1.0 {
                    normal_critical_value(config.confidence)
                        * scale
                        * (raw * (1.0 - 1.0 / scale)).max(0.0).sqrt()
                } else {
                    0.0
                };
                entry
                    .distinct
                    .insert(spec.index, AggEstimate { estimate, error });
            }
        }
    }

    // --- extreme part ---------------------------------------------------------
    if let Some(table) = extreme_result {
        let group_idxs = group_columns(table, group_count)?;
        for spec in &analysis.aggregates {
            if spec.class != AggClass::Extreme {
                continue;
            }
            let col = format!("{}{}", columns::EXTREME_PREFIX, spec.index);
            let col_idx = required_column(table, &col)?;
            for row in 0..table.num_rows() {
                let key: Vec<KeyValue> = group_idxs
                    .iter()
                    .map(|&c| KeyValue::from_value(&table.value_at(row, c)))
                    .collect();
                let entry = groups.entry(key.clone()).or_insert_with(|| {
                    group_order.push(key.clone());
                    GroupData {
                        key_values: group_idxs.iter().map(|&c| table.value_at(row, c)).collect(),
                        ..GroupData::default()
                    }
                });
                entry
                    .extreme
                    .insert(spec.index, table.value(row, col_idx).clone());
            }
        }
    }

    build_output(
        analysis,
        &groups,
        &group_order,
        config,
        rewrite.subsample_count,
    )
}

/// How per-subsample estimates of one aggregate are combined into the group's
/// point estimate.
///
/// Count and sum estimates are `b`-scaled HT totals of disjoint subsamples,
/// so summing them and dividing by the total number of subsamples `b`
/// recovers exactly the full-sample HT estimate (subsamples that happened to
/// receive no tuples contribute an implicit 0).  Ratio and scale-free
/// statistics (avg, variance, stddev, median, quantile) are combined as a
/// subsample-size-weighted mean.
fn combine_estimates(call_name: &str, values: &[f64], weights: &[f64], b: u64) -> f64 {
    match call_name {
        "count" | "sum" => values.iter().sum::<f64>() / b.max(1) as f64,
        _ => weighted_mean(values, weights),
    }
}

fn required_column(table: &Table, name: &str) -> VerdictResult<usize> {
    table
        .schema
        .index_of(name)
        .ok_or_else(|| VerdictError::Answer(format!("rewritten result is missing column {name}")))
}

fn group_columns(table: &Table, group_count: usize) -> VerdictResult<Vec<usize>> {
    (0..group_count)
        .map(|i| required_column(table, &format!("{}{i}", columns::GROUP_PREFIX)))
        .collect()
}

fn build_output(
    analysis: &QueryAnalysis,
    groups: &HashMap<Vec<KeyValue>, GroupData>,
    group_order: &[Vec<KeyValue>],
    config: &VerdictConfig,
    subsample_count: u64,
) -> VerdictResult<AssembledAnswer> {
    let z = normal_critical_value(config.confidence);

    // Per group, per aggregate index: point estimate and error.
    let mut per_group: Vec<(Vec<Value>, HashMap<usize, AggEstimate>, &GroupData)> = Vec::new();
    for key in group_order {
        let data = &groups[key];
        let mut estimates: HashMap<usize, AggEstimate> = HashMap::new();
        for spec in &analysis.aggregates {
            match spec.class {
                AggClass::MeanLike => {
                    let mut values = Vec::new();
                    let mut weights = Vec::new();
                    for (size, cell) in &data.cells {
                        if let Some(v) = cell.get(&spec.index) {
                            values.push(*v);
                            weights.push(*size);
                        }
                    }
                    if values.is_empty() {
                        continue;
                    }
                    let estimate =
                        combine_estimates(&spec.call.name, &values, &weights, subsample_count);
                    let total: f64 = weights.iter().sum();
                    let avg_size = total / weights.len() as f64;
                    let sigma = if values.len() > 1 && total > 0.0 {
                        stddev(&values) * avg_size.sqrt() / total.sqrt()
                    } else {
                        0.0
                    };
                    estimates.insert(
                        spec.index,
                        AggEstimate {
                            estimate,
                            error: z * sigma,
                        },
                    );
                }
                AggClass::Distinct => {
                    if let Some(e) = data.distinct.get(&spec.index) {
                        estimates.insert(spec.index, *e);
                    }
                }
                AggClass::Extreme => {
                    if let Some(v) = data.extreme.get(&spec.index) {
                        estimates.insert(
                            spec.index,
                            AggEstimate {
                                estimate: v.as_f64().unwrap_or(f64::NAN),
                                error: 0.0,
                            },
                        );
                    }
                }
            }
        }
        per_group.push((data.key_values.clone(), estimates, data));
    }

    // Apply HAVING using the estimated aggregates.
    if let Some(having) = &analysis.having {
        per_group.retain(|(key_values, estimates, _)| {
            evaluate_predicate(having, analysis, key_values, estimates).unwrap_or(true)
        });
    }

    // Build the output as typed columns: group keys keep their inferred
    // type, aggregate estimates and their `_err` companions are nullable
    // Float64 columns built without per-cell boxing.
    let mut fields: Vec<Field> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();
    let mut error_summaries: Vec<ColumnErrorSummary> = Vec::new();

    for out in &analysis.output {
        match out {
            OutputColumn::GroupKey { index, name } => {
                let dt = per_group
                    .first()
                    .and_then(|(kv, _, _)| kv.get(*index))
                    .and_then(|v| v.data_type())
                    .unwrap_or(DataType::Str);
                fields.push(Field::new(name, dt));
                let keys: Vec<Value> = per_group
                    .iter()
                    .map(|(kv, _, _)| kv.get(*index).cloned().unwrap_or(Value::Null))
                    .collect();
                columns.push(Column::from_values_typed(dt, &keys));
            }
            OutputColumn::Aggregate { expr, name } => {
                let mut values: Vec<Option<f64>> = Vec::with_capacity(per_group.len());
                let mut errors: Vec<Option<f64>> = Vec::with_capacity(per_group.len());
                let mut rel_errors = Vec::new();
                for (key_values, estimates, data) in &per_group {
                    let est =
                        evaluate_aggregate_output(expr, analysis, key_values, estimates, data, z);
                    match est {
                        Some(e) => {
                            values.push(Some(e.estimate));
                            errors.push(Some(e.error));
                            rel_errors.push(e.relative_error());
                        }
                        None => {
                            values.push(None);
                            errors.push(None);
                        }
                    }
                }
                fields.push(Field::new(name, DataType::Float));
                columns.push(Column::from_opt_f64(values));
                if config.include_error_columns {
                    fields.push(Field::new(&format!("{name}_err"), DataType::Float));
                    columns.push(Column::from_opt_f64(errors));
                }
                if !rel_errors.is_empty() {
                    let finite: Vec<f64> = rel_errors
                        .iter()
                        .copied()
                        .filter(|e| e.is_finite())
                        .collect();
                    let mean_relative_error = if finite.is_empty() {
                        f64::INFINITY
                    } else {
                        finite.iter().sum::<f64>() / finite.len() as f64
                    };
                    error_summaries.push(ColumnErrorSummary {
                        column: name.clone(),
                        mean_relative_error,
                        max_relative_error: rel_errors.iter().cloned().fold(0.0, f64::max),
                    });
                }
            }
        }
    }

    let mut table = Table::new(Schema::new(fields), columns)
        .map_err(|e| VerdictError::Answer(e.to_string()))?;

    // ORDER BY and LIMIT, evaluated on the assembled output.
    if !analysis.order_by.is_empty() && table.num_rows() > 1 {
        let mut indices: Vec<usize> = (0..table.num_rows()).collect();
        let keys: Vec<Option<usize>> = analysis
            .order_by
            .iter()
            .map(|o| order_key_column(&o.expr, analysis, &table))
            .collect();
        indices.sort_by(|&a, &b| {
            for (key, item) in keys.iter().zip(analysis.order_by.iter()) {
                if let Some(col) = key {
                    let ord = table.columns[*col].cmp_rows(a, b);
                    let ord = if item.asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
            }
            std::cmp::Ordering::Equal
        });
        table = table.take(&indices);
    }
    if let Some(limit) = analysis.limit {
        table = table.limit(limit as usize);
    }

    Ok(AssembledAnswer {
        table,
        errors: error_summaries,
    })
}

/// Finds the output column an ORDER BY expression refers to (by alias, by
/// matching the projection expression, or by group column name).
fn order_key_column(expr: &Expr, analysis: &QueryAnalysis, table: &Table) -> Option<usize> {
    if let Expr::Column { name, .. } = expr {
        if let Some(idx) = table.schema.index_of(name) {
            return Some(idx);
        }
    }
    for (i, out) in analysis.output.iter().enumerate() {
        let matches = match out {
            OutputColumn::Aggregate { expr: e, .. } => e == expr,
            OutputColumn::GroupKey { index, .. } => analysis.group_by.get(*index) == Some(expr),
        };
        if matches {
            return table.schema.index_of(out.name()).or(Some(i));
        }
    }
    None
}

/// Evaluates an aggregate output expression for one group.
///
/// When every aggregate in the expression is mean-like, the expression is
/// evaluated per subsample and re-combined (so e.g. `sum(a)/sum(b)` gets a
/// proper variational error estimate); otherwise it is evaluated over the
/// point estimates, and the error is taken from the single aggregate call
/// when the expression is exactly one call.
fn evaluate_aggregate_output(
    expr: &Expr,
    analysis: &QueryAnalysis,
    key_values: &[Value],
    estimates: &HashMap<usize, AggEstimate>,
    data: &GroupData,
    z: f64,
) -> Option<AggEstimate> {
    let specs_in_expr: Vec<usize> = analysis
        .aggregates
        .iter()
        .filter(|s| expr_contains_call(expr, &s.call))
        .map(|s| s.index)
        .collect();
    let all_mean_like = specs_in_expr.iter().all(|i| {
        analysis
            .aggregates
            .iter()
            .any(|s| s.index == *i && s.class == AggClass::MeanLike)
    });

    // Point estimate: plug the per-aggregate point estimates into the
    // expression (for a bare aggregate this is just that aggregate's estimate).
    let lookup = |e: &Expr| -> Option<Value> {
        for spec in &analysis.aggregates {
            if expr_is_call(e, &spec.call) {
                return estimates.get(&spec.index).map(|v| Value::Float(v.estimate));
            }
        }
        group_value(e, analysis, key_values)
    };
    let value = eval_const(expr, &lookup)?.as_f64()?;

    // Error: when every aggregate in the expression is mean-like, derive it
    // from the spread of the expression evaluated per subsample (so ratios
    // like `sum(a)/sum(b)` get a proper variational error estimate).
    if all_mean_like && !data.cells.is_empty() {
        let mut values = Vec::new();
        let mut weights = Vec::new();
        for (size, cell) in &data.cells {
            let cell_lookup = |e: &Expr| -> Option<Value> {
                for spec in &analysis.aggregates {
                    if expr_is_call(e, &spec.call) {
                        return cell.get(&spec.index).map(|v| Value::Float(*v));
                    }
                }
                group_value(e, analysis, key_values)
            };
            if let Some(v) = eval_const(expr, &cell_lookup).and_then(|v| v.as_f64()) {
                if v.is_finite() {
                    values.push(v);
                    weights.push(*size);
                }
            }
        }
        if values.len() > 1 {
            let total: f64 = weights.iter().sum();
            let avg_size = total / weights.len() as f64;
            let sigma = if total > 0.0 {
                stddev(&values) * avg_size.sqrt() / total.sqrt()
            } else {
                0.0
            };
            return Some(AggEstimate {
                estimate: value,
                error: z * sigma,
            });
        }
    }

    // Fallback error: exact when the expression is a single aggregate call.
    let error = if specs_in_expr.len() == 1 && expr_is_single_call(expr) {
        estimates
            .get(&specs_in_expr[0])
            .map(|e| e.error)
            .unwrap_or(0.0)
    } else {
        0.0
    };
    Some(AggEstimate {
        estimate: value,
        error,
    })
}

fn evaluate_predicate(
    pred: &Expr,
    analysis: &QueryAnalysis,
    key_values: &[Value],
    estimates: &HashMap<usize, AggEstimate>,
) -> Option<bool> {
    let lookup = |e: &Expr| -> Option<Value> {
        for spec in &analysis.aggregates {
            if expr_is_call(e, &spec.call) {
                return estimates.get(&spec.index).map(|v| Value::Float(v.estimate));
            }
        }
        group_value(e, analysis, key_values)
    };
    eval_const(pred, &lookup)?.as_bool()
}

fn group_value(e: &Expr, analysis: &QueryAnalysis, key_values: &[Value]) -> Option<Value> {
    if let Expr::Column { name, .. } = e {
        for (i, g) in analysis.group_by.iter().enumerate() {
            if let Expr::Column { name: gname, .. } = g {
                if gname.eq_ignore_ascii_case(name) {
                    return key_values.get(i).cloned();
                }
            }
        }
    }
    None
}

fn expr_is_call(e: &Expr, call: &verdict_sql::ast::FunctionCall) -> bool {
    match e {
        Expr::Function(f) => {
            print_expr(&Expr::Function(f.clone()), &GenericDialect)
                == print_expr(&Expr::Function(call.clone()), &GenericDialect)
        }
        Expr::Nested(inner) => expr_is_call(inner, call),
        _ => false,
    }
}

fn expr_contains_call(expr: &Expr, call: &verdict_sql::ast::FunctionCall) -> bool {
    let mut found = false;
    verdict_sql::visitor::walk_expr(expr, &mut |e| {
        if expr_is_call(e, call) {
            found = true;
        }
    });
    found
}

fn expr_is_single_call(expr: &Expr) -> bool {
    matches!(expr, Expr::Function(_))
        || matches!(expr, Expr::Nested(inner) if expr_is_single_call(inner))
}

/// A tiny constant-expression evaluator used to recombine aggregate estimates
/// (e.g. `100 * sum(a) / sum(b)`) and to apply HAVING / ORDER BY on the
/// middleware side.  The `lookup` closure is consulted at every node first,
/// which is how aggregate calls and group columns get their values.
pub fn eval_const(expr: &Expr, lookup: &dyn Fn(&Expr) -> Option<Value>) -> Option<Value> {
    if let Some(v) = lookup(expr) {
        return Some(v);
    }
    match expr {
        Expr::Literal(l) => Some(match l {
            verdict_sql::ast::Literal::Null => Value::Null,
            verdict_sql::ast::Literal::Boolean(b) => Value::Bool(*b),
            verdict_sql::ast::Literal::Integer(i) => Value::Float(*i as f64),
            verdict_sql::ast::Literal::Float(f) => Value::Float(*f),
            verdict_sql::ast::Literal::String(s) => Value::Str(s.clone()),
        }),
        Expr::Nested(e) => eval_const(e, lookup),
        Expr::UnaryOp {
            op: UnaryOp::Minus,
            expr,
        } => {
            let v = eval_const(expr, lookup)?.as_f64()?;
            Some(Value::Float(-v))
        }
        Expr::UnaryOp {
            op: UnaryOp::Plus,
            expr,
        } => eval_const(expr, lookup),
        Expr::UnaryOp {
            op: UnaryOp::Not,
            expr,
        } => {
            let v = eval_const(expr, lookup)?.as_bool()?;
            Some(Value::Bool(!v))
        }
        Expr::BinaryOp { left, op, right } => {
            let l = eval_const(left, lookup)?;
            let r = eval_const(right, lookup)?;
            match op {
                BinaryOp::And => Some(Value::Bool(l.as_bool()? && r.as_bool()?)),
                BinaryOp::Or => Some(Value::Bool(l.as_bool()? || r.as_bool()?)),
                op if op.is_comparison() => {
                    let ord = l.sql_cmp(&r)?;
                    use std::cmp::Ordering::*;
                    let b = match op {
                        BinaryOp::Eq => ord == Equal,
                        BinaryOp::NotEq => ord != Equal,
                        BinaryOp::Lt => ord == Less,
                        BinaryOp::LtEq => ord != Greater,
                        BinaryOp::Gt => ord == Greater,
                        BinaryOp::GtEq => ord != Less,
                        _ => unreachable!(),
                    };
                    Some(Value::Bool(b))
                }
                _ => {
                    let (x, y) = (l.as_f64()?, r.as_f64()?);
                    let v = match op {
                        BinaryOp::Plus => x + y,
                        BinaryOp::Minus => x - y,
                        BinaryOp::Multiply => x * y,
                        BinaryOp::Divide => {
                            if y == 0.0 {
                                return Some(Value::Null);
                            }
                            x / y
                        }
                        BinaryOp::Modulo => {
                            if y == 0.0 {
                                return Some(Value::Null);
                            }
                            x % y
                        }
                        _ => return None,
                    };
                    Some(Value::Float(v))
                }
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_sql::parse_expression;

    #[test]
    fn const_evaluator_handles_arithmetic_and_lookup() {
        let expr = parse_expression("100 * sum(a) / sum(b)").unwrap();
        let lookup = |e: &Expr| -> Option<Value> {
            match e {
                Expr::Function(f) if f.name == "sum" => {
                    let arg = print_expr(&f.args[0], &GenericDialect);
                    Some(Value::Float(if arg == "a" { 30.0 } else { 60.0 }))
                }
                _ => None,
            }
        };
        let v = eval_const(&expr, &lookup).unwrap().as_f64().unwrap();
        assert!((v - 50.0).abs() < 1e-9);
    }

    #[test]
    fn const_evaluator_handles_comparisons() {
        let expr = parse_expression("count(*) > 10 AND 2 + 2 = 4").unwrap();
        let lookup = |e: &Expr| -> Option<Value> {
            matches!(e, Expr::Function(f) if f.name == "count").then_some(Value::Float(50.0))
        };
        assert_eq!(eval_const(&expr, &lookup).unwrap().as_bool(), Some(true));
    }

    #[test]
    fn relative_error_is_infinite_for_degenerate_estimate() {
        // A zero estimate must not claim perfect accuracy — it is the case
        // where the estimate is least trustworthy.
        let e = AggEstimate {
            estimate: 0.0,
            error: 5.0,
        };
        assert!(e.relative_error().is_infinite());
        let e = AggEstimate {
            estimate: f64::NAN,
            error: 5.0,
        };
        assert!(e.relative_error().is_infinite());
        // ... but an exact zero (zero estimate AND zero error) is not
        // degenerate and must not trigger accuracy-contract reruns
        let e = AggEstimate {
            estimate: 0.0,
            error: 0.0,
        };
        assert_eq!(e.relative_error(), 0.0);
        let e = AggEstimate {
            estimate: 100.0,
            error: 5.0,
        };
        assert!((e.relative_error() - 0.05).abs() < 1e-12);
    }
}
