//! Backend wrappers used by [`crate::context::VerdictContext`].
//!
//! The context never talks to a raw [`Backend`] directly: every backend is
//! wrapped in an instrumentation layer (`InstrumentedBackend`, crate-private)
//! that counts queries routed and
//! capability fallbacks taken (surfaced by `SHOW STATS`), and an explicit
//! dialect choice is expressed by stacking a [`DialectBackend`] underneath.
//! Both wrappers are transparent — they forward every call unchanged — so
//! the answers a wrapped backend produces are bit-identical to the bare one.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use verdict_engine::engine::Backend;
use verdict_engine::{BlockScan, EngineResult, GroupStrategy, QueryResult};
use verdict_sql::dialect::Dialect;

/// Snapshot of the per-backend routing counters (surfaced by `SHOW STATS`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// The backend's kind name ([`Backend::name`]).
    pub name: String,
    /// The backend's instance identity ([`Backend::identity`]).
    pub identity: String,
    /// SQL statements routed through [`Backend::execute`].
    pub queries_routed: u64,
    /// Times [`Backend::data_version`] answered `None` — each one is a
    /// cacheability check that had to assume "uncacheable".
    pub version_fallbacks: u64,
    /// Times [`Backend::open_block_scan`] answered `None` — each one is a
    /// progressive query that fell back to one-shot execution.
    pub scan_fallbacks: u64,
    /// Backend-specific counters ([`Backend::backend_stats`]), e.g. a remote
    /// backend's wire round-trips.
    pub extra: Vec<(String, u64)>,
}

/// Transparent wrapper counting queries routed and capability fallbacks.
pub(crate) struct InstrumentedBackend {
    inner: Arc<dyn Backend>,
    queries: AtomicU64,
    version_fallbacks: AtomicU64,
    scan_fallbacks: AtomicU64,
}

impl InstrumentedBackend {
    pub(crate) fn new(inner: Arc<dyn Backend>) -> InstrumentedBackend {
        InstrumentedBackend {
            inner,
            queries: AtomicU64::new(0),
            version_fallbacks: AtomicU64::new(0),
            scan_fallbacks: AtomicU64::new(0),
        }
    }

    /// Queries routed so far — a single atomic load, cheap enough to snapshot
    /// before/after a statement for per-trace backend attribution.
    pub(crate) fn queries_routed(&self) -> u64 {
        self.queries.load(Relaxed)
    }

    pub(crate) fn stats(&self) -> BackendStats {
        BackendStats {
            name: self.inner.name().to_string(),
            identity: self.inner.identity(),
            queries_routed: self.queries.load(Relaxed),
            version_fallbacks: self.version_fallbacks.load(Relaxed),
            scan_fallbacks: self.scan_fallbacks.load(Relaxed),
            extra: self.inner.backend_stats(),
        }
    }
}

impl Backend for InstrumentedBackend {
    fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        self.queries.fetch_add(1, Relaxed);
        self.inner.execute(sql)
    }

    fn table_row_count(&self, table: &str) -> EngineResult<u64> {
        self.inner.table_row_count(table)
    }

    fn table_exists(&self, table: &str) -> bool {
        self.inner.table_exists(table)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn identity(&self) -> String {
        self.inner.identity()
    }

    fn dialect(&self) -> &dyn Dialect {
        self.inner.dialect()
    }

    fn backend_stats(&self) -> Vec<(String, u64)> {
        self.inner.backend_stats()
    }

    fn set_parallelism(&self, threads: usize) {
        self.inner.set_parallelism(threads);
    }

    fn set_group_strategy(&self, strategy: GroupStrategy) {
        self.inner.set_group_strategy(strategy);
    }

    fn data_version(&self, table: &str) -> Option<u64> {
        let version = self.inner.data_version(table);
        if version.is_none() {
            self.version_fallbacks.fetch_add(1, Relaxed);
        }
        version
    }

    fn open_block_scan(&self, sql: &str) -> Option<Box<dyn BlockScan>> {
        let scan = self.inner.open_block_scan(sql);
        if scan.is_none() {
            self.scan_fallbacks.fetch_add(1, Relaxed);
        }
        scan
    }

    fn table_snapshot(&self, table: &str) -> Option<verdict_engine::Table> {
        self.inner.table_snapshot(table)
    }
}

/// A backend wrapper that overrides the inner backend's SQL dialect.
///
/// [`crate::context::VerdictContext::with_dialect`] stacks one of these under
/// the instrumentation wrapper, so "the same store, addressed in Impala SQL"
/// is itself just another backend.  Everything except [`Backend::dialect`]
/// and [`Backend::identity`] forwards to the inner backend unchanged.
pub struct DialectBackend {
    inner: Arc<dyn Backend>,
    dialect: Box<dyn Dialect>,
}

impl DialectBackend {
    /// Wraps `inner` so that all generated SQL is rendered in `dialect`.
    pub fn new(inner: Arc<dyn Backend>, dialect: Box<dyn Dialect>) -> DialectBackend {
        DialectBackend { inner, dialect }
    }
}

impl Backend for DialectBackend {
    fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        self.inner.execute(sql)
    }

    fn table_row_count(&self, table: &str) -> EngineResult<u64> {
        self.inner.table_row_count(table)
    }

    fn table_exists(&self, table: &str) -> bool {
        self.inner.table_exists(table)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn identity(&self) -> String {
        format!("{}+{}", self.inner.identity(), self.dialect.name())
    }

    fn dialect(&self) -> &dyn Dialect {
        self.dialect.as_ref()
    }

    fn backend_stats(&self) -> Vec<(String, u64)> {
        self.inner.backend_stats()
    }

    fn set_parallelism(&self, threads: usize) {
        self.inner.set_parallelism(threads);
    }

    fn set_group_strategy(&self, strategy: GroupStrategy) {
        self.inner.set_group_strategy(strategy);
    }

    fn data_version(&self, table: &str) -> Option<u64> {
        self.inner.data_version(table)
    }

    fn open_block_scan(&self, sql: &str) -> Option<Box<dyn BlockScan>> {
        self.inner.open_block_scan(sql)
    }

    fn table_snapshot(&self, table: &str) -> Option<verdict_engine::Table> {
        self.inner.table_snapshot(table)
    }
}
