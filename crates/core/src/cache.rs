//! LRU approximate-answer cache.
//!
//! Dashboard-style workloads re-issue the same aggregate queries over and
//! over; an approximate answer together with its confidence interval stays
//! valid until the underlying data changes, so VerdictDB-rs can serve
//! repeats straight from memory (cf. the answer-reuse framing of
//! *Conditioning Probabilistic Databases*, Koch & Olteanu).
//!
//! Entries are keyed by the **canonical SQL form**
//! ([`verdict_sql::canonical_sql`]) so that texts differing only in
//! whitespace, keyword/identifier case, or literal spelling share one entry.
//! Each entry records the [`data version`](verdict_engine::Backend::data_version)
//! of every table the answer was computed from — base tables *and* the
//! sample tables the plan touched.  A lookup revalidates those versions:
//! any write, append, or sample rebuild bumps a version in the engine
//! catalog and the stale entry is dropped on its next access, so the cache
//! never serves an answer whose inputs have changed.
//!
//! Eviction is least-recently-used with a fixed entry capacity; a capacity
//! of 0 disables the cache entirely (the default for plain
//! [`crate::VerdictContext`]s — the server layer turns it on).

use crate::context::VerdictAnswer;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic counter snapshot of cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found no valid entry.
    pub misses: u64,
    /// Answers stored.
    pub insertions: u64,
    /// Entries dropped because a referenced table's data version changed.
    pub invalidations: u64,
    /// Entries dropped to respect the capacity bound.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Shared so a hit can release the lock before the (potentially large)
    /// answer is deep-cloned for the caller.
    answer: Arc<VerdictAnswer>,
    /// `(lower-cased table name, data version at insert time)` for every
    /// table the answer depends on.
    versions: Vec<(String, u64)>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<String, Entry>,
    tick: u64,
}

/// A thread-safe LRU cache mapping canonical SQL to stored answers.
pub struct AnswerCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl AnswerCache {
    /// Creates a cache holding at most `capacity` answers (0 disables it).
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// True when the cache can hold entries.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of stored entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, revalidating the stored data versions through
    /// `current_version` (which should consult the live connection).  Returns
    /// a clone of the stored answer when every referenced table still has the
    /// version recorded at insert time; drops the entry and reports a miss
    /// otherwise.
    ///
    /// The lock is released while `current_version` runs and while the
    /// answer is deep-cloned, so cache-hot sessions do not serialize on the
    /// connection's version reads.  The validation verdict is only applied
    /// when the entry still carries the snapshotted versions; an entry
    /// replaced mid-lookup is reported as a miss — never a stale serve, and
    /// never a removal of an entry the verdict was not computed for.
    pub fn lookup(
        &self,
        key: &str,
        mut current_version: impl FnMut(&str) -> Option<u64>,
    ) -> Option<VerdictAnswer> {
        if !self.enabled() {
            return None;
        }
        // Phase 1: snapshot the entry's versions under the lock.
        let versions = match self.inner.lock().entries.get(key) {
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Some(entry) => entry.versions.clone(),
        };
        // Phase 2: validate against the live connection, lock released.
        let valid = versions
            .iter()
            .all(|(table, v)| current_version(table) == Some(*v));
        // Phase 3: act on the re-fetched entry.  The validation verdict only
        // applies to the exact versions snapshotted in phase 1 — if another
        // session replaced the entry in between (e.g. a slow in-flight
        // execution inserting an answer computed before a write), serving or
        // removing the *new* entry based on the *old* verdict would be
        // wrong, so a changed entry is treated as a plain miss.
        let answer = {
            let mut inner = self.inner.lock();
            match inner.entries.get(key) {
                Some(e) if e.versions == versions => {}
                _ => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            if !valid {
                inner.entries.remove(key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            let entry = inner.entries.get(key).expect("checked above");
            let answer = Arc::clone(&entry.answer);
            inner.tick += 1;
            let tick = inner.tick;
            inner.entries.get_mut(key).expect("present above").last_used = tick;
            self.hits.fetch_add(1, Ordering::Relaxed);
            answer
        };
        Some((*answer).clone())
    }

    /// Stores an answer under `key` with the data versions of every table it
    /// was computed from, evicting least-recently-used entries as needed.
    pub fn insert(&self, key: String, versions: Vec<(String, u64)>, answer: VerdictAnswer) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        inner.entries.insert(
            key,
            Entry {
                answer: Arc::new(answer),
                versions,
                last_used: tick,
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        while inner.entries.len() > self.capacity {
            // O(n) LRU scan: capacities are small (hundreds), and insert is
            // already off the hot hit path.
            if let Some(oldest) = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.entries.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                break;
            }
        }
    }

    /// Drops every stored entry (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;
    use verdict_engine::Table;

    fn answer(tag: u64) -> VerdictAnswer {
        VerdictAnswer {
            table: Table::default(),
            exact: false,
            cached: false,
            errors: Vec::new(),
            rewritten_sql: vec![format!("q{tag}")],
            elapsed: Duration::from_micros(tag),
            rows_scanned: tag,
            used_samples: Vec::new(),
        }
    }

    #[test]
    fn hit_returns_stored_answer_and_miss_counts() {
        let cache = AnswerCache::new(4);
        cache.insert("k".into(), vec![("t".into(), 3)], answer(7));
        let hit = cache.lookup("k", |_| Some(3)).unwrap();
        assert_eq!(hit.rows_scanned, 7);
        assert!(cache.lookup("other", |_| Some(3)).is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn version_change_invalidates() {
        let cache = AnswerCache::new(4);
        cache.insert("k".into(), vec![("t".into(), 3)], answer(1));
        assert!(cache.lookup("k", |_| Some(4)).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.is_empty(), "stale entry must be dropped");
    }

    #[test]
    fn unknown_version_invalidates() {
        let cache = AnswerCache::new(4);
        cache.insert("k".into(), vec![("t".into(), 3)], answer(1));
        assert!(cache.lookup("k", |_| None).is_none());
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = AnswerCache::new(2);
        cache.insert("a".into(), vec![], answer(1));
        cache.insert("b".into(), vec![], answer(2));
        // touch "a" so "b" is the LRU entry
        assert!(cache.lookup("a", |_| Some(0)).is_some());
        cache.insert("c".into(), vec![], answer(3));
        assert!(cache.lookup("a", |_| Some(0)).is_some());
        assert!(cache.lookup("b", |_| Some(0)).is_none());
        assert!(cache.lookup("c", |_| Some(0)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn entry_replaced_mid_lookup_is_a_miss_not_a_stale_serve() {
        // The `current_version` callback runs with the cache lock released,
        // so it can model a concurrent session replacing the entry between
        // validation and serving: the verdict computed for the old entry
        // must not be applied to the new one.
        let cache = AnswerCache::new(4);
        cache.insert("k".into(), vec![("t".into(), 5)], answer(1));
        let result = cache.lookup("k", |_| {
            // A slow in-flight execution publishes an answer computed before
            // the write that took t to version 5.
            cache.insert("k".into(), vec![("t".into(), 4)], answer(99));
            Some(5)
        });
        assert!(
            result.is_none(),
            "replaced entry must be a miss, not served under the old verdict"
        );
        // The (possibly stale) new entry was not removed either; its own
        // validation decides its fate on the next lookup.
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup("k", |_| Some(5)).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = AnswerCache::new(0);
        cache.insert("k".into(), vec![], answer(1));
        assert!(cache.lookup("k", |_| Some(0)).is_none());
        assert!(!cache.enabled());
        assert_eq!(cache.stats().insertions, 0);
    }
}
