//! Middleware configuration: the knobs exposed to VerdictDB users (§2.4).
//!
//! Instead of latency or accuracy knobs, VerdictDB exposes an **I/O budget**:
//! the maximum fraction of a large table that may be read when answering an
//! analytical query.  Optionally a minimum-accuracy requirement can be set;
//! it is enforced *after* execution (High-level Accuracy Contract): if the
//! estimated error violates the requirement, the query is re-run exactly.

/// Configuration for a [`crate::VerdictContext`].
#[derive(Debug, Clone, PartialEq)]
pub struct VerdictConfig {
    /// Maximum fraction of each large table that query processing may read
    /// (paper default: 2%).
    pub io_budget: f64,
    /// Default sampling parameter τ used when building samples (paper default: 1%).
    pub sampling_ratio: f64,
    /// Tables smaller than this row count are never sampled (paper default: 10M;
    /// lowered here because generated datasets are laptop-scale).
    pub min_table_rows: u64,
    /// Number of subsamples `b` used by variational subsampling.  Kept a
    /// perfect square so the join reassignment function `h(i, j)` of Theorem 4
    /// partitions `I × J` exactly.
    pub subsample_count: u64,
    /// Failure probability δ for the per-stratum minimum-size guarantee of
    /// Lemma 1 (paper default: 0.001).
    pub stratified_delta: f64,
    /// Minimum number of tuples per stratum that stratified samples must
    /// retain (the `m` of Equation 1 is `|T|·τ/d`, clamped below by this).
    pub stratified_min_rows: u64,
    /// Confidence level for reported error bounds (e.g. 0.95).
    pub confidence: f64,
    /// Optional accuracy requirement: maximum tolerated relative error.  When
    /// the estimated error exceeds it, VerdictDB re-runs the query exactly
    /// (High-level Accuracy Contract).
    pub max_relative_error: Option<f64>,
    /// Attach `<column>_err` error columns to the returned result set.  Off by
    /// default so legacy applications can consume results unchanged (§2.4).
    pub include_error_columns: bool,
    /// When the estimated number of sample rows per output group falls below
    /// this threshold, the planner declares AQP infeasible and runs the
    /// original query (the paper's behaviour for tq-3, tq-8, tq-15).
    pub min_rows_per_group: f64,
    /// Heuristic sample-planner fan-out: number of best sample tables kept at
    /// each join point (Appendix E.2, default 10).
    pub planner_top_k: usize,
    /// Deterministic seed for subsample assignment randomness; `None` uses
    /// entropy.  Experiments set it for reproducibility.
    pub seed: Option<u64>,
    /// Worker-thread count hint for the underlying engine's morsel-parallel
    /// kernels.  `None` (default) leaves the engine at its own default
    /// (`available_parallelism()`); `Some(1)` forces serial execution.
    /// Applied to the connection when the context is created; results are
    /// bit-identical at any setting — only latency changes.
    pub parallelism: Option<usize>,
    /// GROUP BY clustering strategy hint for the underlying engine
    /// ([`verdict_engine::GroupStrategy`]): dictionary-encoded keys, radix
    /// partitioning, plain hash clustering, or (the default, also when
    /// `None`) an automatic per-grouping choice.  Like [`Self::parallelism`],
    /// every setting yields bit-identical answers — only latency changes —
    /// and it is applied to the connection at context creation.
    pub group_strategy: Option<verdict_engine::GroupStrategy>,
    /// Capacity (in entries) of the approximate-answer cache keyed by
    /// canonical SQL.  `0` (the default) disables caching: every `execute`
    /// call runs against the underlying database.  The serving layer turns
    /// this on so repeated dashboard aggregates are answered from memory;
    /// entries are invalidated by any write to the tables they were computed
    /// from (see [`crate::cache::AnswerCache`]).
    pub answer_cache_capacity: usize,
    /// Scramble rows consumed per progressive-execution block: each `STREAM`
    /// frame refines the answer with this many further rows.  Defaults to
    /// the engine's morsel size ([`verdict_engine::MORSEL_ROWS`], 64K rows)
    /// so frame boundaries line up with the parallel kernels' work units.
    /// Smaller blocks mean earlier (but noisier) first estimates.  Does not
    /// affect the final answer — only how often intermediate frames appear —
    /// so it is not part of the cache fingerprint.
    pub stream_block_rows: usize,
    /// Maximum number of frames a progressive stream may emit, `0` for
    /// unbounded.  When the cap is reached the stream finishes the remaining
    /// blocks silently and the last emitted frame is the complete answer.
    /// Like [`Self::stream_block_rows`], this never changes the final
    /// answer and stays out of the cache fingerprint.
    pub stream_max_frames: usize,
    /// Slow-query threshold in milliseconds: statements whose end-to-end
    /// wall time meets or exceeds it are flagged `slow` in the trace ring
    /// (the slow-query log, see `SHOW PROFILE`) and counted in
    /// `verdict_slow_queries_total`.  `0` (the default) disables the flag.
    /// Purely observational — it never changes an answer — so it stays out
    /// of the cache fingerprint.
    pub slow_query_ms: u64,
}

impl Default for VerdictConfig {
    fn default() -> Self {
        VerdictConfig {
            io_budget: 0.02,
            sampling_ratio: 0.01,
            min_table_rows: 10_000,
            subsample_count: 100,
            stratified_delta: 0.001,
            stratified_min_rows: 100,
            confidence: 0.95,
            max_relative_error: None,
            include_error_columns: false,
            min_rows_per_group: 10.0,
            planner_top_k: 10,
            seed: None,
            parallelism: None,
            group_strategy: None,
            answer_cache_capacity: 0,
            stream_block_rows: verdict_engine::MORSEL_ROWS,
            stream_max_frames: 0,
            slow_query_ms: 0,
        }
    }
}

impl VerdictConfig {
    /// A configuration tuned for deterministic tests and experiments.
    pub fn for_testing() -> Self {
        VerdictConfig {
            min_table_rows: 1_000,
            seed: Some(0x5EED),
            include_error_columns: true,
            ..VerdictConfig::default()
        }
    }

    /// A compact rendering of every *answer-affecting* knob, appended to the
    /// approximate-answer cache key so sessions running under different
    /// accuracy settings never share a cache entry.
    ///
    /// Included: everything that changes the bytes of a computed answer —
    /// planning inputs (`io_budget`, `min_table_rows`, `planner_top_k`),
    /// estimation inputs (`subsample_count`, `confidence`, `seed`), result
    /// shaping (`include_error_columns`), and fallback thresholds
    /// (`max_relative_error`, `min_rows_per_group`).  Excluded: knobs that
    /// only change *how fast* the identical answer is produced
    /// (`parallelism`, `group_strategy` — every grouping strategy yields the
    /// same first-appearance grouping — `answer_cache_capacity`), that only
    /// matter at
    /// sample-build time (`sampling_ratio`, `stratified_*`), that only
    /// change how often progressive frames appear while leaving the final
    /// answer bit-identical (`stream_block_rows`, `stream_max_frames`), or
    /// that are purely observational (`slow_query_ms`).
    pub fn cache_fingerprint(&self) -> String {
        format!(
            "io={:?};mtr={};b={};conf={:?};maxrel={:?};errcols={};mrpg={:?};topk={};seed={:?}",
            self.io_budget,
            self.min_table_rows,
            self.subsample_count,
            self.confidence,
            self.max_relative_error,
            self.include_error_columns,
            self.min_rows_per_group,
            self.planner_top_k,
            self.seed,
        )
    }

    /// √b as an integer; `subsample_count` is clamped to a perfect square.
    pub fn sqrt_subsamples(&self) -> u64 {
        (self.subsample_count as f64).sqrt().round().max(1.0) as u64
    }

    /// The effective subsample count (forced to a perfect square).
    pub fn effective_subsamples(&self) -> u64 {
        let s = self.sqrt_subsamples();
        s * s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_values() {
        let c = VerdictConfig::default();
        assert_eq!(c.io_budget, 0.02);
        assert_eq!(c.sampling_ratio, 0.01);
        assert_eq!(c.subsample_count, 100);
        assert_eq!(c.stratified_delta, 0.001);
        assert_eq!(c.planner_top_k, 10);
    }

    #[test]
    fn subsample_count_is_squared() {
        let mut c = VerdictConfig::default();
        c.subsample_count = 120;
        assert_eq!(c.sqrt_subsamples(), 11);
        assert_eq!(c.effective_subsamples(), 121);
    }
}
