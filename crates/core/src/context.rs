//! [`VerdictContext`] — the user-facing entry point of the middleware.
//!
//! A context wraps a driver-level [`Backend`] to the underlying database
//! (paper Figure 1a) and exposes the two stages of the workflow (Figure 2):
//!
//! * **sample preparation** — [`VerdictContext::create_sample`] /
//!   [`VerdictContext::create_recommended_samples`] build sample tables with
//!   plain `CREATE TABLE … AS SELECT` statements and record their metadata;
//! * **query processing** — [`VerdictContext::execute`] parses the incoming
//!   query, plans which samples to use, rewrites the query, has the
//!   underlying database execute the rewritten SQL, and assembles the
//!   approximate answer plus error estimates.  Unsupported queries and
//!   queries for which no sampled plan fits the I/O budget are transparently
//!   passed through to the underlying database.

use crate::answer::{assemble, ColumnErrorSummary};
use crate::backend::{BackendStats, DialectBackend, InstrumentedBackend};
use crate::cache::{AnswerCache, CacheStats};
use crate::config::VerdictConfig;
use crate::error::{VerdictError, VerdictResult};
use crate::meta::MetaStore;
use crate::obs::{Obs, QueryTrace, TraceBuilder};
use crate::planner::{PlanningContext, SamplePlanner};
use crate::rewrite::{analyze_query, rewrite, QueryAnalysis, RewriteOutput};
use crate::sample::builder::build_sample_sql;
use crate::sample::maintenance::{append_sql, staleness, Staleness};
use crate::sample::policy::{default_policy, ColumnCardinality};
use crate::sample::{SampleMeta, SampleType};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use verdict_engine::{Backend, Table, TableBuilder};
use verdict_sql::ast::Statement;
use verdict_sql::dialect::{Dialect, GenericDialect};
use verdict_sql::printer::print_statement;

/// The approximate (or exact, after fallback) answer to one query.
#[derive(Debug, Clone)]
pub struct VerdictAnswer {
    /// The result rows, shaped like the original query's output (plus
    /// optional `<column>_err` columns when configured).
    pub table: Table,
    /// True when the answer was computed exactly on the base tables
    /// (unsupported query, no viable sample plan, or accuracy-contract rerun).
    pub exact: bool,
    /// True when the answer was served from the approximate-answer cache
    /// without touching the underlying database.  `table`, `errors`,
    /// `rewritten_sql`, `rows_scanned`, and `used_samples` are bit-identical
    /// to the originally computed answer; only `elapsed` reflects the (much
    /// cheaper) cache lookup.
    pub cached: bool,
    /// Estimated error summaries per aggregate output column (empty for exact answers).
    pub errors: Vec<ColumnErrorSummary>,
    /// The SQL statements actually sent to the underlying database.
    pub rewritten_sql: Vec<String>,
    /// Wall-clock time spent end-to-end inside VerdictDB (including the
    /// underlying database's execution time).
    pub elapsed: Duration,
    /// Total base/sample rows scanned by the underlying database.
    pub rows_scanned: u64,
    /// Names of the sample tables used (empty for exact answers).
    pub used_samples: Vec<String>,
}

impl VerdictAnswer {
    /// The largest estimated relative error across all aggregate columns.
    pub fn max_relative_error(&self) -> f64 {
        self.errors
            .iter()
            .map(|e| e.max_relative_error)
            .fold(0.0, f64::max)
    }
}

/// Monotonic counters describing progressive-stream activity on a context
/// (surfaced by `SHOW STATS`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Streams opened (progressive or fallback).
    pub started: u64,
    /// Frames emitted across all streams.
    pub frames: u64,
    /// Streams that stopped early because the target error was met.
    pub early_stops: u64,
    /// Streams that consumed every scramble block.
    pub completed: u64,
    /// Streams answered as a single frame because the query was outside the
    /// progressive class (joins, count-distinct, min/max, no usable
    /// scramble, or a connection without block scans).
    pub fallbacks: u64,
}

/// Interior-mutable holder for [`StreamStats`].
#[derive(Debug, Default)]
pub(crate) struct StreamCounters {
    pub(crate) started: std::sync::atomic::AtomicU64,
    pub(crate) frames: std::sync::atomic::AtomicU64,
    pub(crate) early_stops: std::sync::atomic::AtomicU64,
    pub(crate) completed: std::sync::atomic::AtomicU64,
    pub(crate) fallbacks: std::sync::atomic::AtomicU64,
}

/// The VerdictDB middleware instance.
pub struct VerdictContext {
    /// The active backend, wrapped in routing instrumentation.  Kept as a
    /// type-erased `Arc<dyn Backend>` so [`Self::connection`] can hand out
    /// the trait object directly.
    conn: Arc<dyn Backend>,
    /// The same allocation as `conn`, concretely typed so the routing
    /// counters can be read back for `SHOW STATS`.
    instrumented: Arc<InstrumentedBackend>,
    config: VerdictConfig,
    meta: MetaStore,
    cache: AnswerCache,
    pub(crate) streams: StreamCounters,
    /// Optional persistent scramble store ([`Self::with_store`]).  When
    /// present, every scramble build/refresh/drop writes through to disk and
    /// the context reloads persisted scrambles plus their metadata on
    /// construction (cold-start serving).
    store: Option<Arc<verdict_store::Store>>,
    /// Always-on observability registry: per-stage / per-class latency
    /// histograms, statement counters, and the ring of recent query traces
    /// (see [`crate::obs`]).  Served by `EXPLAIN ANALYZE`, `SHOW PROFILE`,
    /// and `SHOW METRICS`.
    obs: Obs,
}

/// Key of the store blob holding the serialized sample-metadata registry.
const META_BLOB: &str = "verdict_meta";

impl VerdictContext {
    /// Creates a context over a backend, speaking the backend's own dialect
    /// ([`Backend::dialect`] — the generic dialect unless the backend
    /// overrides it).
    pub fn new(conn: Arc<dyn Backend>, config: VerdictConfig) -> VerdictContext {
        // Thread the engine speed knobs through to the backend; backends
        // without a local execution engine ignore the hints.
        if let Some(threads) = config.parallelism {
            conn.set_parallelism(threads);
        }
        if let Some(strategy) = config.group_strategy {
            conn.set_group_strategy(strategy);
        }
        let cache = AnswerCache::new(config.answer_cache_capacity);
        let instrumented = Arc::new(InstrumentedBackend::new(conn));
        VerdictContext {
            conn: instrumented.clone(),
            instrumented,
            config,
            meta: MetaStore::new(),
            cache,
            streams: StreamCounters::default(),
            store: None,
            obs: Obs::default(),
        }
    }

    /// The observability registry: latency histograms, statement counters,
    /// and the recent-trace ring.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Creates a context backed by a persistent scramble store.
    ///
    /// The caller must already have attached the same store to the
    /// backend's catalog (so persisted tables are visible through SQL);
    /// this constructor then reloads the persisted sample metadata and
    /// re-registers every scramble whose table still exists — **healing**
    /// records that no longer match the on-disk truth: a missing table
    /// drops its record, and a row-count drift (e.g. a crash between a
    /// scramble write and the metadata write) is folded into
    /// `appended_rows`, which marks the scramble's shuffle as lost so
    /// progressive execution declines it rather than serving a biased
    /// prefix.
    pub fn with_store(
        conn: Arc<dyn Backend>,
        config: VerdictConfig,
        store: Arc<verdict_store::Store>,
    ) -> VerdictResult<VerdictContext> {
        let mut ctx = Self::new(conn, config);
        ctx.store = Some(store);
        ctx.reload_persisted_meta()?;
        Ok(ctx)
    }

    /// The persistent store, when one is attached.
    pub fn store(&self) -> Option<&Arc<verdict_store::Store>> {
        self.store.as_ref()
    }

    /// Snapshot of the store's activity counters, when a store is attached.
    pub fn store_stats(&self) -> Option<verdict_store::StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    fn reload_persisted_meta(&self) -> VerdictResult<usize> {
        let store = self.store.as_ref().expect("called with store attached");
        let bytes = match store
            .get_blob(META_BLOB)
            .map_err(|e| VerdictError::Metadata(format!("store: {e}")))?
        {
            Some(b) => b,
            None => return Ok(0),
        };
        let mut loaded = 0usize;
        for mut meta in crate::meta::decode_samples(&bytes)? {
            if !self.conn.table_exists(&meta.sample_table) {
                // The scramble's table is gone (e.g. a crash mid-rebuild
                // after the drop committed): drop the stale record.
                continue;
            }
            let actual = self.conn.table_row_count(&meta.sample_table)?;
            if actual != meta.sample_rows {
                // Table and metadata disagree; trust the table, and mark
                // the shuffle as lost so progressive execution declines it.
                meta.appended_rows += actual.abs_diff(meta.sample_rows);
                meta.sample_rows = actual;
            }
            self.meta.register(meta);
            loaded += 1;
        }
        Ok(loaded)
    }

    /// Captures the current contents of `sample_table` from the backend and
    /// writes them through the store's WAL, making the table *tracked*:
    /// later catalog-level appends and drops write through automatically.
    fn persist_sample_table(&self, sample_table: &str) -> VerdictResult<()> {
        let store = match &self.store {
            Some(s) => s,
            None => return Ok(()),
        };
        let table = self.conn.table_snapshot(sample_table).ok_or_else(|| {
            VerdictError::Metadata(format!(
                "backend {} cannot snapshot {sample_table}; persistence requires an \
                 in-process engine backend",
                self.conn.name()
            ))
        })?;
        let version = self.conn.data_version(sample_table).unwrap_or(1);
        store
            .save_table(&sample_table.to_ascii_lowercase(), &table, version)
            .map_err(|e| VerdictError::Metadata(format!("store: {e}")))
    }

    /// Persists the entire sample-metadata registry as one atomic blob
    /// write.  Called after every registry mutation so a restarted instance
    /// reloads exactly the scrambles this one knew about.
    fn persist_meta(&self) -> VerdictResult<()> {
        let store = match &self.store {
            Some(s) => s,
            None => return Ok(()),
        };
        let bytes = crate::meta::encode_samples(&self.meta.all());
        store
            .put_blob(META_BLOB, &bytes)
            .map_err(|e| VerdictError::Metadata(format!("store: {e}")))
    }

    /// Creates a context with an explicit SQL dialect (Impala, Spark SQL,
    /// Redshift, …) overriding whatever the backend itself reports.
    pub fn with_dialect(
        conn: Arc<dyn Backend>,
        dialect: Box<dyn Dialect>,
        config: VerdictConfig,
    ) -> VerdictContext {
        Self::new(Arc::new(DialectBackend::new(conn, dialect)), config)
    }

    /// The immutable base configuration.
    ///
    /// The context's configuration is fixed at construction time: a context
    /// is shared by many sessions behind an `Arc`, so there is deliberately
    /// no mutation path.  Per-session / per-query overrides go through
    /// [`crate::session::QueryOptions`] on a [`crate::session::VerdictSession`],
    /// which resolves an effective configuration for each statement.
    pub fn config(&self) -> &VerdictConfig {
        &self.config
    }

    /// The sample-metadata registry.
    pub fn meta(&self) -> &MetaStore {
        &self.meta
    }

    /// The active backend (wrapped in routing instrumentation).  The method
    /// keeps its pre-refactor name; `Connection` is an alias of [`Backend`].
    pub fn connection(&self) -> &Arc<dyn Backend> {
        &self.conn
    }

    /// The SQL dialect used when talking to the underlying database — the
    /// active backend's [`Backend::dialect`], possibly overridden by
    /// [`Self::with_dialect`].
    pub fn dialect(&self) -> &dyn Dialect {
        self.conn.dialect()
    }

    /// Quotes one identifier for the active backend's dialect (no-op for
    /// identifiers that do not need quoting).
    fn quoted(&self, ident: &str) -> String {
        self.dialect().quote_ident(ident)
    }

    // ------------------------------------------------------------------
    // Sample preparation (offline stage)
    // ------------------------------------------------------------------

    /// Creates one sample table of the given type over `base_table` using the
    /// configured default sampling ratio.
    pub fn create_sample(
        &self,
        base_table: &str,
        sample_type: SampleType,
    ) -> VerdictResult<SampleMeta> {
        self.create_sample_with_ratio(base_table, sample_type, self.config.sampling_ratio)
    }

    /// Creates one sample table with an explicit sampling parameter τ.
    pub fn create_sample_with_ratio(
        &self,
        base_table: &str,
        sample_type: SampleType,
        ratio: f64,
    ) -> VerdictResult<SampleMeta> {
        self.create_sample_named(None, base_table, sample_type, ratio, &self.config)
    }

    /// Creates one sample (scramble) table, optionally under a caller-chosen
    /// name (`CREATE SCRAMBLE <name> FROM …`), with an explicit configuration
    /// (sessions pass their per-statement resolved config).
    ///
    /// An existing **scramble** with the same name is replaced: its
    /// registration and table are dropped before the new one is built.  A
    /// name that collides with an existing table that is *not* a registered
    /// scramble (e.g. a base table) is rejected — replace semantics must
    /// never be able to destroy user data.
    pub fn create_sample_named(
        &self,
        name: Option<&str>,
        base_table: &str,
        sample_type: SampleType,
        ratio: f64,
        config: &VerdictConfig,
    ) -> VerdictResult<SampleMeta> {
        let base_rows = self.conn.table_row_count(base_table)?;
        let base_columns = self.column_names(base_table)?;
        let strata_count = match &sample_type {
            SampleType::Stratified { columns } => self.distinct_count(base_table, columns)?,
            _ => 0,
        };
        let sample_table = match name {
            Some(n) => n.to_string(),
            None => SampleMeta::table_name_for(base_table, &sample_type),
        };
        // Replace semantics: forget any scramble already registered under
        // this name (possibly over a different base table) before rebuilding.
        // If nothing was registered but a table with that name exists, the
        // name points at real data — refuse rather than clobber it.
        if self.meta.remove_sample(&sample_table).is_none() && self.conn.table_exists(&sample_table)
        {
            return Err(VerdictError::Metadata(format!(
                "{sample_table} already names a table that is not a registered scramble; \
                 refusing to replace it"
            )));
        }
        self.conn.execute(&format!(
            "DROP TABLE IF EXISTS {}",
            self.quoted(&sample_table)
        ))?;
        let plan = build_sample_sql(
            base_table,
            &sample_table,
            &sample_type,
            ratio,
            base_rows,
            strata_count,
            &base_columns,
            config,
            self.dialect(),
        );
        for stmt in &plan.statements {
            self.conn.execute(stmt)?;
        }
        let sample_rows = self.conn.table_row_count(&sample_table)?;
        let meta = SampleMeta {
            base_table: base_table.to_string(),
            sample_table,
            sample_type,
            ratio,
            sample_rows,
            base_rows,
            appended_rows: 0,
        };
        self.meta.register(meta.clone());
        self.persist_sample_table(&meta.sample_table)?;
        self.persist_meta()?;
        Ok(meta)
    }

    /// Applies the default sampling policy (Appendix F): inspects column
    /// cardinalities and builds a uniform sample plus hashed/stratified
    /// samples for high-/low-cardinality columns.
    pub fn create_recommended_samples(&self, base_table: &str) -> VerdictResult<Vec<SampleMeta>> {
        self.create_recommended_samples_with(base_table, &self.config)
    }

    /// [`Self::create_recommended_samples`] with an explicit configuration
    /// (sessions pass their per-statement resolved config).
    pub fn create_recommended_samples_with(
        &self,
        base_table: &str,
        config: &VerdictConfig,
    ) -> VerdictResult<Vec<SampleMeta>> {
        let base_rows = self.conn.table_row_count(base_table)?;
        let columns = self.column_names(base_table)?;
        let mut cardinalities = Vec::new();
        if !columns.is_empty() {
            let ndv_list = columns
                .iter()
                .map(|c| {
                    let q = self.quoted(c);
                    format!("ndv({q}) AS {q}")
                })
                .collect::<Vec<_>>()
                .join(", ");
            let result = self.conn.execute(&format!(
                "SELECT {ndv_list} FROM {}",
                self.quoted(base_table)
            ))?;
            for (i, c) in columns.iter().enumerate() {
                cardinalities.push(ColumnCardinality {
                    column: c.clone(),
                    distinct_values: result.table.value(0, i).as_i64().unwrap_or(0) as u64,
                });
            }
        }
        let decision = default_policy(base_rows, &cardinalities, config);
        let mut created = Vec::new();
        for sample_type in decision.sample_types {
            created.push(self.create_sample_named(
                None,
                base_table,
                sample_type,
                decision.ratio,
                config,
            )?);
        }
        Ok(created)
    }

    /// Refreshes every sample of `base_table` after a batch of new rows
    /// (available in `batch_table`) has been appended to it (Appendix D).
    ///
    /// The batch is projected in the **base table's** column order: the
    /// `INSERT` into each sample is positional, so a batch staged with the
    /// same columns in a different order must not end up writing values into
    /// the wrong sample columns.  (Columns are referenced by name, so order
    /// differences are harmless; a batch *missing* a base column fails
    /// loudly.)
    ///
    /// Only samples whose recorded base size lags the current base table
    /// (i.e. [`Staleness::Stale`]) are appended into; up-to-date samples are
    /// skipped.  This makes a retried `REFRESH` after a partial mid-loop
    /// failure idempotent — the samples that succeeded on the first attempt
    /// are not double-appended on the retry.
    pub fn refresh_samples_after_append(
        &self,
        base_table: &str,
        batch_table: &str,
    ) -> VerdictResult<usize> {
        let current_base_rows = self.conn.table_row_count(base_table)?;
        let batch_rows = self.conn.table_row_count(batch_table)?;
        let base_columns = self.column_names(base_table)?;
        let samples = self.meta.remove_for(base_table);
        let mut refreshed = 0usize;
        for (i, meta) in samples.iter().enumerate() {
            if !matches!(staleness(meta, current_base_rows), Staleness::Stale { .. }) {
                // Fresh (already refreshed, e.g. on a retried call) or
                // shrunk-base (needs a rebuild, not an append): keep as-is.
                self.meta.register(meta.clone());
                continue;
            }
            let appended = (|| -> VerdictResult<u64> {
                for stmt in append_sql(meta, batch_table, &base_columns, self.dialect()) {
                    self.conn.execute(&stmt)?;
                }
                Ok(self.conn.table_row_count(&meta.sample_table)?)
            })();
            match appended {
                Ok(sample_rows) => {
                    self.meta.register(SampleMeta {
                        // Appends land unshuffled at the sample's tail; the
                        // counter marks the prefix-uniformity property as
                        // lost until the next full rebuild (see
                        // `SampleMeta::appended_rows`).
                        appended_rows: meta.appended_rows
                            + sample_rows.saturating_sub(meta.sample_rows),
                        sample_rows,
                        base_rows: meta.base_rows + batch_rows,
                        ..meta.clone()
                    });
                    refreshed += 1;
                }
                Err(e) => {
                    // Re-register the failed and remaining samples untouched
                    // so a mid-loop error does not deregister them forever.
                    for m in &samples[i..] {
                        self.meta.register(m.clone());
                    }
                    // Best-effort metadata persistence: some samples may
                    // already have refreshed before the failure.
                    let _ = self.persist_meta();
                    return Err(e);
                }
            }
        }
        self.persist_meta()?;
        Ok(refreshed)
    }

    /// Reports whether samples of a base table are stale with respect to its
    /// current row count.
    pub fn sample_staleness(
        &self,
        base_table: &str,
    ) -> VerdictResult<Vec<(SampleMeta, Staleness)>> {
        let current = self.conn.table_row_count(base_table)?;
        Ok(self
            .meta
            .samples_for(base_table)
            .into_iter()
            .map(|m| {
                let s = staleness(&m, current);
                (m, s)
            })
            .collect())
    }

    /// Drops every sample table built for `base_table` and forgets its metadata.
    pub fn drop_samples(&self, base_table: &str) -> VerdictResult<usize> {
        let samples = self.meta.remove_for(base_table);
        let mut dropped = 0usize;
        for meta in samples {
            self.conn.execute(&format!(
                "DROP TABLE IF EXISTS {}",
                self.quoted(&meta.sample_table)
            ))?;
            dropped += 1;
        }
        self.persist_meta()?;
        Ok(dropped)
    }

    /// Drops a single scramble by its (sample-table) name, returning whether
    /// one existed.  With `if_exists` a missing scramble is not an error.
    pub fn drop_sample_named(&self, name: &str, if_exists: bool) -> VerdictResult<bool> {
        match self.meta.remove_sample(name) {
            Some(meta) => {
                self.conn.execute(&format!(
                    "DROP TABLE IF EXISTS {}",
                    self.quoted(&meta.sample_table)
                ))?;
                self.persist_meta()?;
                Ok(true)
            }
            None if if_exists => Ok(false),
            None => Err(VerdictError::Metadata(format!(
                "no scramble named {name} is registered"
            ))),
        }
    }

    /// Rebuilds every sample of `base_table` from the current base data,
    /// keeping each sample's name, type, and ratio (a batchless
    /// `REFRESH SCRAMBLES` statement).  Returns the number of samples rebuilt.
    pub fn rebuild_samples(
        &self,
        base_table: &str,
        config: &VerdictConfig,
    ) -> VerdictResult<usize> {
        let samples = self.meta.samples_for(base_table);
        let mut rebuilt = 0usize;
        for meta in &samples {
            // `create_sample_named` removes the old registration and drops
            // the old table itself; a failure leaves the remaining samples'
            // registrations untouched.
            self.create_sample_named(
                Some(&meta.sample_table),
                base_table,
                meta.sample_type.clone(),
                meta.ratio,
                config,
            )?;
            rebuilt += 1;
        }
        Ok(rebuilt)
    }

    // ------------------------------------------------------------------
    // Query processing (online stage)
    // ------------------------------------------------------------------

    /// Executes a query approximately when possible, exactly otherwise.
    ///
    /// When the answer cache is enabled (a nonzero
    /// [`VerdictConfig::answer_cache_capacity`]) and an identical query
    /// (modulo whitespace / case / literal spelling, see
    /// [`verdict_sql::canonical_sql`]) was answered before over unchanged
    /// data, the stored answer — estimate *and* confidence interval — is
    /// returned without touching the underlying database, with
    /// [`VerdictAnswer::cached`] set.
    pub fn execute(&self, sql: &str) -> VerdictResult<VerdictAnswer> {
        self.execute_with_config(sql, &self.config)
    }

    /// [`Self::execute`] with an explicit per-statement configuration.
    ///
    /// This is the execution entry point used by
    /// [`crate::session::VerdictSession`]: the session resolves its
    /// [`crate::session::QueryOptions`] against the base configuration and
    /// passes the result here, so per-query accuracy/caching overrides never
    /// mutate shared state.  Answers computed under different
    /// answer-affecting settings use distinct cache keys (see
    /// [`VerdictConfig::cache_fingerprint`]).
    pub fn execute_with_config(
        &self,
        sql: &str,
        config: &VerdictConfig,
    ) -> VerdictResult<VerdictAnswer> {
        let stmt = verdict_sql::parse_statement(sql)?;
        self.execute_statement_with_config(&stmt, sql, config)
    }

    /// [`Self::execute_with_config`] over an already-parsed statement
    /// (`sql` must be the statement's source text, used for passthrough).
    pub fn execute_statement_with_config(
        &self,
        stmt: &Statement,
        sql: &str,
        config: &VerdictConfig,
    ) -> VerdictResult<VerdictAnswer> {
        self.execute_statement_traced(stmt, sql, config, "none")
            .map(|(answer, _)| answer)
    }

    /// [`Self::execute_statement_with_config`], additionally returning the
    /// finished [`QueryTrace`] (already folded into the observability
    /// registry).  `shed_tier` is the admission tier label recorded in the
    /// trace (`"none"` outside the serving layer).  This is the execution
    /// entry point behind `EXPLAIN ANALYZE`.
    pub fn execute_statement_traced(
        &self,
        stmt: &Statement,
        sql: &str,
        config: &VerdictConfig,
        shed_tier: &'static str,
    ) -> VerdictResult<(VerdictAnswer, QueryTrace)> {
        let mut tb = TraceBuilder::new();
        let backend_before = self.instrumented.queries_routed();
        let pages_before = self.store.as_ref().map_or(0, |s| s.stats().pages_read);
        tb.begin("canonicalize");
        let cache_key = self.cache_key(stmt, config);
        tb.begin("cache_probe");
        if let Some(key) = &cache_key {
            if let Some(mut answer) = self.cache.lookup(key, |t| self.conn.data_version(t)) {
                tb.note("hit".into());
                answer.cached = true;
                let trace = self.finish_trace(
                    tb,
                    stmt,
                    sql,
                    config,
                    &mut answer,
                    shed_tier,
                    backend_before,
                    pages_before,
                );
                return Ok((answer, trace));
            }
            tb.note("miss".into());
        } else {
            tb.note("uncacheable".into());
        }
        let mut answer = self.execute_and_insert(stmt, sql, config, cache_key, &mut tb)?;
        let trace = self.finish_trace(
            tb,
            stmt,
            sql,
            config,
            &mut answer,
            shed_tier,
            backend_before,
            pages_before,
        );
        Ok((answer, trace))
    }

    /// The traced sibling of [`Self::execute_exact`]: runs `sql` exactly on
    /// the base tables while recording a trace classified by `class_stmt`
    /// (sessions pass the `BYPASS` wrapper or the bypassed statement, so the
    /// trace lands in the `bypass` / original class histogram).
    pub fn execute_exact_traced(
        &self,
        class_stmt: &Statement,
        sql: &str,
        config: &VerdictConfig,
        shed_tier: &'static str,
    ) -> VerdictResult<(VerdictAnswer, QueryTrace)> {
        let mut tb = TraceBuilder::new();
        let backend_before = self.instrumented.queries_routed();
        let pages_before = self.store.as_ref().map_or(0, |s| s.stats().pages_read);
        tb.begin("passthrough");
        let mut answer = self.passthrough(sql, tb.started())?;
        let trace = self.finish_trace(
            tb,
            class_stmt,
            sql,
            config,
            &mut answer,
            shed_tier,
            backend_before,
            pages_before,
        );
        Ok((answer, trace))
    }

    /// Records a one-span trace for a statement executed outside the query
    /// pipeline (scramble DDL, `SET`, `SHOW …`): the session times the
    /// statement and reports it here, so control statements appear in the
    /// class histograms and the recent-trace ring alongside queries.
    pub fn observe_control(
        &self,
        stmt: &Statement,
        sql: &str,
        total: Duration,
        config: &VerdictConfig,
        shed_tier: &'static str,
    ) -> QueryTrace {
        let slow = config.slow_query_ms > 0 && total >= Duration::from_millis(config.slow_query_ms);
        self.obs.observe(QueryTrace {
            seq: 0,
            class: statement_class(stmt),
            sql: sql.to_string(),
            total,
            spans: vec![crate::obs::SpanRecord {
                stage: "control",
                start: Duration::ZERO,
                duration: total,
                detail: String::new(),
            }],
            cached: false,
            exact: true,
            shed_tier,
            backend_queries: 0,
            store_pages_read: 0,
            rows_returned: 0,
            rows_scanned: 0,
            slow,
        })
    }

    /// Closes the trace, attributes the backend/store work done since the
    /// statement started, folds the trace into the observability registry,
    /// and stamps the answer's `elapsed` with the trace total (so span
    /// durations and the reported wall time agree).
    #[allow(clippy::too_many_arguments)]
    fn finish_trace(
        &self,
        tb: TraceBuilder,
        stmt: &Statement,
        sql: &str,
        config: &VerdictConfig,
        answer: &mut VerdictAnswer,
        shed_tier: &'static str,
        backend_before: u64,
        pages_before: u64,
    ) -> QueryTrace {
        let (total, spans) = tb.finish();
        answer.elapsed = total;
        let class = match statement_class(stmt) {
            "query" if answer.cached => "query_cached",
            c => c,
        };
        let backend_queries = self.instrumented.queries_routed() - backend_before;
        let pages_read = self
            .store
            .as_ref()
            .map_or(0, |s| s.stats().pages_read)
            .saturating_sub(pages_before);
        let slow = config.slow_query_ms > 0 && total >= Duration::from_millis(config.slow_query_ms);
        self.obs.observe(QueryTrace {
            seq: 0,
            class,
            sql: sql.to_string(),
            total,
            spans,
            cached: answer.cached,
            exact: answer.exact,
            shed_tier,
            backend_queries,
            store_pages_read: pages_read,
            rows_returned: answer.table.num_rows() as u64,
            rows_scanned: answer.rows_scanned,
            slow,
        })
    }

    /// Executes a statement **without consulting the cache**, while still
    /// inserting the freshly computed answer (streams and `STREAM`'s
    /// final-frame alias use this: a stream must observe current data, but
    /// its completed answer is exactly what a one-shot `SELECT` would have
    /// produced, so the next identical `SELECT` may reuse it).  The stage
    /// spans still feed the stage histograms; no ring trace is recorded —
    /// streams report through their own counters.
    pub(crate) fn execute_skip_cache_read(
        &self,
        stmt: &Statement,
        sql: &str,
        config: &VerdictConfig,
    ) -> VerdictResult<VerdictAnswer> {
        let mut tb = TraceBuilder::new();
        tb.begin("canonicalize");
        let cache_key = self.cache_key(stmt, config);
        let answer = self.execute_and_insert(stmt, sql, config, cache_key, &mut tb)?;
        let (_, spans) = tb.finish();
        for span in &spans {
            self.obs.record_stage(span.stage, span.duration);
        }
        Ok(answer)
    }

    fn execute_and_insert(
        &self,
        stmt: &Statement,
        sql: &str,
        config: &VerdictConfig,
        cache_key: Option<String>,
        tb: &mut TraceBuilder,
    ) -> VerdictResult<VerdictAnswer> {
        // Snapshot dependency versions BEFORE executing: if a concurrent
        // write lands mid-execution, the entry is stored under the
        // pre-write versions and fails revalidation, instead of a
        // post-execution snapshot masking the write and caching a stale
        // answer under the new version.
        let pre_versions = match &cache_key {
            Some(_) => self.snapshot_versions(stmt),
            None => None,
        };
        let answer = self.execute_parsed(stmt, sql, tb, config)?;
        if let (Some(key), Some(snapshot)) = (cache_key, pre_versions) {
            if let Some(versions) = Self::dependency_versions(&snapshot, stmt, &answer) {
                tb.begin("cache_insert");
                self.cache.insert(key, versions, answer.clone());
            }
        }
        Ok(answer)
    }

    fn execute_parsed(
        &self,
        stmt: &Statement,
        sql: &str,
        tb: &mut TraceBuilder,
        config: &VerdictConfig,
    ) -> VerdictResult<VerdictAnswer> {
        let query = match stmt {
            Statement::Query(q) => q.as_ref().clone(),
            _ => return self.passthrough_spanned(sql, tb, "control"),
        };

        // Analyse; unsupported queries are passed through unchanged (§2.2).
        tb.begin("analyze");
        let analysis = match analyze_query(&query) {
            Ok(a) => a,
            Err(VerdictError::Unsupported(_)) | Err(VerdictError::NoSampleAvailable(_)) => {
                return self.passthrough_spanned(sql, tb, "passthrough")
            }
            Err(e) => return Err(e),
        };

        // Plan sample usage.
        tb.begin("plan");
        let mut row_counts: HashMap<String, u64> = HashMap::new();
        for t in &analysis.tables {
            let rows = match self.conn.table_row_count(&t.table) {
                Ok(r) => r,
                Err(_) => return self.passthrough_spanned(sql, tb, "passthrough"),
            };
            row_counts.insert(t.table.to_ascii_lowercase(), rows);
        }
        let planner = SamplePlanner::new(&self.meta, config);
        let plan = planner.plan(
            &analysis.table_refs(&row_counts),
            &PlanningContext {
                group_columns: analysis.group_column_names(),
                distinct_columns: analysis.distinct_column_names(),
                io_budget: config.io_budget,
            },
        );
        if !plan.uses_samples() {
            return self.passthrough_spanned(sql, tb, "passthrough");
        }
        tb.note(format!(
            "{} sample(s), io_cost {}",
            plan.choices.iter().filter(|c| c.sample.is_some()).count(),
            plan.io_cost
        ));

        tb.begin("rewrite");
        let rewritten = match rewrite(&analysis, &plan, config) {
            Ok(r) => r,
            Err(VerdictError::Unsupported(_)) | Err(VerdictError::NoSampleAvailable(_)) => {
                return self.passthrough_spanned(sql, tb, "passthrough")
            }
            Err(e) => return Err(e),
        };

        match self.run_rewritten(&analysis, &rewritten, sql, tb, config)? {
            Some(answer) => Ok(answer),
            None => self.passthrough_spanned(sql, tb, "passthrough"),
        }
    }

    /// Executes the original query exactly on the base tables.
    pub fn execute_exact(&self, sql: &str) -> VerdictResult<VerdictAnswer> {
        self.passthrough(sql, Instant::now())
    }

    fn run_rewritten(
        &self,
        analysis: &QueryAnalysis,
        rewritten: &RewriteOutput,
        original_sql: &str,
        tb: &mut TraceBuilder,
        config: &VerdictConfig,
    ) -> VerdictResult<Option<VerdictAnswer>> {
        let mut sqls = Vec::new();
        let mut rows_scanned = 0u64;

        let mut mean_result = None;
        if let Some(stmt) = &rewritten.mean_query {
            tb.begin_with("backend_exec", "mean query".into());
            let sql = print_statement(stmt, self.dialect());
            let result = self.conn.execute(&sql)?;
            rows_scanned += result.stats.rows_scanned;
            sqls.push(sql);
            mean_result = Some(result.table);
        }

        // Feasibility: if subsample cells are too thin (high-cardinality
        // grouping), AQP will not produce useful estimates — fall back to the
        // exact query, as the paper does for tq-3, tq-8, tq-15.
        if let Some(table) = &mean_result {
            if !mean_result_feasible(analysis, table, config) {
                return Ok(None);
            }
        }

        let mut distinct_result = None;
        if let Some((stmt, _)) = &rewritten.distinct_query {
            tb.begin_with("backend_exec", "distinct query".into());
            let sql = print_statement(stmt, self.dialect());
            let result = self.conn.execute(&sql)?;
            rows_scanned += result.stats.rows_scanned;
            sqls.push(sql);
            distinct_result = Some(result.table);
        }

        let mut extreme_result = None;
        if let Some(stmt) = &rewritten.extreme_query {
            tb.begin_with("backend_exec", "extreme query".into());
            let sql = print_statement(stmt, self.dialect());
            let result = self.conn.execute(&sql)?;
            rows_scanned += result.stats.rows_scanned;
            sqls.push(sql);
            extreme_result = Some(result.table);
        }

        tb.begin("assemble");
        let assembled = assemble(
            rewritten,
            mean_result.as_ref(),
            distinct_result.as_ref(),
            extreme_result.as_ref(),
            config,
        )?;

        // High-level Accuracy Contract: rerun exactly when the estimated
        // error violates the configured accuracy requirement (§2.4).
        if let Some(max_rel) = config.max_relative_error {
            let worst = assembled
                .errors
                .iter()
                .map(|e| e.max_relative_error)
                .fold(0.0, f64::max);
            if worst > max_rel {
                tb.begin_with(
                    "rerun",
                    format!("estimated error {worst:.4} > target {max_rel:.4}"),
                );
                let mut exact = self.passthrough(original_sql, tb.started())?;
                exact.rewritten_sql.splice(0..0, sqls);
                return Ok(Some(exact));
            }
        }

        let used_samples: Vec<String> = rewritten
            .plan
            .choices
            .iter()
            .filter_map(|c| c.sample.as_ref().map(|s| s.sample_table.clone()))
            .collect();
        tb.note(format!("samples: {}", used_samples.join(", ")));

        Ok(Some(VerdictAnswer {
            table: assembled.table,
            exact: false,
            cached: false,
            errors: assembled.errors,
            rewritten_sql: sqls,
            elapsed: tb.elapsed(),
            rows_scanned,
            used_samples,
        }))
    }

    /// [`Self::passthrough`] under an open trace span: the exact execution is
    /// recorded as one `stage` span (`"passthrough"` for AQP fallbacks,
    /// `"control"` for non-query statements).
    fn passthrough_spanned(
        &self,
        sql: &str,
        tb: &mut TraceBuilder,
        stage: &'static str,
    ) -> VerdictResult<VerdictAnswer> {
        tb.begin(stage);
        self.passthrough(sql, tb.started())
    }

    pub(crate) fn passthrough(&self, sql: &str, start: Instant) -> VerdictResult<VerdictAnswer> {
        let result = self.conn.execute(sql)?;
        Ok(VerdictAnswer {
            table: result.table,
            exact: true,
            cached: false,
            errors: Vec::new(),
            rewritten_sql: vec![sql.to_string()],
            elapsed: start.elapsed(),
            rows_scanned: result.stats.rows_scanned,
            used_samples: Vec::new(),
        })
    }

    // ------------------------------------------------------------------
    // Observability surface (EXPLAIN / SHOW METRICS)
    // ------------------------------------------------------------------

    /// `EXPLAIN <statement>`: describes how the statement *would* execute —
    /// sample plan, rewritten SQL, cacheability — without executing it.
    /// Returns a two-column `(item, value)` table.
    pub fn explain_statement(
        &self,
        stmt: &Statement,
        config: &VerdictConfig,
    ) -> VerdictResult<Table> {
        let mut rows: Vec<(String, String)> = Vec::new();
        // Unwrap execution-mode wrappers so the plan describes the query the
        // wrapper would run.
        let (mode, query) = match stmt {
            Statement::Query(q) => ("query", q.as_ref().clone()),
            Statement::Stream(q) => ("stream", q.as_ref().clone()),
            Statement::Bypass(inner) => {
                rows.push(("statement".into(), "bypass".into()));
                rows.push(("plan".into(), "exact (bypass)".into()));
                rows.push(("sql".into(), print_statement(inner, self.dialect())));
                return explain_table(rows);
            }
            other => {
                rows.push(("statement".into(), statement_class(other).into()));
                rows.push(("plan".into(), "passthrough to backend".into()));
                return explain_table(rows);
            }
        };
        rows.push(("statement".into(), mode.into()));
        rows.push((
            "cacheable".into(),
            if self
                .cache_key(&Statement::Query(Box::new(query.clone())), config)
                .is_some()
            {
                "yes"
            } else {
                "no"
            }
            .into(),
        ));
        let analysis = match analyze_query(&query) {
            Ok(a) => a,
            Err(VerdictError::Unsupported(msg)) | Err(VerdictError::NoSampleAvailable(msg)) => {
                rows.push(("plan".into(), "exact passthrough".into()));
                rows.push(("reason".into(), msg));
                return explain_table(rows);
            }
            Err(e) => return Err(e),
        };
        let mut row_counts: HashMap<String, u64> = HashMap::new();
        for t in &analysis.tables {
            match self.conn.table_row_count(&t.table) {
                Ok(r) => {
                    row_counts.insert(t.table.to_ascii_lowercase(), r);
                }
                Err(e) => {
                    rows.push(("plan".into(), "exact passthrough".into()));
                    rows.push(("reason".into(), format!("row count for {}: {e}", t.table)));
                    return explain_table(rows);
                }
            }
        }
        let planner = SamplePlanner::new(&self.meta, config);
        let plan = planner.plan(
            &analysis.table_refs(&row_counts),
            &PlanningContext {
                group_columns: analysis.group_column_names(),
                distinct_columns: analysis.distinct_column_names(),
                io_budget: config.io_budget,
            },
        );
        for choice in &plan.choices {
            let what = match &choice.sample {
                Some(s) => format!(
                    "scramble {} (ratio {}, rows {})",
                    s.sample_table, s.ratio, s.sample_rows
                ),
                None => format!("base table (rows {})", choice.table_ref.rows),
            };
            rows.push((format!("table {}", choice.table_ref.table), what));
        }
        if !plan.uses_samples() {
            rows.push(("plan".into(), "exact passthrough".into()));
            rows.push((
                "reason".into(),
                "no registered scramble fits the I/O budget".into(),
            ));
            return explain_table(rows);
        }
        rows.push(("plan".into(), "approximate".into()));
        rows.push(("io_cost".into(), plan.io_cost.to_string()));
        match rewrite(&analysis, &plan, config) {
            Ok(rewritten) => {
                let mut i = 0usize;
                let mut push_sql = |rows: &mut Vec<(String, String)>, stmt: &Statement| {
                    rows.push((
                        format!("rewritten[{i}]"),
                        print_statement(stmt, self.dialect()),
                    ));
                    i += 1;
                };
                if let Some(s) = &rewritten.mean_query {
                    push_sql(&mut rows, s);
                }
                if let Some((s, _)) = &rewritten.distinct_query {
                    push_sql(&mut rows, s);
                }
                if let Some(s) = &rewritten.extreme_query {
                    push_sql(&mut rows, s);
                }
            }
            Err(VerdictError::Unsupported(msg)) | Err(VerdictError::NoSampleAvailable(msg)) => {
                rows.push(("plan".into(), "exact passthrough".into()));
                rows.push(("reason".into(), msg));
            }
            Err(e) => return Err(e),
        }
        explain_table(rows)
    }

    /// Renders the full metrics exposition (`SHOW METRICS`):
    /// observability-registry counters and histograms plus cache, backend,
    /// stream, and store counters, in Prometheus text format.  Serving-layer
    /// gauges (queue depth, sessions) are appended by the server on top.
    pub fn metrics_text(&self) -> String {
        let cache = self.cache_stats();
        let backend = self.backend_stats();
        let streams = self.stream_stats();
        let mut counters: Vec<(String, u64)> = vec![
            ("verdict_cache_hits_total".into(), cache.hits),
            ("verdict_cache_misses_total".into(), cache.misses),
            ("verdict_cache_insertions_total".into(), cache.insertions),
            (
                "verdict_cache_invalidations_total".into(),
                cache.invalidations,
            ),
            ("verdict_cache_evictions_total".into(), cache.evictions),
            (
                "verdict_backend_queries_total".into(),
                backend.queries_routed,
            ),
            (
                "verdict_backend_version_fallbacks_total".into(),
                backend.version_fallbacks,
            ),
            (
                "verdict_backend_scan_fallbacks_total".into(),
                backend.scan_fallbacks,
            ),
            ("verdict_streams_started_total".into(), streams.started),
            ("verdict_stream_frames_total".into(), streams.frames),
            (
                "verdict_stream_early_stops_total".into(),
                streams.early_stops,
            ),
            ("verdict_streams_completed_total".into(), streams.completed),
            ("verdict_stream_fallbacks_total".into(), streams.fallbacks),
        ];
        for (k, v) in &backend.extra {
            counters.push((format!("verdict_backend_{k}_total"), *v));
        }
        if let Some(store) = self.store_stats() {
            counters.push(("verdict_store_pages_read_total".into(), store.pages_read));
            counters.push((
                "verdict_store_pages_written_total".into(),
                store.pages_written,
            ));
            counters.push(("verdict_store_wal_records_total".into(), store.wal_records));
            counters.push(("verdict_store_wal_syncs_total".into(), store.wal_syncs));
            counters.push(("verdict_store_recoveries_total".into(), store.recoveries));
            counters.push(("verdict_store_checkpoints_total".into(), store.checkpoints));
        }
        let gauges: Vec<(String, u64)> = vec![
            ("verdict_scrambles".into(), self.meta.len() as u64),
            ("verdict_cache_entries".into(), self.cache.len() as u64),
            (
                "verdict_cache_capacity".into(),
                self.cache.capacity() as u64,
            ),
        ];
        self.obs.render_prometheus(&counters, &gauges)
    }

    // ------------------------------------------------------------------
    // Answer cache
    // ------------------------------------------------------------------

    /// The approximate-answer cache (disabled unless
    /// [`VerdictConfig::answer_cache_capacity`] > 0).
    pub fn cache(&self) -> &AnswerCache {
        &self.cache
    }

    /// Snapshot of the answer-cache activity counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Snapshot of the per-backend routing counters (queries routed,
    /// capability fallbacks taken, backend-specific extras).
    pub fn backend_stats(&self) -> BackendStats {
        self.instrumented.stats()
    }

    /// Snapshot of the progressive-stream activity counters.
    pub fn stream_stats(&self) -> StreamStats {
        use std::sync::atomic::Ordering::Relaxed;
        StreamStats {
            started: self.streams.started.load(Relaxed),
            frames: self.streams.frames.load(Relaxed),
            early_stops: self.streams.early_stops.load(Relaxed),
            completed: self.streams.completed.load(Relaxed),
            fallbacks: self.streams.fallbacks.load(Relaxed),
        }
    }

    /// The canonical cache key for a statement, or `None` when the statement
    /// must not be cached: the cache is disabled (globally, or for this
    /// statement by a per-session cache policy), the statement is not a
    /// `SELECT`, or it calls a nondeterministic function (`rand()`) anywhere
    /// — including inside scalar / `IN` / `EXISTS` subqueries — whose repeats
    /// must produce fresh draws.
    ///
    /// The key is the backend's identity, the canonical SQL text, and a
    /// fingerprint of every answer-affecting configuration knob: two
    /// sessions running the same query under different accuracy settings
    /// (confidence, target error, error columns, …) produce observably
    /// different answers, so they must not share a cache entry — and an
    /// answer computed against one backend must never be replayed against
    /// another, even if both can see tables with the same names.
    pub(crate) fn cache_key(&self, stmt: &Statement, config: &VerdictConfig) -> Option<String> {
        if !self.cache.enabled() || config.answer_cache_capacity == 0 {
            return None;
        }
        let query = match stmt {
            Statement::Query(q) => q.as_ref(),
            _ => return None,
        };
        if Self::contains_rand(query) {
            return None;
        }
        let canon = verdict_sql::canonical_statement(stmt);
        Some(format!(
            "{}\u{1f}{}\u{1f}{}",
            self.conn.identity(),
            print_statement(&canon, &GenericDialect),
            config.cache_fingerprint()
        ))
    }

    /// True when the query calls `rand()`/`random()` anywhere, recursing into
    /// predicate subqueries (which `walk_query` deliberately does not — the
    /// analyzer relies on that to keep subquery aggregates out of the outer
    /// query's classification).
    fn contains_rand(query: &verdict_sql::ast::Query) -> bool {
        use verdict_sql::ast::Expr;
        let mut found = false;
        let mut subqueries = Vec::new();
        verdict_sql::visitor::walk_query(query, &mut |e| match e {
            Expr::Function(f)
                if f.name.eq_ignore_ascii_case("rand") || f.name.eq_ignore_ascii_case("random") =>
            {
                found = true;
            }
            Expr::ScalarSubquery(q)
            | Expr::InSubquery { subquery: q, .. }
            | Expr::Exists { subquery: q, .. } => subqueries.push((**q).clone()),
            _ => {}
        });
        found || subqueries.iter().any(Self::contains_rand)
    }

    /// Pre-execution data versions of everything this statement *could*
    /// depend on: every referenced base table plus every sample currently
    /// registered for those tables (the plan's choices are a subset).
    /// Returns `None` when the connection cannot report versions — such an
    /// answer is never cached, because its invalidation could not be detected.
    pub(crate) fn snapshot_versions(&self, stmt: &Statement) -> Option<HashMap<String, u64>> {
        let query = match stmt {
            Statement::Query(q) => q.as_ref(),
            _ => return None,
        };
        let mut snapshot = HashMap::new();
        for name in verdict_sql::visitor::collect_base_tables(query) {
            let base = name.key();
            for meta in self.meta.samples_for(&base) {
                let sample = meta.sample_table.to_ascii_lowercase();
                snapshot.insert(sample.clone(), self.conn.data_version(&sample)?);
            }
            snapshot.insert(base.clone(), self.conn.data_version(&base)?);
        }
        Some(snapshot)
    }

    /// The `(table, data version)` pairs a computed answer depends on — every
    /// base table the query references plus every sample table the plan
    /// actually used — resolved against the pre-execution snapshot.  Returns
    /// `None` when a used sample is missing from the snapshot (registered
    /// mid-flight by another session): its pre-execution version is unknown,
    /// so the answer cannot be safely cached.
    pub(crate) fn dependency_versions(
        snapshot: &HashMap<String, u64>,
        stmt: &Statement,
        answer: &VerdictAnswer,
    ) -> Option<Vec<(String, u64)>> {
        let query = match stmt {
            Statement::Query(q) => q.as_ref(),
            _ => return None,
        };
        let mut tables: Vec<String> = verdict_sql::visitor::collect_base_tables(query)
            .iter()
            .map(|n| n.key())
            .collect();
        for s in &answer.used_samples {
            let key = s.to_ascii_lowercase();
            if !tables.contains(&key) {
                tables.push(key);
            }
        }
        tables
            .into_iter()
            .map(|t| snapshot.get(&t).map(|v| (t, *v)))
            .collect()
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn column_names(&self, table: &str) -> VerdictResult<Vec<String>> {
        let result = self
            .conn
            .execute(&format!("SELECT * FROM {} LIMIT 1", self.quoted(table)))?;
        Ok(result
            .table
            .schema
            .fields
            .iter()
            .map(|f| f.name.clone())
            .filter(|n| !n.starts_with("verdict_"))
            .collect())
    }

    fn distinct_count(&self, table: &str, columns: &[String]) -> VerdictResult<u64> {
        if columns.is_empty() {
            return Ok(0);
        }
        let col_list = columns
            .iter()
            .map(|c| self.quoted(c))
            .collect::<Vec<_>>()
            .join(", ");
        let sql = format!(
            "SELECT count(*) AS c FROM (SELECT {col_list} FROM {} GROUP BY {col_list}) AS verdict_card",
            self.quoted(table)
        );
        let result = self.conn.execute(&sql)?;
        Ok(result.table.value(0, 0).as_i64().unwrap_or(0) as u64)
    }
}

/// The statement class used as the `class` label on latency histograms and
/// ring traces (one of [`crate::obs::CLASSES`]).  `EXPLAIN` wrappers classify
/// as `"explain"`; the cached-vs-computed split (`"query_cached"`) is applied
/// at trace-finish time, not here.
pub fn statement_class(stmt: &Statement) -> &'static str {
    match stmt {
        Statement::Query(_) => "query",
        Statement::Bypass(_) => "bypass",
        Statement::Stream(_) => "stream",
        Statement::Explain { .. } => "explain",
        Statement::SetOption { .. } => "set",
        Statement::ShowScrambles
        | Statement::ShowStats
        | Statement::ShowProfile { .. }
        | Statement::ShowMetrics => "show",
        Statement::CreateTableAs { .. }
        | Statement::DropTable { .. }
        | Statement::InsertIntoSelect { .. }
        | Statement::CreateScramble { .. }
        | Statement::CreateScrambles { .. }
        | Statement::DropScramble { .. }
        | Statement::DropScrambles { .. }
        | Statement::RefreshScrambles { .. } => "ddl",
    }
}

/// Builds the two-column `(item, value)` table returned by `EXPLAIN`.
fn explain_table(rows: Vec<(String, String)>) -> VerdictResult<Table> {
    TableBuilder::new()
        .str_column("item", rows.iter().map(|(k, _)| k.clone()).collect())
        .str_column("value", rows.into_iter().map(|(_, v)| v).collect())
        .build()
        .map_err(|e| VerdictError::Answer(format!("EXPLAIN table construction failed: {e}")))
}

/// The AQP feasibility test over a computed mean-query result: grouped
/// queries whose subsample cells average fewer than
/// [`VerdictConfig::min_rows_per_group`] rows produce useless estimates, so
/// the caller should answer exactly instead (the paper's behaviour for tq-3,
/// tq-8, tq-15).  Shared by the one-shot path and the progressive stream's
/// final frame, so both fall back under exactly the same condition.
pub(crate) fn mean_result_feasible(
    analysis: &crate::rewrite::QueryAnalysis,
    table: &Table,
    config: &VerdictConfig,
) -> bool {
    if analysis.group_by.is_empty() {
        return true;
    }
    let Some(idx) = table.schema.index_of(crate::rewrite::columns::SUB_SIZE) else {
        return true;
    };
    let total: f64 = table.columns[idx].iter().filter_map(|v| v.as_f64()).sum();
    // Distinct output groups = distinct combinations of the verdict_g*
    // columns in the per-(group, sid) result.
    let group_idxs: Vec<usize> = (0..analysis.group_by.len())
        .filter_map(|i| {
            table
                .schema
                .index_of(&format!("{}{i}", crate::rewrite::columns::GROUP_PREFIX))
        })
        .collect();
    let mut groups = std::collections::HashSet::new();
    for row in 0..table.num_rows() {
        let key: Vec<verdict_engine::KeyValue> = group_idxs
            .iter()
            .map(|&c| verdict_engine::KeyValue::from_value(&table.value_at(row, c)))
            .collect();
        groups.insert(key);
    }
    let rows_per_group = total / groups.len().max(1) as f64;
    rows_per_group >= config.min_rows_per_group
}
