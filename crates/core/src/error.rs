//! Error types for the VerdictDB middleware.

use std::fmt;
use verdict_engine::EngineError;

/// Errors surfaced by the VerdictDB middleware layer.
#[derive(Debug, Clone, PartialEq)]
pub enum VerdictError {
    /// The incoming SQL could not be parsed.
    Parse(String),
    /// The query is outside the supported class (Table 1 of the paper); the
    /// caller should fall back to running it directly on the base tables.
    Unsupported(String),
    /// No sample exists for the referenced table and automatic fallback was disabled.
    NoSampleAvailable(String),
    /// The underlying database reported an error while executing a statement.
    Engine(String),
    /// Metadata is missing or inconsistent (e.g. a registered sample table was dropped).
    Metadata(String),
    /// The answer-rewriting stage could not interpret the raw result.
    Answer(String),
}

impl fmt::Display for VerdictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerdictError::Parse(m) => write!(f, "parse error: {m}"),
            VerdictError::Unsupported(m) => write!(f, "unsupported query: {m}"),
            VerdictError::NoSampleAvailable(m) => write!(f, "no sample available: {m}"),
            VerdictError::Engine(m) => write!(f, "underlying database error: {m}"),
            VerdictError::Metadata(m) => write!(f, "metadata error: {m}"),
            VerdictError::Answer(m) => write!(f, "answer rewriting error: {m}"),
        }
    }
}

impl std::error::Error for VerdictError {}

impl From<EngineError> for VerdictError {
    fn from(e: EngineError) -> Self {
        match e {
            EngineError::Parse(m) => VerdictError::Parse(m),
            EngineError::Unsupported(m) => VerdictError::Unsupported(m),
            other => VerdictError::Engine(other.to_string()),
        }
    }
}

impl From<verdict_sql::ParseError> for VerdictError {
    fn from(e: verdict_sql::ParseError) -> Self {
        VerdictError::Parse(e.to_string())
    }
}

/// Result alias for middleware operations.
pub type VerdictResult<T> = Result<T, VerdictError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_errors_map_to_verdict_errors() {
        let e: VerdictError = EngineError::TableNotFound("t".into()).into();
        assert!(matches!(e, VerdictError::Engine(_)));
        let e: VerdictError = EngineError::Unsupported("x".into()).into();
        assert!(matches!(e, VerdictError::Unsupported(_)));
    }
}
