//! Error-estimation techniques: variational subsampling and the baselines it
//! is compared against in the paper's evaluation (bootstrap, traditional
//! subsampling, closed-form CLT).
//!
//! Two layers are provided:
//!
//! * **array-based estimators** operating on an in-memory sample of values —
//!   these power the statistical-accuracy experiments (Figures 8, 12, 13, 14)
//!   and the property tests on estimator correctness;
//! * **SQL generators** ([`sql_baselines`]) that express traditional
//!   subsampling and consolidated bootstrap as middleware-issued SQL, used by
//!   the Figure 7 runtime-overhead comparison (their cost is `O(b·n)` versus
//!   `O(n)` for variational subsampling).

use crate::stats::{normal_critical_value, quantile, stddev};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A confidence interval around a point estimate of a population mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// The point estimate.
    pub estimate: f64,
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level the interval was computed at (e.g. 0.95).
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Half of the interval width.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Relative half-width with respect to the point estimate.
    ///
    /// A degenerate point estimate (near zero, NaN, or infinite) cannot
    /// anchor a relative error; reporting 0.0 there would claim *perfect*
    /// accuracy exactly when the estimate is most suspect, so the relative
    /// error is `f64::INFINITY` instead — except for an estimate of 0 with a
    /// zero-width interval, which is an exact zero, not a degenerate one.
    /// Callers that average relative errors must skip non-finite entries.
    pub fn relative_error(&self) -> f64 {
        if !self.estimate.is_finite() || self.estimate.abs() < f64::EPSILON {
            if self.estimate == 0.0 && self.half_width().abs() < f64::EPSILON {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.half_width() / self.estimate.abs()
        }
    }

    /// True when the interval contains `value`.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The honest interval for a sample too small to estimate spread from
/// (`n < 2`): the point estimate (NaN when the sample is empty) with
/// unbounded error, instead of the silently zero-width interval that
/// `stddev`'s 0.0 / `quantile`'s NaN fallbacks used to produce.
fn degenerate_interval(sample: &[f64], confidence: f64) -> ConfidenceInterval {
    ConfidenceInterval {
        estimate: mean(sample),
        lower: f64::NEG_INFINITY,
        upper: f64::INFINITY,
        confidence,
    }
}

/// Closed-form central-limit-theorem interval for the mean.
pub fn clt_interval(sample: &[f64], confidence: f64) -> ConfidenceInterval {
    if sample.len() < 2 {
        return degenerate_interval(sample, confidence);
    }
    let m = mean(sample);
    let z = normal_critical_value(confidence);
    let half = z * stddev(sample) / (sample.len() as f64).sqrt();
    ConfidenceInterval {
        estimate: m,
        lower: m - half,
        upper: m + half,
        confidence,
    }
}

/// Classical bootstrap: `b` resamples of size `n` drawn with replacement.
/// Cost is O(b·n), which is exactly why the paper avoids it at a middleware.
pub fn bootstrap_interval(
    sample: &[f64],
    b: usize,
    confidence: f64,
    seed: u64,
) -> ConfidenceInterval {
    let n = sample.len();
    if n < 2 {
        return degenerate_interval(sample, confidence);
    }
    let g0 = mean(sample);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deltas = Vec::with_capacity(b);
    for _ in 0..b {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += sample[rng.gen_range(0..n)];
        }
        deltas.push(sum / n as f64 - g0);
    }
    let alpha = 1.0 - confidence;
    ConfidenceInterval {
        estimate: g0,
        lower: g0 - quantile(&deltas, 1.0 - alpha / 2.0),
        upper: g0 - quantile(&deltas, alpha / 2.0),
        confidence,
    }
}

/// Traditional subsampling: `b` subsamples of size `ns` drawn *without*
/// replacement; the empirical quantiles are rescaled by `sqrt(ns/n)`.
/// Constructing the subsamples costs O(b·ns) (and O(b·n) when done in SQL).
pub fn traditional_subsampling_interval(
    sample: &[f64],
    b: usize,
    ns: usize,
    confidence: f64,
    seed: u64,
) -> ConfidenceInterval {
    let n = sample.len();
    if n < 2 {
        return degenerate_interval(sample, confidence);
    }
    let ns = ns.min(n).max(1);
    let g0 = mean(sample);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut deltas = Vec::with_capacity(b);
    let mut indices: Vec<usize> = (0..n).collect();
    for _ in 0..b {
        // partial Fisher–Yates: the first ns entries form the subsample
        for i in 0..ns {
            let j = rng.gen_range(i..n);
            indices.swap(i, j);
        }
        let sub_mean = indices[..ns].iter().map(|&i| sample[i]).sum::<f64>() / ns as f64;
        deltas.push(sub_mean - g0);
    }
    let alpha = 1.0 - confidence;
    let scale = (ns as f64 / n as f64).sqrt();
    ConfidenceInterval {
        estimate: g0,
        lower: g0 - quantile(&deltas, 1.0 - alpha / 2.0) * scale,
        upper: g0 - quantile(&deltas, alpha / 2.0) * scale,
        confidence,
    }
}

/// Variational subsampling (§4.2): every element is assigned to exactly one of
/// `b = n/ns` subsamples; the empirical distribution of
/// `sqrt(ns_i)·(ĝ_i − ĝ_0)` (Equation 2) yields the interval after a `1/sqrt(n)`
/// rescaling.  Cost is a single O(n) pass.
pub fn variational_subsampling_interval(
    sample: &[f64],
    ns: usize,
    confidence: f64,
    seed: u64,
) -> ConfidenceInterval {
    let n = sample.len();
    if n < 2 {
        return degenerate_interval(sample, confidence);
    }
    let ns = ns.clamp(1, n.max(1));
    let b = (n / ns).max(1);
    let g0 = mean(sample);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut sums = vec![0.0f64; b];
    let mut counts = vec![0usize; b];
    for &v in sample {
        let sid = rng.gen_range(0..b);
        sums[sid] += v;
        counts[sid] += 1;
    }
    let mut deviations = Vec::with_capacity(b);
    for i in 0..b {
        if counts[i] == 0 {
            continue;
        }
        let gi = sums[i] / counts[i] as f64;
        deviations.push((counts[i] as f64).sqrt() * (gi - g0));
    }
    let alpha = 1.0 - confidence;
    let root_n = (n.max(1) as f64).sqrt();
    ConfidenceInterval {
        estimate: g0,
        lower: g0 - quantile(&deviations, 1.0 - alpha / 2.0) / root_n,
        upper: g0 - quantile(&deviations, alpha / 2.0) / root_n,
        confidence,
    }
}

/// The paper's default subsample-size policy: `ns = √n` (Appendix B.3 shows
/// this minimises the asymptotic error of variational subsampling).
pub fn default_subsample_size(n: usize) -> usize {
    (n as f64).sqrt().round().max(1.0) as usize
}

/// SQL formulations of the error-estimation baselines, used to measure the
/// middleware runtime overhead each technique would impose (Figure 7).
///
/// Each query has two entry points: a `*_sql` convenience that renders
/// generic SQL, and a `*_sql_for` variant taking the target backend's
/// [`Dialect`](verdict_sql::dialect::Dialect) so the nondeterministic draw is
/// spelled the way that backend expects (`rand()` vs `random()`).
pub mod sql_baselines {
    use verdict_sql::dialect::{Dialect, GenericDialect};

    /// Variational subsampling as a single O(n) SQL query (paper Query 4):
    /// assign each tuple one subsample id and aggregate per (group, sid).
    pub fn variational_subsampling_sql(
        sample_table: &str,
        value_expr: &str,
        group_col: Option<&str>,
        b: u64,
    ) -> String {
        variational_subsampling_sql_for(sample_table, value_expr, group_col, b, &GenericDialect)
    }

    /// [`variational_subsampling_sql`] rendered for an explicit dialect.
    pub fn variational_subsampling_sql_for(
        sample_table: &str,
        value_expr: &str,
        group_col: Option<&str>,
        b: u64,
        dialect: &dyn Dialect,
    ) -> String {
        let rand = dialect.random_function();
        let (group_sel, group_by) = match group_col {
            Some(g) => (format!("{g}, "), format!("{g}, verdict_sid")),
            None => (String::new(), "verdict_sid".to_string()),
        };
        format!(
            "SELECT {group_sel}sum({value_expr}) AS sub_sum, count(*) AS sub_size \
             FROM (SELECT *, CAST(1 + floor({rand} * {b}) AS BIGINT) AS verdict_sid \
                   FROM {sample_table}) AS verdict_vt \
             GROUP BY {group_by}"
        )
    }

    /// Traditional subsampling expressed in SQL (paper Query 1 style): `b`
    /// independent Bernoulli subsamples, each materialised as a separate
    /// conditional-aggregation column, so every input row is touched `b` times.
    pub fn traditional_subsampling_sql(
        sample_table: &str,
        value_expr: &str,
        group_col: Option<&str>,
        b: u64,
        subsample_fraction: f64,
    ) -> String {
        traditional_subsampling_sql_for(
            sample_table,
            value_expr,
            group_col,
            b,
            subsample_fraction,
            &GenericDialect,
        )
    }

    /// [`traditional_subsampling_sql`] rendered for an explicit dialect.
    pub fn traditional_subsampling_sql_for(
        sample_table: &str,
        value_expr: &str,
        group_col: Option<&str>,
        b: u64,
        subsample_fraction: f64,
        dialect: &dyn Dialect,
    ) -> String {
        let rand = dialect.random_function();
        let mut columns = Vec::with_capacity(b as usize * 2);
        for k in 0..b {
            columns.push(format!(
                "sum(CASE WHEN {rand} < {subsample_fraction} THEN ({value_expr}) ELSE 0 END) AS sub_sum_{k}"
            ));
            columns.push(format!(
                "sum(CASE WHEN {rand} < {subsample_fraction} THEN 1 ELSE 0 END) AS sub_cnt_{k}"
            ));
        }
        let (group_sel, group_by) = match group_col {
            Some(g) => (format!("{g}, "), format!(" GROUP BY {g}")),
            None => (String::new(), String::new()),
        };
        format!(
            "SELECT {group_sel}{} FROM {sample_table}{group_by}",
            columns.join(", ")
        )
    }

    /// Cumulative CDF thresholds of a Poisson(1) count truncated at 4:
    /// P(X ≤ k) for k = 0..3 (P(0)=P(1)=e⁻¹≈.3679, P(2)≈.1839, P(3)≈.0613).
    /// A CASE over **one** uniform draw compared against these cumulative
    /// values emulates one Poisson(1) multiplicity.
    pub const POISSON1_CDF: [f64; 4] = [0.3679, 0.7358, 0.9197, 0.9810];

    /// The per-replicate Poisson(1) multiplicity CASE expression over a
    /// single pre-drawn uniform column `u`.
    fn poisson1_case(u: &str) -> String {
        format!(
            "CASE WHEN {u} < {p0} THEN 0 WHEN {u} < {p1} THEN 1 \
             WHEN {u} < {p2} THEN 2 WHEN {u} < {p3} THEN 3 ELSE 4 END",
            p0 = POISSON1_CDF[0],
            p1 = POISSON1_CDF[1],
            p2 = POISSON1_CDF[2],
            p3 = POISSON1_CDF[3],
        )
    }

    /// Consolidated bootstrap expressed in SQL: `b` resamples approximated by
    /// per-row Poisson(1) multiplicities (the standard SQL emulation), again
    /// touching every row `b` times.
    ///
    /// Each replicate's multiplicity comes from a **single** `rand()` draw
    /// (materialised as a derived `verdict_u{k}` column) compared against the
    /// cumulative [`POISSON1_CDF`] thresholds.  The previous formulation
    /// re-drew `rand()` in every WHEN branch and mixed conditional with
    /// cumulative thresholds, so the emulated multiplicities were not
    /// Poisson(1) — their mean was ≈0.94 instead of 1, biasing every
    /// bootstrap total low.
    pub fn consolidated_bootstrap_sql(
        sample_table: &str,
        value_expr: &str,
        group_col: Option<&str>,
        b: u64,
    ) -> String {
        consolidated_bootstrap_sql_for(sample_table, value_expr, group_col, b, &GenericDialect)
    }

    /// [`consolidated_bootstrap_sql`] rendered for an explicit dialect.
    pub fn consolidated_bootstrap_sql_for(
        sample_table: &str,
        value_expr: &str,
        group_col: Option<&str>,
        b: u64,
        dialect: &dyn Dialect,
    ) -> String {
        let rand = dialect.random_function();
        let draws = (0..b)
            .map(|k| format!("{rand} AS verdict_u{k}"))
            .collect::<Vec<_>>()
            .join(", ");
        let columns = (0..b)
            .map(|k| {
                format!(
                    "sum(({value_expr}) * ({})) AS boot_sum_{k}",
                    poisson1_case(&format!("verdict_u{k}"))
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let (group_sel, group_by) = match group_col {
            Some(g) => (format!("{g}, "), format!(" GROUP BY {g}")),
            None => (String::new(), String::new()),
        };
        format!(
            "SELECT {group_sel}{columns} \
             FROM (SELECT *, {draws} FROM {sample_table}) AS verdict_boot{group_by}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::distributions::Distribution;

    fn synthetic_sample(n: usize, mean: f64, sd: f64, seed: u64) -> Vec<f64> {
        // Sum of 12 uniforms minus 6 approximates a standard normal (Irwin–Hall).
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = rand::distributions::Uniform::new(0.0f64, 1.0);
        (0..n)
            .map(|_| {
                let z: f64 = (0..12).map(|_| dist.sample(&mut rng)).sum::<f64>() - 6.0;
                mean + sd * z
            })
            .collect()
    }

    #[test]
    fn all_estimators_agree_on_large_samples() {
        let sample = synthetic_sample(20_000, 10.0, 10.0, 1);
        let clt = clt_interval(&sample, 0.95);
        let boot = bootstrap_interval(&sample, 100, 0.95, 2);
        let tsub = traditional_subsampling_interval(&sample, 100, 200, 0.95, 3);
        let vsub = variational_subsampling_interval(
            &sample,
            default_subsample_size(sample.len()),
            0.95,
            4,
        );
        for ci in [&clt, &boot, &tsub, &vsub] {
            assert!((ci.estimate - 10.0).abs() < 0.3, "estimate {}", ci.estimate);
            // all intervals should be in the same ballpark as the CLT interval
            assert!(ci.half_width() > 0.0);
            assert!(ci.half_width() < clt.half_width() * 3.0 + 1e-9);
            assert!(ci.half_width() > clt.half_width() / 3.0);
        }
    }

    #[test]
    fn coverage_of_variational_subsampling_is_close_to_nominal() {
        // Repeatedly sample and check how often the interval covers the true mean.
        let true_mean = 10.0;
        let mut covered = 0;
        let trials = 200;
        for t in 0..trials {
            let sample = synthetic_sample(4_000, true_mean, 10.0, 100 + t);
            let ci =
                variational_subsampling_interval(&sample, default_subsample_size(4_000), 0.95, t);
            if ci.contains(true_mean) {
                covered += 1;
            }
        }
        let coverage = covered as f64 / trials as f64;
        assert!(
            coverage > 0.85,
            "variational subsampling coverage {coverage} is far below nominal 0.95"
        );
    }

    #[test]
    fn interval_width_shrinks_with_sample_size() {
        let small = synthetic_sample(1_000, 10.0, 10.0, 5);
        let large = synthetic_sample(100_000, 10.0, 10.0, 6);
        let ci_small =
            variational_subsampling_interval(&small, default_subsample_size(1_000), 0.95, 7);
        let ci_large =
            variational_subsampling_interval(&large, default_subsample_size(100_000), 0.95, 8);
        assert!(ci_large.half_width() < ci_small.half_width());
    }

    #[test]
    fn default_subsample_size_is_sqrt_n() {
        assert_eq!(default_subsample_size(10_000), 100);
        assert_eq!(default_subsample_size(1_000_000), 1_000);
        assert_eq!(default_subsample_size(0), 1);
    }

    #[test]
    fn degenerate_samples_report_unbounded_error_not_perfection() {
        for sample in [Vec::new(), vec![42.0]] {
            let cis = [
                clt_interval(&sample, 0.95),
                bootstrap_interval(&sample, 50, 0.95, 1),
                traditional_subsampling_interval(&sample, 50, 10, 0.95, 2),
                variational_subsampling_interval(&sample, 5, 0.95, 3),
            ];
            for ci in cis {
                assert!(
                    ci.half_width().is_infinite(),
                    "{sample:?}: half width must be unbounded, got {ci:?}"
                );
                assert!(ci.relative_error().is_infinite());
                assert!(
                    ci.contains(123.456),
                    "an unbounded interval contains everything"
                );
                if sample.is_empty() {
                    assert!(ci.estimate.is_nan(), "no data → no point estimate");
                } else {
                    assert_eq!(ci.estimate, 42.0);
                }
            }
        }
    }

    #[test]
    fn relative_error_is_infinite_for_degenerate_estimates() {
        let ci = |estimate: f64| ConfidenceInterval {
            estimate,
            lower: estimate - 5.0,
            upper: estimate + 5.0,
            confidence: 0.95,
        };
        assert!(ci(0.0).relative_error().is_infinite());
        assert!(ci(f64::NAN).relative_error().is_infinite());
        assert!((ci(100.0).relative_error() - 0.05).abs() < 1e-12);
        // an exact zero (zero estimate, zero-width interval) is not degenerate
        let exact_zero = ConfidenceInterval {
            estimate: 0.0,
            lower: 0.0,
            upper: 0.0,
            confidence: 0.95,
        };
        assert_eq!(exact_zero.relative_error(), 0.0);
    }

    #[test]
    fn bootstrap_case_emulates_poisson1_multiplicities() {
        // Simulate the single-draw CASE the SQL emits: mean and variance of
        // the (truncated-at-4) Poisson(1) multiplicity are both ≈ 1.
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000usize;
        let (mut sum, mut sum2) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let u: f64 = rng.gen();
            let m = sql_baselines::POISSON1_CDF
                .iter()
                .position(|&t| u < t)
                .unwrap_or(4) as f64;
            sum += m;
            sum2 += m * m;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(
            (mean - 1.0).abs() < 0.02,
            "multiplicity mean {mean} is not ~1"
        );
        assert!(
            (var - 1.0).abs() < 0.08,
            "multiplicity variance {var} is not ~1"
        );
        // one rand() draw per replicate — not one per WHEN branch
        let sql = sql_baselines::consolidated_bootstrap_sql("t", "x", None, 5);
        assert_eq!(sql.matches("rand()").count(), 5);
        verdict_sql::parse_statement(&sql).unwrap();
    }

    #[test]
    fn sql_baselines_parse_and_scale_with_b() {
        let v =
            sql_baselines::variational_subsampling_sql("orders_sample", "price", Some("city"), 100);
        verdict_sql::parse_statement(&v).unwrap();
        let t = sql_baselines::traditional_subsampling_sql(
            "orders_sample",
            "price",
            Some("city"),
            10,
            0.01,
        );
        verdict_sql::parse_statement(&t).unwrap();
        let c = sql_baselines::consolidated_bootstrap_sql("orders_sample", "price", None, 10);
        verdict_sql::parse_statement(&c).unwrap();
        // the O(b·n) baselines blow up linearly in b, the variational one does not
        assert!(t.len() > v.len() * 3);
        assert!(c.len() > v.len() * 3);
    }
}
