//! Comparison-subquery flattening (§2.2 of the paper).
//!
//! A correlated comparison subquery such as
//!
//! ```sql
//! WHERE price > (SELECT avg(price) FROM order_products
//!                WHERE product = t1.product)
//! ```
//!
//! is rewritten into an equi-join against a derived aggregate table grouped
//! by the correlation column, which the AQP rewriter can then approximate
//! like any other join.  Uncorrelated scalar subqueries are left alone (the
//! underlying engine evaluates them directly).

use verdict_sql::ast::*;

/// Flattens every correlated comparison subquery in the WHERE clause that
/// matches the supported pattern; returns the transformed query (other
/// queries are returned unchanged).
pub fn flatten_comparison_subqueries(mut query: Query) -> Query {
    let Some(selection) = query.selection.take() else {
        return query;
    };
    let mut conjuncts = split_and(selection);
    let mut extra_joins: Vec<Join> = Vec::new();
    let mut counter = 0usize;

    for conj in conjuncts.iter_mut() {
        if let Expr::BinaryOp { left, op, right } = conj {
            if !op.is_comparison() {
                continue;
            }
            if let Expr::ScalarSubquery(sub) = right.as_mut() {
                if let Some(flat) = try_flatten(sub, counter) {
                    extra_joins.push(flat.join);
                    *conj = Expr::BinaryOp {
                        left: left.clone(),
                        op: *op,
                        right: Box::new(flat.replacement),
                    };
                    counter += 1;
                }
            }
        }
    }

    if let Some(first) = query.from.first_mut() {
        first.joins.extend(extra_joins);
    }
    query.selection = conjuncts
        .into_iter()
        .reduce(|a, b| Expr::binary(a, BinaryOp::And, b));
    query
}

struct Flattened {
    join: Join,
    replacement: Expr,
}

/// Attempts to flatten one correlated scalar subquery of the form
/// `SELECT agg(x) FROM inner_table WHERE corr_col = outer_ref [AND other…]`.
fn try_flatten(sub: &Query, counter: usize) -> Option<Flattened> {
    // Single aggregate projection.
    if sub.projection.len() != 1 || !sub.group_by.is_empty() {
        return None;
    }
    let agg_expr = sub.projection[0].expr()?.clone();
    agg_expr.as_aggregate()?;

    // Single base table.
    if sub.from.len() != 1 || !sub.from[0].joins.is_empty() {
        return None;
    }
    let (inner_name, inner_alias) = match &sub.from[0].relation {
        TableFactor::Table { name, alias } => (name.clone(), alias.clone()),
        _ => return None,
    };
    let inner_binding = inner_alias.unwrap_or_else(|| inner_name.base_name().to_string());

    // Find exactly one correlated equality `inner_col = outer_ref`.
    let selection = sub.selection.clone()?;
    let conjuncts = split_and(selection);
    let mut corr: Option<(String, Expr)> = None;
    let mut residual: Vec<Expr> = Vec::new();
    for c in conjuncts {
        if corr.is_none() {
            if let Expr::BinaryOp {
                left,
                op: BinaryOp::Eq,
                right,
            } = &c
            {
                let classify = |e: &Expr| -> Option<(bool, String, Expr)> {
                    if let Expr::Column { table, name } = e {
                        let is_inner = match table {
                            None => true,
                            Some(t) => t.eq_ignore_ascii_case(&inner_binding),
                        };
                        Some((is_inner, name.clone(), e.clone()))
                    } else {
                        None
                    }
                };
                if let (Some((li, ln, _)), Some((ri, _, re))) = (classify(left), classify(right)) {
                    if li && !ri {
                        corr = Some((ln, re));
                        continue;
                    }
                }
                if let (Some((li, _, le)), Some((ri, rn, _))) = (classify(left), classify(right)) {
                    if ri && !li {
                        corr = Some((rn, le));
                        continue;
                    }
                }
            }
        }
        residual.push(c);
    }
    let (corr_col, outer_ref) = corr?;

    // Build the derived aggregate table grouped by the correlation column.
    let flat_alias = format!("verdict_flat_{counter}");
    let value_alias = format!("verdict_flat_val_{counter}");
    let derived = Query {
        distinct: false,
        projection: vec![
            SelectItem::Expr(Expr::col(corr_col.clone())),
            SelectItem::ExprWithAlias {
                expr: agg_expr,
                alias: value_alias.clone(),
            },
        ],
        from: vec![TableWithJoins {
            relation: TableFactor::Table {
                name: inner_name,
                alias: None,
            },
            joins: Vec::new(),
        }],
        selection: residual
            .into_iter()
            .reduce(|a, b| Expr::binary(a, BinaryOp::And, b)),
        group_by: vec![Expr::col(corr_col.clone())],
        having: None,
        order_by: Vec::new(),
        limit: None,
    };

    let join = Join {
        relation: TableFactor::Derived {
            subquery: Box::new(derived),
            alias: Some(flat_alias.clone()),
        },
        join_type: JoinType::Inner,
        constraint: Some(Expr::binary(
            Expr::qcol(flat_alias.clone(), corr_col),
            BinaryOp::Eq,
            outer_ref,
        )),
    };
    Some(Flattened {
        join,
        replacement: Expr::qcol(flat_alias, value_alias),
    })
}

fn split_and(expr: Expr) -> Vec<Expr> {
    match expr {
        Expr::BinaryOp {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = split_and(*left);
            out.extend(split_and(*right));
            out
        }
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_sql::printer::print_query;
    use verdict_sql::{parse_statement, GenericDialect};

    fn query(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => *q,
            _ => panic!(),
        }
    }

    #[test]
    fn flattens_the_papers_example() {
        let q = query(
            "SELECT count(*) FROM orders t1 INNER JOIN order_products t2 ON t1.order_id = t2.order_id \
             WHERE t2.price > (SELECT avg(price) FROM order_products WHERE product = t1.product)",
        );
        let flat = flatten_comparison_subqueries(q);
        let sql = print_query(&flat, &GenericDialect);
        assert!(sql.contains("GROUP BY product"), "{sql}");
        assert!(sql.contains("verdict_flat_0"), "{sql}");
        assert!(
            sql.contains("t2.price > verdict_flat_0.verdict_flat_val_0"),
            "{sql}"
        );
        assert!(!sql.to_lowercase().contains("where product ="), "{sql}");
        // the flattened query must re-parse
        verdict_sql::parse_statement(&sql).unwrap();
    }

    #[test]
    fn uncorrelated_subqueries_are_left_untouched() {
        let q = query("SELECT count(*) FROM orders WHERE price > (SELECT avg(price) FROM orders)");
        let flat = flatten_comparison_subqueries(q.clone());
        assert_eq!(flat, q);
    }

    #[test]
    fn queries_without_where_are_untouched() {
        let q = query("SELECT count(*) FROM orders");
        assert_eq!(flatten_comparison_subqueries(q.clone()), q);
    }
}
