//! A tightly-integrated AQP baseline (the SnappyData stand-in of §6.3).
//!
//! Figure 6 of the paper compares VerdictDB — a middleware that can only
//! issue SQL — against SnappyData, an AQP engine fused into Spark SQL.  Since
//! SnappyData is not available here, this module provides a baseline with the
//! same two distinguishing properties:
//!
//! 1. it bypasses the SQL round-trip: it substitutes sample tables directly
//!    into the query plan and scales the aggregates itself, with essentially
//!    no rewriting overhead; and
//! 2. it **cannot join two samples** — when a query joins two sampled
//!    relations it keeps the second relation at full size (the behaviour the
//!    paper observed for tq-5, tq-7, tq-12, iq-14, iq-15, which is exactly
//!    where VerdictDB wins).

use crate::error::{VerdictError, VerdictResult};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use verdict_engine::{Backend, Table};
use verdict_sql::ast::{Expr, ObjectName, Statement, TableFactor};
use verdict_sql::printer::print_statement;
use verdict_sql::visitor::{transform_expr, transform_query_tables};

/// A registered sample available to the integrated engine.
#[derive(Debug, Clone)]
pub struct IntegratedSample {
    /// The sampled base table.
    pub base_table: String,
    /// The materialised sample table.
    pub sample_table: String,
    /// Sampling ratio τ the sample was built with.
    pub ratio: f64,
}

/// Result of one integrated-AQP execution.
#[derive(Debug, Clone)]
pub struct IntegratedAnswer {
    /// The (scaled) result rows.
    pub table: Table,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Rows scanned by the underlying execution.
    pub rows_scanned: u64,
    /// Number of relations that were answered from a sample (at most one).
    pub sampled_relations: usize,
    /// The SQL actually executed after sample substitution and 1/τ scaling.
    pub rewritten_sql: String,
}

/// The tightly-integrated AQP baseline.
pub struct IntegratedAqp {
    conn: Arc<dyn Backend>,
    samples: HashMap<String, IntegratedSample>,
}

impl IntegratedAqp {
    /// Creates the baseline over the same underlying engine VerdictDB uses.
    pub fn new(conn: Arc<dyn Backend>) -> IntegratedAqp {
        IntegratedAqp {
            conn,
            samples: HashMap::new(),
        }
    }

    /// Registers a (stratified or uniform) sample the integrated engine may use.
    pub fn register_sample(&mut self, sample: IntegratedSample) {
        self.samples
            .insert(sample.base_table.to_ascii_lowercase(), sample);
    }

    /// Executes a query, answering from at most one sample (the first sampled
    /// relation encountered), scaling count/sum aggregates by 1/τ.
    pub fn execute(&self, sql: &str) -> VerdictResult<IntegratedAnswer> {
        let start = Instant::now();
        let stmt = verdict_sql::parse_statement(sql)?;
        let Statement::Query(mut query) = stmt else {
            return Err(VerdictError::Unsupported(
                "only SELECT queries are supported".into(),
            ));
        };

        // Substitute the first sampled relation only.
        let mut used: Option<IntegratedSample> = None;
        transform_query_tables(&mut query, &mut |name, alias| {
            if used.is_some() {
                return None;
            }
            let sample = self.samples.get(&name.key())?;
            used = Some(sample.clone());
            Some(TableFactor::Table {
                name: ObjectName::bare(sample.sample_table.clone()),
                alias: Some(
                    alias
                        .map(|a| a.to_string())
                        .unwrap_or_else(|| name.base_name().to_string()),
                ),
            })
        });

        // Scale count(*)/count(x)/sum(x) aggregates by 1/τ; avg and friends
        // are scale-free.  HAVING and ORDER BY must be scaled too: a
        // `HAVING count(*) > N` or `ORDER BY sum(x)` evaluated on raw
        // sample-scale values filters/sorts against population-scale
        // thresholds and returns the wrong groups.
        if let Some(sample) = &used {
            let scale = 1.0 / sample.ratio.max(f64::MIN_POSITIVE);
            query.projection = query
                .projection
                .into_iter()
                .map(|item| match item {
                    verdict_sql::ast::SelectItem::Expr(e) => {
                        verdict_sql::ast::SelectItem::Expr(scale_aggregates(e, scale))
                    }
                    verdict_sql::ast::SelectItem::ExprWithAlias { expr, alias } => {
                        verdict_sql::ast::SelectItem::ExprWithAlias {
                            expr: scale_aggregates(expr, scale),
                            alias,
                        }
                    }
                    other => other,
                })
                .collect();
            query.having = query.having.take().map(|h| scale_aggregates(h, scale));
            query.order_by = query
                .order_by
                .into_iter()
                .map(|o| verdict_sql::ast::OrderByItem {
                    expr: scale_aggregates(o.expr, scale),
                    asc: o.asc,
                })
                .collect();
        }

        let rewritten = print_statement(&Statement::Query(query), &verdict_sql::GenericDialect);
        let result = self.conn.execute(&rewritten)?;
        Ok(IntegratedAnswer {
            table: result.table,
            elapsed: start.elapsed(),
            rows_scanned: result.stats.rows_scanned,
            sampled_relations: usize::from(used.is_some()),
            rewritten_sql: rewritten,
        })
    }
}

fn scale_aggregates(expr: Expr, scale: f64) -> Expr {
    transform_expr(expr, &mut |e| match &e {
        Expr::Function(f)
            if f.over.is_none() && !f.distinct && (f.name == "count" || f.name == "sum") =>
        {
            Expr::binary(
                Expr::Nested(Box::new(e.clone())),
                verdict_sql::ast::BinaryOp::Multiply,
                Expr::float(scale),
            )
        }
        _ => e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_engine::{Engine, TableBuilder};

    fn setup() -> (Arc<dyn Backend>, IntegratedAqp) {
        let engine = Engine::with_seed(5);
        let n = 100_000usize;
        let table = TableBuilder::new()
            .int_column("id", (0..n as i64).collect())
            .float_column("price", (0..n).map(|i| (i % 100) as f64).collect())
            .str_column("city", (0..n).map(|i| format!("c{}", i % 5)).collect())
            .build()
            .unwrap();
        engine.register_table("orders", table);
        engine
            .execute_sql("CREATE TABLE orders_sample AS SELECT * FROM orders WHERE rand() < 0.05")
            .unwrap();
        let conn: Arc<dyn Backend> = Arc::new(engine);
        let mut aqp = IntegratedAqp::new(Arc::clone(&conn));
        aqp.register_sample(IntegratedSample {
            base_table: "orders".into(),
            sample_table: "orders_sample".into(),
            ratio: 0.05,
        });
        (conn, aqp)
    }

    #[test]
    fn scales_counts_to_population_size() {
        let (_, aqp) = setup();
        let answer = aqp.execute("SELECT count(*) AS cnt FROM orders").unwrap();
        let cnt = answer.table.value(0, 0).as_f64().unwrap();
        assert!((cnt - 100_000.0).abs() / 100_000.0 < 0.1, "estimate {cnt}");
        assert_eq!(answer.sampled_relations, 1);
        // it scanned the sample, not the base table
        assert!(answer.rows_scanned < 20_000);
    }

    #[test]
    fn avg_is_not_scaled() {
        let (_, aqp) = setup();
        let answer = aqp.execute("SELECT avg(price) AS ap FROM orders").unwrap();
        let ap = answer.table.value(0, 0).as_f64().unwrap();
        assert!((ap - 49.5).abs() < 3.0, "estimate {ap}");
    }

    #[test]
    fn having_filters_on_population_scale_counts() {
        let (_, aqp) = setup();
        // Every city has 20 000 rows at population scale but only ~1 000 in
        // the 5% sample; without HAVING scaling the predicate would drop all
        // five groups.
        let answer = aqp
            .execute(
                "SELECT city, count(*) AS cnt FROM orders \
                 GROUP BY city HAVING count(*) > 10000",
            )
            .unwrap();
        assert_eq!(
            answer.table.num_rows(),
            5,
            "all five cities exceed 10k rows at population scale"
        );
        for r in 0..answer.table.num_rows() {
            let cnt = answer.table.value(r, 1).as_f64().unwrap();
            assert!(
                (cnt - 20_000.0).abs() / 20_000.0 < 0.25,
                "group count {cnt}"
            );
        }
    }

    #[test]
    fn order_by_aggregates_are_scaled_too() {
        let (_, aqp) = setup();
        let answer = aqp
            .execute(
                "SELECT city FROM orders GROUP BY city \
                 HAVING sum(price) > 100 ORDER BY sum(price) DESC",
            )
            .unwrap();
        assert_eq!(answer.table.num_rows(), 5);
        // the executed SQL must carry the 1/τ factor into HAVING and ORDER BY,
        // not just the projection
        let after_having = answer
            .rewritten_sql
            .split("HAVING")
            .nth(1)
            .expect("rewritten SQL keeps the HAVING clause");
        assert_eq!(
            after_having.matches("* 20").count(),
            2,
            "HAVING and ORDER BY aggregates must each be scaled by 1/τ = 20: {}",
            answer.rewritten_sql
        );
    }

    #[test]
    fn unsampled_tables_run_exactly() {
        let (_, aqp) = setup();
        let answer = aqp
            .execute("SELECT count(*) AS c FROM orders_sample")
            .unwrap();
        assert_eq!(answer.sampled_relations, 0);
        assert!(answer.table.value(0, 0).as_i64().unwrap() > 0);
    }
}
