//! # verdict-core
//!
//! The VerdictDB middleware: a Rust reproduction of *"VerdictDB:
//! Universalizing Approximate Query Processing"* (SIGMOD 2018).
//!
//! VerdictDB is a **driver-level, platform-agnostic AQP engine**: it sits
//! between the user and an off-the-shelf SQL database, intercepts analytical
//! queries, and rewrites them into standard SQL that computes an unbiased
//! approximate answer together with probabilistic error bounds — all without
//! touching the database's internals.
//!
//! The crate is organised around the paper's components:
//!
//! | Paper component | Module |
//! |---|---|
//! | Sample preparation (§3), probabilistic stratified samples (§3.2, Lemma 1) | [`sample`], [`stats`] |
//! | Sample planning under an I/O budget (Appendix E) | [`planner`] |
//! | AQP rewriting with variational subsampling, joins, nested queries (§4, §5) | [`rewrite`], [`flatten`] |
//! | Answer rewriting: estimates + confidence intervals | [`answer`] |
//! | Error-estimation baselines (bootstrap, subsampling, CLT) | [`estimate`] |
//! | Tightly-integrated AQP baseline (SnappyData stand-in, §6.3) | [`integrated`] |
//! | User interface / knobs (§2.4) | [`config`], [`context`] |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use verdict_core::{VerdictConfig, VerdictContext};
//! use verdict_core::sample::SampleType;
//! use verdict_engine::{Backend, Engine, TableBuilder};
//!
//! // The "underlying database": here the in-memory engine, but anything that
//! // speaks SQL through the Backend trait works (see [`backend`] and the
//! // server crate's remote wire-protocol backend).
//! let engine = Engine::with_seed(7);
//! let rows = 50_000usize;
//! let table = TableBuilder::new()
//!     .int_column("id", (0..rows as i64).collect())
//!     .float_column("price", (0..rows).map(|i| (i % 100) as f64).collect())
//!     .str_column("city", (0..rows).map(|i| format!("city_{}", i % 10)).collect())
//!     .build()
//!     .unwrap();
//! engine.register_table("orders", table);
//!
//! let conn: Arc<dyn Backend> = Arc::new(engine);
//! let ctx = VerdictContext::new(conn, VerdictConfig::for_testing());
//!
//! // Offline: build a 1% uniform sample.
//! ctx.create_sample("orders", SampleType::Uniform).unwrap();
//!
//! // Online: the query is answered from the sample, with error estimates.
//! let answer = ctx.execute("SELECT city, avg(price) AS ap FROM orders GROUP BY city ORDER BY city").unwrap();
//! assert!(!answer.exact);
//! assert_eq!(answer.table.num_rows(), 10);
//! ```

#![warn(missing_docs)]

pub mod answer;
pub mod backend;
pub mod cache;
pub mod config;
pub mod context;
pub mod error;
pub mod estimate;
pub mod flatten;
pub mod integrated;
pub mod meta;
pub mod obs;
pub mod planner;
pub mod progress;
pub mod rewrite;
pub mod sample;
pub mod session;
pub mod shed;
pub mod stats;

pub use answer::{AggEstimate, ColumnErrorSummary};
pub use backend::{BackendStats, DialectBackend};
pub use cache::{AnswerCache, CacheStats};
pub use config::VerdictConfig;
pub use context::{statement_class, StreamStats, VerdictAnswer, VerdictContext};
pub use error::{VerdictError, VerdictResult};
pub use obs::{Histogram, Obs, QueryTrace, SpanRecord, TraceBuilder, TraceRing};
pub use progress::{ProgressFrame, ProgressStream};
pub use sample::{SampleMeta, SampleType};
pub use session::{QueryOptions, VerdictResponse, VerdictSession};
pub use shed::{Admission, AdmissionController, AdmissionStats, ShedPolicy, ShedTier};
