//! Sample metadata management.
//!
//! The paper stores sample metadata (names, types, sampling ratios) in a
//! dedicated schema inside the underlying database's catalog (§2.3).
//! [`MetaStore`] keeps an in-memory registry used by the sample planner and
//! can persist / reload the same records through plain SQL against the
//! underlying database, so a fresh VerdictDB instance can rediscover the
//! samples an earlier instance created.

use crate::error::{VerdictError, VerdictResult};
use crate::sample::{SampleMeta, SampleType};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use verdict_engine::{Backend, Value};

/// Name of the metadata table VerdictDB maintains in the underlying database.
pub const META_TABLE: &str = "verdict_meta_samples";

/// In-memory + database-backed registry of sample metadata.
#[derive(Default)]
pub struct MetaStore {
    samples: RwLock<HashMap<String, Vec<SampleMeta>>>,
}

impl MetaStore {
    /// Creates an empty registry.
    pub fn new() -> MetaStore {
        MetaStore::default()
    }

    /// Registers a newly-created sample.
    pub fn register(&self, meta: SampleMeta) {
        self.samples
            .write()
            .entry(meta.base_table.to_ascii_lowercase())
            .or_default()
            .push(meta);
    }

    /// All samples registered for a base table.
    pub fn samples_for(&self, base_table: &str) -> Vec<SampleMeta> {
        self.samples
            .read()
            .get(&base_table.to_ascii_lowercase())
            .cloned()
            .unwrap_or_default()
    }

    /// All registered samples.
    pub fn all(&self) -> Vec<SampleMeta> {
        self.samples.read().values().flatten().cloned().collect()
    }

    /// Removes every sample registered for a base table, returning the removed metadata.
    pub fn remove_for(&self, base_table: &str) -> Vec<SampleMeta> {
        self.samples
            .write()
            .remove(&base_table.to_ascii_lowercase())
            .unwrap_or_default()
    }

    /// Removes the sample registered under the given sample-table name
    /// (case-insensitive), returning its metadata if one existed.
    pub fn remove_sample(&self, sample_table: &str) -> Option<SampleMeta> {
        let wanted = sample_table.to_ascii_lowercase();
        let mut map = self.samples.write();
        let hit = map.iter().find_map(|(base, list)| {
            list.iter()
                .position(|m| m.sample_table.eq_ignore_ascii_case(&wanted))
                .map(|pos| (base.clone(), pos))
        })?;
        let (base, pos) = hit;
        let list = map.get_mut(&base)?;
        let meta = list.remove(pos);
        if list.is_empty() {
            map.remove(&base);
        }
        Some(meta)
    }

    /// Total number of registered samples.
    pub fn len(&self) -> usize {
        self.samples.read().values().map(|v| v.len()).sum()
    }

    /// True when no samples are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persists the registry into the underlying database (replacing any
    /// previous copy), using only standard SQL.
    pub fn persist(&self, conn: &Arc<dyn Backend>) -> VerdictResult<()> {
        conn.execute(&format!("DROP TABLE IF EXISTS {META_TABLE}"))?;
        let rows = self.all();
        // Build a UNION-free insert: one SELECT per row appended after CREATE.
        let mut iter = rows.iter();
        let first = match iter.next() {
            Some(f) => f,
            None => return Ok(()),
        };
        conn.execute(&format!(
            "CREATE TABLE {META_TABLE} AS {}",
            row_select(first)
        ))?;
        for meta in iter {
            conn.execute(&format!("INSERT INTO {META_TABLE} {}", row_select(meta)))?;
        }
        Ok(())
    }

    /// Reloads the registry from the underlying database (if the metadata
    /// table exists), replacing the in-memory contents.
    pub fn reload(&self, conn: &Arc<dyn Backend>) -> VerdictResult<usize> {
        if !conn.table_exists(META_TABLE) {
            return Ok(0);
        }
        let result = conn.execute(&format!("SELECT * FROM {META_TABLE}"))?;
        let table = result.table;
        let col = |name: &str| -> VerdictResult<usize> {
            table.schema.index_of(name).ok_or_else(|| {
                VerdictError::Metadata(format!("missing column {name} in {META_TABLE}"))
            })
        };
        let (bi, si, ti, ci, ri, sri, bri) = (
            col("base_table")?,
            col("sample_table")?,
            col("sample_type")?,
            col("type_columns")?,
            col("ratio")?,
            col("sample_rows")?,
            col("base_rows")?,
        );
        // Optional for metadata tables written before the column existed;
        // such records load as 0.
        let ari = table.schema.index_of("appended_rows");
        let mut loaded = 0usize;
        let mut fresh: HashMap<String, Vec<SampleMeta>> = HashMap::new();
        for row in 0..table.num_rows() {
            let text = |idx: usize| -> String {
                match table.value(row, idx) {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                }
            };
            let columns: Vec<String> = {
                let raw = text(ci);
                if raw.is_empty() {
                    Vec::new()
                } else {
                    raw.split(',').map(|s| s.to_string()).collect()
                }
            };
            let sample_type = match text(ti).as_str() {
                "uniform" => SampleType::Uniform,
                "hashed" => SampleType::Hashed { columns },
                "stratified" => SampleType::Stratified { columns },
                other => {
                    return Err(VerdictError::Metadata(format!(
                        "unknown sample type {other}"
                    )));
                }
            };
            let meta = SampleMeta {
                base_table: text(bi),
                sample_table: text(si),
                sample_type,
                ratio: table.value(row, ri).as_f64().unwrap_or(0.0),
                sample_rows: table.value(row, sri).as_i64().unwrap_or(0) as u64,
                base_rows: table.value(row, bri).as_i64().unwrap_or(0) as u64,
                appended_rows: ari
                    .map(|i| table.value(row, i).as_i64().unwrap_or(0) as u64)
                    .unwrap_or(0),
            };
            fresh
                .entry(meta.base_table.to_ascii_lowercase())
                .or_default()
                .push(meta);
            loaded += 1;
        }
        *self.samples.write() = fresh;
        Ok(loaded)
    }
}

/// Serializes sample metadata into the line-oriented format used for the
/// store's `verdict_meta` blob: one tab-separated record per line, with the
/// ratio carried as raw IEEE-754 bits so a reload is bit-exact.
pub fn encode_samples(samples: &[SampleMeta]) -> Vec<u8> {
    let mut out = String::from("verdict-meta-v1\n");
    for m in samples {
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
            m.base_table,
            m.sample_table,
            m.sample_type.tag(),
            m.sample_type.columns().join(","),
            m.ratio.to_bits(),
            m.sample_rows,
            m.base_rows,
            m.appended_rows
        ));
    }
    out.into_bytes()
}

/// Parses a blob written by [`encode_samples`].
pub fn decode_samples(bytes: &[u8]) -> VerdictResult<Vec<SampleMeta>> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| VerdictError::Metadata("meta blob is not utf-8".into()))?;
    let mut lines = text.lines();
    match lines.next() {
        Some("verdict-meta-v1") => {}
        other => {
            return Err(VerdictError::Metadata(format!(
                "unknown meta blob header {other:?}"
            )));
        }
    }
    let mut out = Vec::new();
    for (i, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 8 {
            return Err(VerdictError::Metadata(format!(
                "meta blob line {} has {} fields, expected 8",
                i + 2,
                fields.len()
            )));
        }
        let columns: Vec<String> = if fields[3].is_empty() {
            Vec::new()
        } else {
            fields[3].split(',').map(|s| s.to_string()).collect()
        };
        let sample_type = match fields[2] {
            "uniform" => SampleType::Uniform,
            "hashed" => SampleType::Hashed { columns },
            "stratified" => SampleType::Stratified { columns },
            other => {
                return Err(VerdictError::Metadata(format!(
                    "unknown sample type {other} in meta blob"
                )));
            }
        };
        let int = |s: &str, what: &str| -> VerdictResult<u64> {
            s.parse::<u64>()
                .map_err(|_| VerdictError::Metadata(format!("bad {what} in meta blob: {s}")))
        };
        out.push(SampleMeta {
            base_table: fields[0].to_string(),
            sample_table: fields[1].to_string(),
            sample_type,
            ratio: f64::from_bits(int(fields[4], "ratio bits")?),
            sample_rows: int(fields[5], "sample_rows")?,
            base_rows: int(fields[6], "base_rows")?,
            appended_rows: int(fields[7], "appended_rows")?,
        });
    }
    Ok(out)
}

fn row_select(meta: &SampleMeta) -> String {
    format!(
        "SELECT '{}' AS base_table, '{}' AS sample_table, '{}' AS sample_type, \
         '{}' AS type_columns, {} AS ratio, {} AS sample_rows, {} AS base_rows, \
         {} AS appended_rows",
        meta.base_table,
        meta.sample_table,
        meta.sample_type.tag(),
        meta.sample_type.columns().join(","),
        meta.ratio,
        meta.sample_rows,
        meta.base_rows,
        meta.appended_rows
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_engine::Engine;

    fn meta(base: &str, tag: u32) -> SampleMeta {
        SampleMeta {
            base_table: base.into(),
            sample_table: format!("verdict_sample_{base}_{tag}"),
            sample_type: if tag.is_multiple_of(2) {
                SampleType::Uniform
            } else {
                SampleType::Stratified {
                    columns: vec!["city".into()],
                }
            },
            ratio: 0.01,
            sample_rows: 100 + tag as u64,
            base_rows: 10_000,
            appended_rows: 0,
        }
    }

    #[test]
    fn register_and_lookup() {
        let store = MetaStore::new();
        store.register(meta("orders", 0));
        store.register(meta("orders", 1));
        store.register(meta("lineitem", 2));
        assert_eq!(store.samples_for("ORDERS").len(), 2);
        assert_eq!(store.samples_for("lineitem").len(), 1);
        assert_eq!(store.len(), 3);
        assert_eq!(store.remove_for("orders").len(), 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn persist_and_reload_roundtrip() {
        let engine: Arc<dyn Backend> = Arc::new(Engine::with_seed(3));
        let store = MetaStore::new();
        store.register(meta("orders", 0));
        store.register(SampleMeta {
            // A tail-appended scramble: the lost-shuffle marker must survive
            // the persist/reload cycle, or progressive execution would be
            // silently re-enabled on a biased prefix.
            appended_rows: 123,
            ..meta("orders", 1)
        });
        store.persist(&engine).unwrap();

        let other = MetaStore::new();
        let loaded = other.reload(&engine).unwrap();
        assert_eq!(loaded, 2);
        let reloaded = other.samples_for("orders");
        assert_eq!(reloaded.len(), 2);
        assert!(reloaded.iter().any(|m| matches!(
            m.sample_type,
            SampleType::Stratified { ref columns } if columns == &vec!["city".to_string()]
        )));
        assert!(
            reloaded.iter().any(|m| m.appended_rows == 123),
            "appended_rows must survive persistence"
        );
        assert!(reloaded.iter().any(|m| m.appended_rows == 0));
    }

    #[test]
    fn blob_codec_roundtrips_bit_exactly() {
        let samples = vec![
            SampleMeta {
                ratio: 0.1 + 0.2, // not representable exactly: bits must survive
                ..meta("orders", 0)
            },
            SampleMeta {
                appended_rows: 77,
                ..meta("orders", 1)
            },
            SampleMeta {
                sample_type: SampleType::Hashed {
                    columns: vec!["a".into(), "b".into()],
                },
                ..meta("lineitem", 2)
            },
        ];
        let bytes = encode_samples(&samples);
        let back = decode_samples(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        for (b, s) in back.iter().zip(&samples) {
            assert_eq!(b.sample_table, s.sample_table);
            assert_eq!(b.sample_type, s.sample_type);
            assert_eq!(b.ratio.to_bits(), s.ratio.to_bits());
            assert_eq!(b.appended_rows, s.appended_rows);
        }
        assert!(decode_samples(b"not-a-header\n").is_err());
        assert!(decode_samples(b"verdict-meta-v1\nshort\tline\n").is_err());
    }

    #[test]
    fn reload_without_metadata_table_is_a_noop() {
        let engine: Arc<dyn Backend> = Arc::new(Engine::with_seed(3));
        let store = MetaStore::new();
        assert_eq!(store.reload(&engine).unwrap(), 0);
        assert!(store.is_empty());
    }
}
