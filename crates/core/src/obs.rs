//! Observability: per-query trace spans, latency histograms, and metrics.
//!
//! The paper's middleware argument rests on the rewrite/estimate pipeline
//! being cheap relative to the backend round-trip.  This module makes that
//! claim *observable at runtime*: every statement executed by
//! [`crate::VerdictContext`] carries a [`TraceBuilder`] that records one
//! contiguous [`SpanRecord`] per lifecycle stage (canonicalize → cache probe
//! → analyze → plan → rewrite → backend execution → answer assembly → …),
//! and the finished [`QueryTrace`] is folded into an [`Obs`] registry:
//!
//! * **log-bucketed latency histograms** per stage and per statement class
//!   (power-of-two microsecond buckets, mergeable across shards, p50/p95/p99
//!   within one bucket of exact),
//! * a **bounded ring buffer** of recent traces served by `SHOW PROFILE`,
//! * **counters** (statements by class, slow queries) rendered together with
//!   the histograms as Prometheus-style text exposition by `SHOW METRICS`.
//!
//! Tracing is always on: the cache-hot dispatch path records two spans and
//! one histogram sample, which keeps instrumentation overhead within the
//! PR 4 dispatch bar (≤2% on the `session_dispatch` bench).
//!
//! Statements slower than the session's `slow_query_ms` option are flagged
//! `slow` in the ring (the slow-query log) and counted in
//! `verdict_slow_queries_total`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log-spaced histogram buckets: bucket `i` covers durations in
/// `(2^(i-1), 2^i]` microseconds, the last bucket is unbounded (`+Inf`).
pub const BUCKETS: usize = 32;

/// The lifecycle stages a query trace can record, in pipeline order.
///
/// Stage names are stable identifiers: they appear as the `stage` label in
/// the metrics exposition and in `EXPLAIN ANALYZE` / `SHOW PROFILE` output.
pub const STAGES: &[&str] = &[
    "canonicalize",
    "cache_probe",
    "analyze",
    "plan",
    "rewrite",
    "backend_exec",
    "assemble",
    "rerun",
    "passthrough",
    "cache_insert",
    "stream_frame",
    "control",
];

/// Statement classes used as the `class` label on per-statement histograms.
pub const CLASSES: &[&str] = &[
    "query",
    "query_cached",
    "bypass",
    "ddl",
    "set",
    "show",
    "stream",
    "explain",
    "other",
];

fn stage_index(stage: &str) -> usize {
    STAGES.iter().position(|s| *s == stage).unwrap_or(0)
}

fn class_index(class: &str) -> usize {
    CLASSES
        .iter()
        .position(|c| *c == class)
        .unwrap_or(CLASSES.len() - 1)
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// A lock-free log-bucketed latency histogram over microsecond durations.
///
/// Buckets are powers of two: recording a value `v` increments the bucket
/// whose upper bound is the smallest `2^i ≥ v`.  Quantile estimates are
/// therefore accurate to within one bucket (a factor of two), which is the
/// right trade-off for latency monitoring: cheap constant-time recording,
/// mergeable across shards, and stable tail percentiles.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum of recorded values in microseconds.
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a microsecond value falls into.
    pub fn bucket_of(micros: u64) -> usize {
        if micros <= 1 {
            0
        } else {
            ((64 - (micros - 1).leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// The inclusive upper bound (µs) of bucket `i` (the last bucket is
    /// unbounded; its nominal bound is returned).
    pub fn bucket_bound(i: usize) -> u64 {
        1u64 << i.min(63)
    }

    /// Records one duration.
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros() as u64);
    }

    /// Records one microsecond value.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket counts (non-cumulative).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (0 < q ≤ 1) as the upper bound of the bucket holding
    /// it, or `None` when the histogram is empty.  Accurate to within one
    /// bucket of the exact sample quantile.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(Self::bucket_bound(i));
            }
        }
        Some(Self::bucket_bound(BUCKETS - 1))
    }

    /// Folds another histogram into this one.  Merging per-shard histograms
    /// yields exactly the histogram of the concatenated value stream.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let v = other.buckets[i].load(Ordering::Relaxed);
            if v != 0 {
                self.buckets[i].fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Spans and traces
// ---------------------------------------------------------------------------

/// One closed span inside a query trace: a stage with its offset from the
/// start of the statement, its duration, and a short free-form detail.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Offset from the start of the statement.
    pub start: Duration,
    /// Time spent in this stage.
    pub duration: Duration,
    /// Short human-readable annotation (`"hit"`, sample name, …).
    pub detail: String,
}

/// A finished per-statement trace: the span list plus end-to-end attribution
/// (cache, shed tier, backend round-trips, store page I/O).
#[derive(Debug, Clone)]
pub struct QueryTrace {
    /// Monotonic sequence number assigned when the trace enters the ring.
    pub seq: u64,
    /// Statement class (one of [`CLASSES`]).
    pub class: &'static str,
    /// The statement text as received.
    pub sql: String,
    /// End-to-end wall time of the statement.
    pub total: Duration,
    /// Closed spans in execution order; contiguous, so their durations sum
    /// to (almost exactly) `total`.
    pub spans: Vec<SpanRecord>,
    /// Whether the answer came from the answer cache.
    pub cached: bool,
    /// Whether the answer was exact (bypass / passthrough / non-query).
    pub exact: bool,
    /// Shed-tier label in effect (`"none"` when not degraded).
    pub shed_tier: &'static str,
    /// Backend queries issued while executing this statement.
    pub backend_queries: u64,
    /// Store pages read while executing this statement.
    pub store_pages_read: u64,
    /// Rows in the returned table.
    pub rows_returned: u64,
    /// Source rows scanned to produce the answer.
    pub rows_scanned: u64,
    /// True when `total` exceeded the session's `slow_query_ms` threshold.
    pub slow: bool,
}

/// Records contiguous stage spans for one statement execution.
///
/// `begin(stage)` closes the currently open span at the same instant the
/// next one opens, so the recorded spans tile the statement's wall time
/// without gaps — the invariant behind `EXPLAIN ANALYZE`'s "durations sum
/// to total" property.
#[derive(Debug)]
pub struct TraceBuilder {
    start: Instant,
    spans: Vec<SpanRecord>,
    open: Option<(&'static str, String, Instant)>,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        TraceBuilder::new()
    }
}

impl TraceBuilder {
    /// Starts the trace clock.
    pub fn new() -> Self {
        TraceBuilder {
            start: Instant::now(),
            spans: Vec::with_capacity(8),
            open: None,
        }
    }

    /// Closes the open span (if any) and opens a new one.
    pub fn begin(&mut self, stage: &'static str) {
        self.begin_with(stage, String::new());
    }

    /// Closes the open span (if any) and opens a new one with a detail
    /// annotation.
    pub fn begin_with(&mut self, stage: &'static str, detail: String) {
        let now = Instant::now();
        self.close_open(now);
        self.open = Some((stage, detail, now));
    }

    /// The instant the trace clock started (useful as the `start` argument of
    /// legacy code paths that time themselves against a single `Instant`).
    pub fn started(&self) -> Instant {
        self.start
    }

    /// Replaces the detail annotation of the currently open span.
    pub fn note(&mut self, detail: String) {
        if let Some((_, d, _)) = self.open.as_mut() {
            *d = detail;
        }
    }

    /// Closes the open span, if any.
    pub fn end(&mut self) {
        self.close_open(Instant::now());
    }

    fn close_open(&mut self, now: Instant) {
        if let Some((stage, detail, since)) = self.open.take() {
            self.spans.push(SpanRecord {
                stage,
                start: since.duration_since(self.start),
                duration: now.duration_since(since),
                detail,
            });
        }
    }

    /// Wall time since the trace started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Closes any open span and returns `(total, spans)`.
    pub fn finish(mut self) -> (Duration, Vec<SpanRecord>) {
        let now = Instant::now();
        self.close_open(now);
        (now.duration_since(self.start), self.spans)
    }
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

/// A bounded ring of recent query traces (most recent last).
#[derive(Debug)]
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<VecDeque<QueryTrace>>,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` traces.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity: capacity.max(1),
            inner: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Appends a trace, evicting the oldest when full.
    pub fn push(&self, trace: QueryTrace) {
        let mut ring = self.inner.lock().unwrap();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The `n` most recent traces, most recent first.
    pub fn recent(&self, n: usize) -> Vec<QueryTrace> {
        let ring = self.inner.lock().unwrap();
        ring.iter().rev().take(n).cloned().collect()
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// True when no traces have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Default capacity of the recent-trace ring.
pub const DEFAULT_RING_CAPACITY: usize = 128;

/// The per-context observability registry: stage and statement-class
/// histograms, statement counters, the slow-query counter, and the ring of
/// recent traces.
#[derive(Debug)]
pub struct Obs {
    stage_hist: Vec<Histogram>,
    class_hist: Vec<Histogram>,
    class_count: Vec<AtomicU64>,
    slow_queries: AtomicU64,
    seq: AtomicU64,
    ring: TraceRing,
}

impl Default for Obs {
    fn default() -> Self {
        Obs::new(DEFAULT_RING_CAPACITY)
    }
}

impl Obs {
    /// Creates a registry whose trace ring holds `ring_capacity` traces.
    pub fn new(ring_capacity: usize) -> Self {
        Obs {
            stage_hist: (0..STAGES.len()).map(|_| Histogram::new()).collect(),
            class_hist: (0..CLASSES.len()).map(|_| Histogram::new()).collect(),
            class_count: (0..CLASSES.len()).map(|_| AtomicU64::new(0)).collect(),
            slow_queries: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            ring: TraceRing::new(ring_capacity),
        }
    }

    /// The histogram for a lifecycle stage.
    pub fn stage_histogram(&self, stage: &str) -> &Histogram {
        &self.stage_hist[stage_index(stage)]
    }

    /// The end-to-end latency histogram for a statement class.
    pub fn class_histogram(&self, class: &str) -> &Histogram {
        &self.class_hist[class_index(class)]
    }

    /// Number of statements observed for a class.
    pub fn class_count(&self, class: &str) -> u64 {
        self.class_count[class_index(class)].load(Ordering::Relaxed)
    }

    /// Number of statements that exceeded their slow-query threshold.
    pub fn slow_queries(&self) -> u64 {
        self.slow_queries.load(Ordering::Relaxed)
    }

    /// The ring of recent traces.
    pub fn ring(&self) -> &TraceRing {
        &self.ring
    }

    /// Records one stage duration without a full trace (used by progressive
    /// streams, whose frames outlive a single statement execution).
    pub fn record_stage(&self, stage: &str, d: Duration) {
        self.stage_hist[stage_index(stage)].record(d);
    }

    /// Folds a finished trace into the histograms and the ring, assigning
    /// its sequence number.  Returns the stored trace (with `seq` set).
    pub fn observe(&self, mut trace: QueryTrace) -> QueryTrace {
        trace.seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let micros = trace.total.as_micros() as u64;
        self.class_hist[class_index(trace.class)].record_micros(micros);
        self.class_count[class_index(trace.class)].fetch_add(1, Ordering::Relaxed);
        for span in &trace.spans {
            self.stage_hist[stage_index(span.stage)].record(span.duration);
        }
        if trace.slow {
            self.slow_queries.fetch_add(1, Ordering::Relaxed);
        }
        self.ring.push(trace.clone());
        trace
    }

    /// Renders the registry as Prometheus-style text exposition, together
    /// with caller-supplied counters and gauges (cache/backend/store
    /// counters from the context; queue and session gauges from the
    /// server).  Histograms with no samples are omitted.
    pub fn render_prometheus(
        &self,
        counters: &[(String, u64)],
        gauges: &[(String, u64)],
    ) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# TYPE verdict_statements_total counter\n");
        for (i, class) in CLASSES.iter().enumerate() {
            let v = self.class_count[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "verdict_statements_total{{class=\"{class}\"}} {v}\n"
            ));
        }
        out.push_str("# TYPE verdict_slow_queries_total counter\n");
        out.push_str(&format!(
            "verdict_slow_queries_total {}\n",
            self.slow_queries()
        ));
        for (name, v) in counters {
            append_counter(&mut out, name, *v);
        }
        for (name, v) in gauges {
            append_gauge(&mut out, name, *v);
        }
        render_histogram_family(
            &mut out,
            "verdict_statement_duration_us",
            "class",
            CLASSES.iter().zip(self.class_hist.iter()),
        );
        render_histogram_family(
            &mut out,
            "verdict_stage_duration_us",
            "stage",
            STAGES.iter().zip(self.stage_hist.iter()),
        );
        out
    }
}

/// Appends one `# TYPE … counter` line pair to a metrics exposition.
pub fn append_counter(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
}

/// Appends one `# TYPE … gauge` line pair to a metrics exposition.
pub fn append_gauge(out: &mut String, name: &str, value: u64) {
    out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
}

fn render_histogram_family<'a>(
    out: &mut String,
    name: &str,
    label: &str,
    series: impl Iterator<Item = (&'a &'static str, &'a Histogram)>,
) {
    let mut wrote_type = false;
    for (value, hist) in series {
        if hist.count() == 0 {
            continue;
        }
        if !wrote_type {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            wrote_type = true;
        }
        let counts = hist.bucket_counts();
        let mut cum = 0u64;
        for (i, c) in counts.iter().enumerate() {
            cum += c;
            let le = if i == BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                Histogram::bucket_bound(i).to_string()
            };
            out.push_str(&format!(
                "{name}_bucket{{{label}=\"{value}\",le=\"{le}\"}} {cum}\n"
            ));
        }
        out.push_str(&format!(
            "{name}_sum{{{label}=\"{value}\"}} {}\n",
            hist.sum_micros()
        ));
        out.push_str(&format!(
            "{name}_count{{{label}=\"{value}\"}} {}\n",
            hist.count()
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 0);
        assert_eq!(Histogram::bucket_of(2), 1);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 2);
        assert_eq!(Histogram::bucket_of(5), 3);
        assert_eq!(Histogram::bucket_of(1 << 20), 20);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS {
            assert_eq!(Histogram::bucket_of(Histogram::bucket_bound(i)), i);
        }
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        for v in [1u64, 2, 4, 100, 1000] {
            h.record_micros(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_micros(), 1107);
        // p50 of {1,2,4,100,1000} = 4 → bucket bound 4.
        assert_eq!(h.quantile(0.5), Some(4));
        // p99 lands in the bucket holding 1000 → bound 1024.
        assert_eq!(h.quantile(0.99), Some(1024));
        assert_eq!(h.quantile(0.01), Some(1));
    }

    #[test]
    fn merged_histograms_equal_concatenated_stream() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..100u64 {
            let target = if v % 2 == 0 { &a } else { &b };
            target.record_micros(v * 7);
            all.record_micros(v * 7);
        }
        a.merge_from(&b);
        assert_eq!(a.bucket_counts(), all.bucket_counts());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum_micros(), all.sum_micros());
    }

    #[test]
    fn trace_builder_spans_tile_the_total() {
        let mut tb = TraceBuilder::new();
        tb.begin("analyze");
        std::thread::sleep(Duration::from_millis(2));
        tb.begin_with("rewrite", "2 aggregates".into());
        std::thread::sleep(Duration::from_millis(2));
        let (total, spans) = tb.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].stage, "analyze");
        assert_eq!(spans[1].stage, "rewrite");
        assert_eq!(spans[1].detail, "2 aggregates");
        let sum: Duration = spans.iter().map(|s| s.duration).sum();
        // Contiguous spans: the sum matches the total to within clock jitter.
        let diff = total.checked_sub(sum).unwrap_or_else(|| sum - total);
        assert!(
            diff < Duration::from_millis(1),
            "span sum {sum:?} vs total {total:?}"
        );
        // Spans are contiguous: each starts where the previous ended.
        assert_eq!(spans[0].start + spans[0].duration, spans[1].start);
    }

    #[test]
    fn ring_keeps_most_recent_traces() {
        let ring = TraceRing::new(3);
        for i in 0..5 {
            ring.push(QueryTrace {
                seq: i,
                class: "query",
                sql: format!("q{i}"),
                total: Duration::from_micros(i),
                spans: Vec::new(),
                cached: false,
                exact: false,
                shed_tier: "none",
                backend_queries: 0,
                store_pages_read: 0,
                rows_returned: 0,
                rows_scanned: 0,
                slow: false,
            });
        }
        assert_eq!(ring.len(), 3);
        let recent = ring.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].sql, "q4");
        assert_eq!(recent[1].sql, "q3");
    }

    #[test]
    fn observe_assigns_sequence_and_feeds_histograms() {
        let obs = Obs::new(8);
        let trace = QueryTrace {
            seq: 0,
            class: "query",
            sql: "select 1".into(),
            total: Duration::from_micros(100),
            spans: vec![SpanRecord {
                stage: "rewrite",
                start: Duration::ZERO,
                duration: Duration::from_micros(40),
                detail: String::new(),
            }],
            cached: false,
            exact: false,
            shed_tier: "none",
            backend_queries: 1,
            store_pages_read: 0,
            rows_returned: 1,
            rows_scanned: 10,
            slow: true,
        };
        let stored = obs.observe(trace);
        assert_eq!(stored.seq, 1);
        assert_eq!(obs.class_count("query"), 1);
        assert_eq!(obs.class_histogram("query").count(), 1);
        assert_eq!(obs.stage_histogram("rewrite").count(), 1);
        assert_eq!(obs.slow_queries(), 1);
        assert_eq!(obs.ring().len(), 1);
    }

    #[test]
    fn exposition_is_well_formed() {
        let obs = Obs::new(8);
        obs.class_histogram("query").record_micros(50);
        obs.stage_histogram("rewrite").record_micros(10);
        let text = obs.render_prometheus(
            &[("verdict_cache_hits_total".into(), 3)],
            &[("verdict_queue_depth".into(), 0)],
        );
        assert!(text.contains("# TYPE verdict_statements_total counter"));
        assert!(text.contains("verdict_cache_hits_total 3"));
        assert!(text.contains("# TYPE verdict_queue_depth gauge"));
        assert!(
            text.contains("verdict_statement_duration_us_bucket{class=\"query\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("verdict_statement_duration_us_sum{class=\"query\"} 50"));
        assert!(text.contains("verdict_statement_duration_us_count{class=\"query\"} 1"));
        assert!(text.contains("verdict_stage_duration_us_count{stage=\"rewrite\"} 1"));
        // Empty histogram series are omitted (the statement counters still
        // list every class).
        assert!(!text.contains("verdict_statement_duration_us_count{class=\"bypass\"}"));
        assert!(text.contains("verdict_statements_total{class=\"bypass\"} 0"));
        // Every histogram family has matching _sum and _count lines.
        let sums = text.matches("_sum{").count();
        let counts = text.matches("_count{").count();
        assert_eq!(sums, counts);
    }
}
