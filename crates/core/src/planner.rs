//! Sample planning (Appendix E of the paper).
//!
//! Given the base tables referenced by a query, the available samples for
//! each, and the query's characteristics (grouping attributes, join keys,
//! aggregate classes), the planner enumerates candidate plans (one sample
//! choice — or the base table itself — per referenced table), scores each
//! candidate, discards those whose I/O cost exceeds the budget, and returns
//! the highest-scoring plan.
//!
//! Scoring follows Appendix E.1: the score is the square root of the plan's
//! *effective sampling ratio* multiplied by advantage factors (a stratified
//! sample whose column set covers the grouping attributes; a pair of hashed
//! samples joined on their hash columns).  The heuristic of Appendix E.2 —
//! keeping only the `k` best sample tables per relation — bounds the
//! enumeration when many samples exist.

use crate::config::VerdictConfig;
use crate::meta::MetaStore;
use crate::sample::{SampleMeta, SampleType};

/// Information about one base-table reference in the query.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// The alias under which the table is visible in the query (or the table
    /// name itself when no alias was given).
    pub alias: String,
    /// The base table name.
    pub table: String,
    /// Number of rows in the base table.
    pub rows: u64,
    /// Columns of this table that participate in equi-join conditions.
    pub join_columns: Vec<String>,
}

/// What the query needs from the plan, used for advantage factors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanningContext {
    /// Lower-cased column names appearing in GROUP BY.
    pub group_columns: Vec<String>,
    /// Lower-cased argument columns of count-distinct aggregates.
    pub distinct_columns: Vec<String>,
    /// Maximum fraction of the referenced data the plan may read.
    pub io_budget: f64,
}

/// The sample chosen for one table reference (None = use the base table).
#[derive(Debug, Clone, PartialEq)]
pub struct TableChoice {
    /// The table reference being planned.
    pub table_ref: TableRef,
    /// The chosen sample, or `None` to scan the base table.
    pub sample: Option<SampleMeta>,
}

impl TableChoice {
    /// Rows that will be scanned for this reference under the plan.
    pub fn scanned_rows(&self) -> u64 {
        match &self.sample {
            Some(s) => s.sample_rows,
            None => self.table_ref.rows,
        }
    }

    /// The sampling ratio contributed by this choice (1.0 when unsampled).
    pub fn ratio(&self) -> f64 {
        match &self.sample {
            Some(s) => s.actual_ratio().max(f64::MIN_POSITIVE),
            None => 1.0,
        }
    }
}

/// A complete candidate plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlan {
    /// One choice per table reference of the query.
    pub choices: Vec<TableChoice>,
    /// Planner score (higher is better; Appendix E scoring).
    pub score: f64,
    /// Total rows the plan will scan.
    pub io_cost: u64,
    /// Product of the per-choice sampling ratios.
    pub effective_ratio: f64,
}

impl SamplePlan {
    /// True when at least one table reference uses a sample.
    pub fn uses_samples(&self) -> bool {
        self.choices.iter().any(|c| c.sample.is_some())
    }

    /// The choice for a given alias, if present.
    pub fn choice_for(&self, alias: &str) -> Option<&TableChoice> {
        self.choices
            .iter()
            .find(|c| c.table_ref.alias.eq_ignore_ascii_case(alias))
    }
}

/// Plans sample usage for a query.
pub struct SamplePlanner<'a> {
    meta: &'a MetaStore,
    config: &'a VerdictConfig,
}

impl<'a> SamplePlanner<'a> {
    /// Creates a planner over the given metadata registry.
    pub fn new(meta: &'a MetaStore, config: &'a VerdictConfig) -> Self {
        SamplePlanner { meta, config }
    }

    /// Chooses the best plan for the referenced tables, or an all-base-table
    /// plan when no candidate fits the I/O budget (the paper's fallback).
    pub fn plan(&self, tables: &[TableRef], ctx: &PlanningContext) -> SamplePlan {
        // The I/O budget constrains how much of the *large* tables may be
        // read (§2.4: "for every table that exceeds a certain size…"); small
        // dimension tables are always read in full and do not count.
        let total_rows: u64 = tables
            .iter()
            .filter(|t| t.rows >= self.config.min_table_rows)
            .map(|t| t.rows)
            .sum();
        let budget_rows = ((total_rows as f64) * ctx.io_budget.max(0.0)).ceil() as u64;

        // Candidate samples per table, pruned to the top-k largest (Appendix E.2:
        // very small samples score poorly, very large ones bust the budget;
        // keeping the k best by ratio is the paper's heuristic).
        let mut per_table: Vec<Vec<Option<SampleMeta>>> = Vec::with_capacity(tables.len());
        for t in tables {
            let mut options: Vec<Option<SampleMeta>> = vec![None];
            if t.rows >= self.config.min_table_rows {
                let mut samples = self.meta.samples_for(&t.table);
                samples.sort_by(|a, b| {
                    b.actual_ratio()
                        .partial_cmp(&a.actual_ratio())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                samples.truncate(self.config.planner_top_k);
                options.extend(samples.into_iter().map(Some));
            }
            per_table.push(options);
        }

        // Enumerate the cartesian product of per-table options.
        let mut best: Option<SamplePlan> = None;
        let mut indices = vec![0usize; per_table.len()];
        loop {
            let choices: Vec<TableChoice> = tables
                .iter()
                .zip(indices.iter().zip(per_table.iter()))
                .map(|(t, (&i, opts))| TableChoice {
                    table_ref: t.clone(),
                    sample: opts[i].clone(),
                })
                .collect();
            let candidate = self.evaluate(choices, ctx);
            let within_budget =
                candidate.io_cost <= budget_rows.max(1) || !candidate.uses_samples();
            if within_budget {
                let better = match &best {
                    None => true,
                    Some(b) => candidate.score > b.score,
                };
                if better {
                    best = Some(candidate);
                }
            }
            // advance odometer
            let mut k = 0;
            loop {
                if k == indices.len() {
                    break;
                }
                indices[k] += 1;
                if indices[k] < per_table[k].len() {
                    break;
                }
                indices[k] = 0;
                k += 1;
            }
            if k == indices.len() {
                break;
            }
        }

        best.unwrap_or_else(|| {
            self.evaluate(
                tables
                    .iter()
                    .map(|t| TableChoice {
                        table_ref: t.clone(),
                        sample: None,
                    })
                    .collect(),
                ctx,
            )
        })
    }

    /// Scores one candidate plan (Appendix E.1).
    fn evaluate(&self, choices: Vec<TableChoice>, ctx: &PlanningContext) -> SamplePlan {
        let io_cost: u64 = choices
            .iter()
            .filter(|c| c.table_ref.rows >= self.config.min_table_rows)
            .map(|c| c.scanned_rows())
            .sum();

        // Effective sampling ratio: product of per-table ratios, except that a
        // pair of hashed samples joined on their hash column set contributes
        // min(r1, r2) instead of r1*r2.
        let hashed_on_join: Vec<&TableChoice> = choices
            .iter()
            .filter(|c| match &c.sample {
                Some(SampleMeta {
                    sample_type: SampleType::Hashed { columns },
                    ..
                }) => columns.iter().all(|col| {
                    c.table_ref
                        .join_columns
                        .iter()
                        .any(|j| j.eq_ignore_ascii_case(col))
                }),
                _ => false,
            })
            .collect();
        let universe_join = hashed_on_join.len() >= 2;

        let mut effective_ratio = 1.0f64;
        if universe_join {
            let min_ratio = hashed_on_join
                .iter()
                .map(|c| c.ratio())
                .fold(f64::INFINITY, f64::min);
            effective_ratio *= min_ratio;
            for c in &choices {
                let is_universe_join_member = hashed_on_join
                    .iter()
                    .any(|h| h.table_ref.alias == c.table_ref.alias);
                if !is_universe_join_member {
                    effective_ratio *= c.ratio();
                }
            }
        } else {
            for c in &choices {
                effective_ratio *= c.ratio();
            }
        }

        // Base score: sqrt of the effective sampling ratio (expected error of
        // mean-like statistics shrinks with the square root of the sample size).
        let mut score = effective_ratio.max(0.0).sqrt();

        // Advantage factors.
        for c in &choices {
            match &c.sample {
                Some(SampleMeta {
                    sample_type: SampleType::Stratified { columns },
                    ..
                }) => {
                    let covers_groups = !ctx.group_columns.is_empty()
                        && ctx
                            .group_columns
                            .iter()
                            .all(|g| columns.iter().any(|s| s.eq_ignore_ascii_case(g)));
                    if covers_groups {
                        score *= 2.0;
                    }
                }
                Some(SampleMeta {
                    sample_type: SampleType::Hashed { columns },
                    ..
                }) => {
                    let covers_distinct = !ctx.distinct_columns.is_empty()
                        && ctx
                            .distinct_columns
                            .iter()
                            .all(|d| columns.iter().any(|s| s.eq_ignore_ascii_case(d)));
                    if covers_distinct {
                        score *= 2.0;
                    }
                }
                _ => {}
            }
        }
        if universe_join {
            score *= 1.5;
        }
        // Plans that sample nothing have a score of 1 (= sqrt of ratio 1), so
        // any in-budget sampled plan with a reasonable ratio will beat them
        // only through advantage factors; instead, penalise the unsampled plan
        // so AQP is preferred whenever a sampled plan fits the budget.
        if !choices.iter().any(|c| c.sample.is_some()) {
            score *= 0.01;
        }

        SamplePlan {
            choices,
            score,
            io_cost,
            effective_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_store() -> MetaStore {
        let store = MetaStore::new();
        for (table, rows) in [("orders", 1_000_000u64), ("order_products", 3_000_000u64)] {
            store.register(SampleMeta {
                base_table: table.into(),
                sample_table: format!("verdict_sample_{table}_uniform"),
                sample_type: SampleType::Uniform,
                ratio: 0.01,
                sample_rows: rows / 100,
                base_rows: rows,
                appended_rows: 0,
            });
            store.register(SampleMeta {
                base_table: table.into(),
                sample_table: format!("verdict_sample_{table}_hashed_order_id"),
                sample_type: SampleType::Hashed {
                    columns: vec!["order_id".into()],
                },
                ratio: 0.01,
                sample_rows: rows / 100,
                base_rows: rows,
                appended_rows: 0,
            });
        }
        store.register(SampleMeta {
            base_table: "orders".into(),
            sample_table: "verdict_sample_orders_stratified_city".into(),
            sample_type: SampleType::Stratified {
                columns: vec!["city".into()],
            },
            ratio: 0.01,
            sample_rows: 15_000,
            base_rows: 1_000_000,
            appended_rows: 0,
        });
        store
    }

    fn table(alias: &str, name: &str, rows: u64, joins: &[&str]) -> TableRef {
        TableRef {
            alias: alias.into(),
            table: name.into(),
            rows,
            join_columns: joins.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn single_table_prefers_stratified_when_grouping_matches() {
        let store = meta_store();
        let cfg = VerdictConfig::default();
        let planner = SamplePlanner::new(&store, &cfg);
        let plan = planner.plan(
            &[table("o", "orders", 1_000_000, &[])],
            &PlanningContext {
                group_columns: vec!["city".into()],
                distinct_columns: vec![],
                io_budget: 0.02,
            },
        );
        let chosen = plan.choices[0].sample.as_ref().unwrap();
        assert!(matches!(chosen.sample_type, SampleType::Stratified { .. }));
        assert!(plan.uses_samples());
    }

    #[test]
    fn join_of_two_large_tables_prefers_universe_samples() {
        let store = meta_store();
        let cfg = VerdictConfig::default();
        let planner = SamplePlanner::new(&store, &cfg);
        let plan = planner.plan(
            &[
                table("o", "orders", 1_000_000, &["order_id"]),
                table("p", "order_products", 3_000_000, &["order_id"]),
            ],
            &PlanningContext {
                group_columns: vec![],
                distinct_columns: vec![],
                io_budget: 0.02,
            },
        );
        for c in &plan.choices {
            let s = c.sample.as_ref().expect("both sides should be sampled");
            assert!(
                matches!(s.sample_type, SampleType::Hashed { .. }),
                "expected hashed sample for {}, got {}",
                c.table_ref.table,
                s.sample_type
            );
        }
        assert!((plan.effective_ratio - 0.01).abs() < 0.005);
    }

    #[test]
    fn small_tables_are_never_sampled() {
        let store = meta_store();
        let cfg = VerdictConfig::default();
        let planner = SamplePlanner::new(&store, &cfg);
        let plan = planner.plan(
            &[table("d", "orders", 5_000, &[])],
            &PlanningContext {
                io_budget: 0.02,
                ..Default::default()
            },
        );
        assert!(plan.choices[0].sample.is_none());
    }

    #[test]
    fn budget_of_zero_forces_base_tables() {
        let store = meta_store();
        let cfg = VerdictConfig::default();
        let planner = SamplePlanner::new(&store, &cfg);
        let plan = planner.plan(
            &[table("o", "orders", 1_000_000, &[])],
            &PlanningContext {
                io_budget: 0.0,
                ..Default::default()
            },
        );
        assert!(!plan.uses_samples());
    }

    #[test]
    fn count_distinct_prefers_hashed_sample_on_that_column() {
        let store = meta_store();
        let cfg = VerdictConfig::default();
        let planner = SamplePlanner::new(&store, &cfg);
        let plan = planner.plan(
            &[table("o", "orders", 1_000_000, &[])],
            &PlanningContext {
                group_columns: vec![],
                distinct_columns: vec!["order_id".into()],
                io_budget: 0.02,
            },
        );
        let chosen = plan.choices[0].sample.as_ref().unwrap();
        assert!(matches!(chosen.sample_type, SampleType::Hashed { .. }));
    }
}
