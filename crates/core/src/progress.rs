//! Progressive query execution: streaming answers that refine block by
//! block, with early stop at the target error.
//!
//! The paper sells AQP as "answers in seconds, not minutes"; this module
//! turns that into a latency feature users can watch.  A [`ProgressStream`]
//! plans a query exactly like the one-shot path (analysis → sample plan →
//! variational-subsampling rewrite), then — when the shape allows — executes
//! the rewritten mean query through the engine's resumable block-scan
//! cursor ([`verdict_engine::BlockScan`]): each pulled frame consumes the
//! next block of scramble rows (default: one 64K-row morsel,
//! [`VerdictConfig::stream_block_rows`]), folds the refreshed per-(group,
//! subsample) cells through the Answer Rewriter, and yields a
//! [`ProgressFrame`] whose estimate and confidence interval are **exactly**
//! the variational-subsampling answer for the scramble prefix seen so far.
//!
//! Invariants:
//!
//! * **monotone refinement** — intervals tighten in expectation as blocks
//!   accumulate (they are the estimator's honest intervals for a growing
//!   prefix, so individual frames may wobble, but never lie);
//! * **final-frame bit-identity** — a stream that consumes every block ends
//!   with the one-shot answer, bit for bit, at any engine parallelism: the
//!   block cursor buffers exactly the one-shot executor's evaluated frame
//!   and re-folds it through the same morsel-grid aggregation core, and the
//!   final frame then applies the same feasibility check and High-level
//!   Accuracy Contract (falling back to the exact answer under exactly the
//!   same conditions a plain `SELECT` would);
//! * **early stop** — with `SET target_error = r`, the stream ends at the
//!   first frame whose worst relative error is within `r`, skipping the
//!   remaining blocks entirely.
//!
//! Queries outside the progressive class (joins, count-distinct, `min`/
//! `max`, no usable scramble, or a connection without block scans) degrade
//! gracefully to a single-frame stream computed by the one-shot path.
//!
//! A completed stream's final frame is inserted into the shared answer
//! cache under the same key a plain `SELECT` would use — it *is* that
//! query's answer — so the next identical `SELECT` is served from memory.
//! Early-stopped streams saw only a prefix and are never cached.

use crate::answer::assemble;
use crate::config::VerdictConfig;
use crate::context::{mean_result_feasible, VerdictAnswer, VerdictContext};
use crate::error::{VerdictError, VerdictResult};
use crate::planner::{PlanningContext, SamplePlanner};
use crate::rewrite::{analyze_query, rewrite, AggClass, RewriteOutput};
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Arc;
use std::time::Instant;
use verdict_engine::BlockScan;
use verdict_sql::ast::{Query, Statement};
use verdict_sql::printer::print_statement;

/// One refinement step of a progressive query: the approximate answer (and
/// its confidence intervals) for the scramble prefix consumed so far.
#[derive(Debug, Clone)]
pub struct ProgressFrame {
    /// The assembled answer for the prefix: estimates, error summaries, and
    /// (when `error_columns` is on) `<column>_err` interval half-widths.
    pub answer: VerdictAnswer,
    /// 1-based frame number within the stream.
    pub index: usize,
    /// Scramble rows consumed when this frame was assembled.
    pub rows_seen: u64,
    /// Total scramble rows the stream would consume if run to completion.
    pub total_rows: u64,
    /// `rows_seen / total_rows` (1.0 for a completed or single-frame stream).
    pub fraction: f64,
    /// True for the stream's final frame.
    pub last: bool,
    /// True when this (final) frame ended the stream because the target
    /// error was met before the scramble was exhausted.
    pub early_stopped: bool,
}

/// Internal state of a [`ProgressStream`].
enum StreamState {
    /// Block-by-block execution over the rewritten mean query.
    Progressive {
        scan: Box<dyn BlockScan>,
        rewritten: Box<RewriteOutput>,
        /// Printed SQL of the rewritten mean query (reported per frame).
        mean_sql: String,
        used_samples: Vec<String>,
        /// Cache bookkeeping for the completed stream's final frame.
        cache_key: Option<String>,
        pre_versions: Option<HashMap<String, u64>>,
    },
    /// The query is outside the progressive class: one frame, computed by
    /// the one-shot path (cache-read skipped so the stream observes fresh
    /// data; the result is still inserted for future `SELECT`s).
    Single {
        /// Run exactly on base tables (session bypass).
        bypass: bool,
    },
    /// Stream finished (or failed); no further frames.
    Done,
}

/// A pull-based progressive execution: an iterator of
/// [`ProgressFrame`]s.  Obtain one from
/// [`VerdictSession::stream`](crate::session::VerdictSession::stream);
/// dropping it abandons the remaining blocks with no side effects.
pub struct ProgressStream {
    ctx: Arc<VerdictContext>,
    cfg: VerdictConfig,
    /// The original (inner) query statement and its printed SQL.
    stmt: Statement,
    sql: String,
    state: StreamState,
    index: usize,
    started: Instant,
}

impl ProgressStream {
    /// Plans a progressive execution for `query` under an already-resolved
    /// configuration.  Never fails for *unsupported* shapes — those fall
    /// back to a single-frame stream; errors here are planning-level
    /// (unparseable rewrites, missing tables surface on the first frame).
    pub(crate) fn open(
        ctx: Arc<VerdictContext>,
        query: Query,
        cfg: VerdictConfig,
        bypass: bool,
    ) -> ProgressStream {
        ctx.streams.started.fetch_add(1, Relaxed);
        let stmt = Statement::Query(Box::new(query));
        let sql = print_statement(&stmt, ctx.dialect());
        let state = if bypass {
            ctx.streams.fallbacks.fetch_add(1, Relaxed);
            StreamState::Single { bypass: true }
        } else {
            match Self::plan_progressive(&ctx, &stmt, &cfg) {
                Some(state) => state,
                None => {
                    ctx.streams.fallbacks.fetch_add(1, Relaxed);
                    StreamState::Single { bypass: false }
                }
            }
        };
        ProgressStream {
            ctx,
            cfg,
            stmt,
            sql,
            state,
            index: 0,
            started: Instant::now(),
        }
    }

    /// Attempts the progressive plan; `None` means "fall back to one-shot".
    fn plan_progressive(
        ctx: &Arc<VerdictContext>,
        stmt: &Statement,
        cfg: &VerdictConfig,
    ) -> Option<StreamState> {
        let query = match stmt {
            Statement::Query(q) => q.as_ref(),
            _ => return None,
        };
        let analysis = analyze_query(query).ok()?;
        // Progressive execution covers the single-table, mean-like class;
        // count-distinct and extreme statistics would need their own side
        // queries per frame and take the one-shot path instead.
        if analysis.tables.len() != 1
            || analysis.has_class(AggClass::Distinct)
            || analysis.has_class(AggClass::Extreme)
        {
            return None;
        }
        let mut row_counts: HashMap<String, u64> = HashMap::new();
        for t in &analysis.tables {
            let rows = ctx.connection().table_row_count(&t.table).ok()?;
            row_counts.insert(t.table.to_ascii_lowercase(), rows);
        }
        let planner = SamplePlanner::new(ctx.meta(), cfg);
        let plan = planner.plan(
            &analysis.table_refs(&row_counts),
            &PlanningContext {
                group_columns: analysis.group_column_names(),
                distinct_columns: analysis.distinct_column_names(),
                io_budget: cfg.io_budget,
            },
        );
        if !plan.uses_samples() {
            return None;
        }
        // Append maintenance inserts batch rows unshuffled at the sample's
        // tail, so a prefix of such a scramble is no longer a uniform
        // subsample — intermediate frames would be biased toward the old
        // data while claiming full-population coverage.  Decline and answer
        // one-shot (still correct); a batchless REFRESH rebuild restores
        // the shuffle and with it progressive execution.
        if plan
            .choices
            .iter()
            .any(|c| c.sample.as_ref().is_some_and(|s| s.appended_rows > 0))
        {
            return None;
        }
        let rewritten = rewrite(&analysis, &plan, cfg).ok()?;
        let mean_stmt = rewritten.mean_query.as_ref()?;
        let mean_sql = print_statement(mean_stmt, ctx.dialect());
        // Snapshot cache-dependency versions BEFORE the scan pins its input
        // (mirroring the one-shot path's insert-safety argument): a write
        // landing between the snapshot and the pin leaves the completed
        // answer stored under the pre-write versions, where revalidation
        // drops it — the other order could serve a pre-write answer under
        // post-write versions forever.
        let cache_key = ctx.cache_key(stmt, cfg);
        let pre_versions = match &cache_key {
            Some(_) => ctx.snapshot_versions(stmt),
            None => None,
        };
        let scan = ctx.connection().open_block_scan(&mean_sql)?;
        let used_samples: Vec<String> = rewritten
            .plan
            .choices
            .iter()
            .filter_map(|c| c.sample.as_ref().map(|s| s.sample_table.clone()))
            .collect();
        Some(StreamState::Progressive {
            scan,
            rewritten: Box::new(rewritten),
            mean_sql,
            used_samples,
            cache_key,
            pre_versions,
        })
    }

    /// The shared context this stream executes on.
    pub fn context(&self) -> &Arc<VerdictContext> {
        &self.ctx
    }

    /// True when the stream executes block by block (false: single-frame
    /// fallback).
    pub fn is_progressive(&self) -> bool {
        matches!(self.state, StreamState::Progressive { .. })
    }

    /// Drives the stream to its end and returns the final frame (the
    /// `STREAM` statement's single-response alias).  Early-stop semantics
    /// are identical to pulling the frames one by one: with a target error
    /// set, blocks are consumed and evaluated frame-by-frame so the stream
    /// can stop on a strict prefix; without one, no frame can end the
    /// stream early, so the remaining blocks are consumed in one step
    /// (skipping the per-block snapshots a frame-by-frame drain would pay).
    pub fn final_frame(mut self) -> VerdictResult<ProgressFrame> {
        if self.cfg.max_relative_error.is_none() {
            self.cfg.stream_max_frames = 1;
        }
        let mut last = None;
        for frame in &mut self {
            last = Some(frame?);
        }
        last.ok_or_else(|| VerdictError::Answer("stream produced no frames".to_string()))
    }

    fn next_progressive(&mut self) -> VerdictResult<ProgressFrame> {
        let StreamState::Progressive {
            scan,
            rewritten,
            mean_sql,
            used_samples,
            cache_key,
            pre_versions,
        } = &mut self.state
        else {
            unreachable!("next_progressive called on a non-progressive stream");
        };
        self.index += 1;
        // When a frame cap is configured and this frame reaches it, consume
        // everything left so the last emitted frame is the complete answer.
        let finish_now = self.cfg.stream_max_frames > 0 && self.index >= self.cfg.stream_max_frames;
        let block = self.cfg.stream_block_rows.max(1) as u64;
        loop {
            let consumed = scan.advance(block)?;
            if consumed == 0 || !finish_now {
                break;
            }
        }
        let result = scan.snapshot()?;
        let complete = scan.done();
        let rows_seen = scan.rows_seen();
        let total_rows = scan.total_rows();
        // A strict prefix sees each population tuple with probability
        // p·(k/n) rather than p (the scramble is shuffled at build time, so
        // the first k of its n rows are a uniform subsample): rescale the
        // Horvitz–Thompson totals (count/sum) by n/k so every frame
        // estimates the full-population answer.  Ratio and scale-free
        // statistics need no correction, and the factor is exactly 1 on the
        // final frame — bit-identity with the one-shot answer is untouched.
        let mean_table = if complete || rows_seen == 0 {
            result.table
        } else {
            scale_prefix_totals(
                result.table,
                rewritten,
                total_rows as f64 / rows_seen as f64,
            )
        };
        let assembled = assemble(rewritten, Some(&mean_table), None, None, &self.cfg)?;
        let mut answer = VerdictAnswer {
            table: assembled.table,
            exact: false,
            cached: false,
            errors: assembled.errors,
            rewritten_sql: vec![mean_sql.clone()],
            elapsed: self.started.elapsed(),
            rows_scanned: rows_seen,
            used_samples: used_samples.clone(),
        };
        // Early stop: the target error is met by a strict prefix.  Guard
        // against trivially "perfect" empty frames — no groups means no
        // error summaries, not zero error.
        let worst = answer.max_relative_error();
        let target_met = match self.cfg.max_relative_error {
            Some(t) => !answer.errors.is_empty() && worst.is_finite() && worst <= t,
            None => false,
        };
        let early_stopped = target_met && !complete;
        let last = complete || early_stopped;

        if complete {
            // Mirror the one-shot endgame exactly: infeasible grouping or a
            // violated accuracy contract turns the final frame into the
            // exact answer — precisely when a plain SELECT would have.
            let feasible = mean_result_feasible(&rewritten.analysis, &mean_table, &self.cfg);
            let contract_ok = match self.cfg.max_relative_error {
                Some(t) => worst <= t,
                None => true,
            };
            if !feasible || !contract_ok {
                let mut exact = self.ctx.passthrough(&self.sql, self.started)?;
                exact.rewritten_sql.insert(0, mean_sql.clone());
                answer = exact;
            }
            // The completed answer is exactly what a one-shot SELECT would
            // produce: make the next identical SELECT a cache hit.
            if let (Some(key), Some(snapshot)) = (cache_key.take(), pre_versions.take()) {
                if let Some(versions) =
                    VerdictContext::dependency_versions(&snapshot, &self.stmt, &answer)
                {
                    self.ctx.cache().insert(key, versions, answer.clone());
                }
            }
            self.ctx.streams.completed.fetch_add(1, Relaxed);
        } else if early_stopped {
            self.ctx.streams.early_stops.fetch_add(1, Relaxed);
        }
        if last {
            self.state = StreamState::Done;
        }
        self.ctx.streams.frames.fetch_add(1, Relaxed);
        Ok(ProgressFrame {
            answer,
            index: self.index,
            rows_seen,
            total_rows,
            fraction: if total_rows == 0 {
                1.0
            } else {
                rows_seen as f64 / total_rows as f64
            },
            last,
            early_stopped,
        })
    }

    fn next_single(&mut self, bypass: bool) -> VerdictResult<ProgressFrame> {
        self.index += 1;
        self.state = StreamState::Done;
        let answer = if bypass {
            self.ctx.execute_exact(&self.sql)?
        } else {
            self.ctx
                .execute_skip_cache_read(&self.stmt, &self.sql, &self.cfg)?
        };
        self.ctx.streams.frames.fetch_add(1, Relaxed);
        let rows = answer.rows_scanned;
        Ok(ProgressFrame {
            answer,
            index: self.index,
            rows_seen: rows,
            total_rows: rows,
            fraction: 1.0,
            last: true,
            early_stopped: false,
        })
    }
}

/// Rescales the per-subsample Horvitz–Thompson totals (`count`/`sum`
/// estimate columns) of a prefix mean-result by `inv_fraction = n/k`.  Cell
/// sizes and scale-free statistics (avg, variance, quantiles) are left
/// untouched; scaling every per-cell estimate scales the assembled point
/// estimate *and* its interval coherently.
fn scale_prefix_totals(
    mut table: verdict_engine::Table,
    rewritten: &RewriteOutput,
    inv_fraction: f64,
) -> verdict_engine::Table {
    for spec in &rewritten.analysis.aggregates {
        if spec.class != AggClass::MeanLike || !matches!(spec.call.name.as_str(), "count" | "sum") {
            continue;
        }
        let name = format!("{}{}", crate::rewrite::columns::EST_PREFIX, spec.index);
        if let Some(idx) = table.schema.index_of(&name) {
            let scaled: Vec<Option<f64>> = table.columns[idx]
                .iter()
                .map(|v| v.as_f64().map(|x| x * inv_fraction))
                .collect();
            table.columns[idx] = verdict_engine::Column::from_opt_f64(scaled);
        }
    }
    table
}

impl Iterator for ProgressStream {
    type Item = VerdictResult<ProgressFrame>;

    fn next(&mut self) -> Option<Self::Item> {
        let result = match &self.state {
            StreamState::Done => return None,
            StreamState::Single { bypass } => {
                let bypass = *bypass;
                self.next_single(bypass)
            }
            StreamState::Progressive { .. } => self.next_progressive(),
        };
        if result.is_err() {
            // An error ends the stream; later `next` calls return None.
            self.state = StreamState::Done;
        }
        Some(result)
    }
}
