//! The AQP Rewriter: VerdictDB's core query transformation (§4 and §5).
//!
//! Given an analytical query and a sample plan, the rewriter produces new SQL
//! that — executed by any standard relational engine — returns, for every
//! (output group, subsample id) cell, an *unbiased per-subsample estimate* of
//! each mean-like aggregate plus the cell size.  The Answer Rewriter
//! ([`crate::answer`]) then combines those cells into the final approximate
//! answer and its error bounds, exactly as variational subsampling prescribes
//! (Definition 1 and Theorem 2).
//!
//! The rewrite follows the paper's Query 9 pattern:
//!
//! * each sampled relation is wrapped in a derived table that assigns every
//!   tuple a random subsample id `sid ∈ [1, b]` (the *variational table* of
//!   Definition 1; with the default `ns = n/b` no tuple is discarded);
//! * joins of two variational tables reassign `sid` with the pairing function
//!   `h(i, j)` of Theorem 4, so a single join plus a projection produces the
//!   variational table of the join;
//! * per-subsample estimates are Horvitz–Thompson style: they divide by the
//!   sampling-probability column every sample table carries, and re-scale by
//!   the group's total sample size via a window function;
//! * aggregates are split into three classes — mean-like (variational
//!   subsampling), count-distinct (scaled estimate on a hashed sample), and
//!   extreme statistics (`min`/`max`, always computed exactly on the base
//!   tables) — mirroring the decomposition described in §2.2.

use crate::config::VerdictConfig;
use crate::error::{VerdictError, VerdictResult};
use crate::planner::{SamplePlan, TableRef};
use crate::sample::{SampleMeta, SampleType, SAMPLING_PROB_COLUMN, SUBSAMPLE_DRAW_COLUMN};
use std::collections::HashMap;
use verdict_sql::ast::*;
use verdict_sql::dialect::GenericDialect;
use verdict_sql::printer::print_expr;
use verdict_sql::visitor::{transform_query_tables, walk_expr};

/// How an aggregate is approximated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggClass {
    /// count / sum / avg / variance / stddev / median / quantile — estimated
    /// with variational subsampling.
    MeanLike,
    /// count(distinct …) — estimated from a hashed (universe) sample.
    Distinct,
    /// min / max — never approximated; computed exactly on base tables.
    Extreme,
}

/// One distinct aggregate call appearing in the query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateSpec {
    /// Index used to name the estimate column (`verdict_est_<index>` etc.).
    pub index: usize,
    /// The original call.
    pub call: FunctionCall,
    /// Approximation class.
    pub class: AggClass,
}

/// One column of the final (user-visible) result.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputColumn {
    /// The i-th GROUP BY expression.
    GroupKey {
        /// Position in the GROUP BY list.
        index: usize,
        /// User-visible column name.
        name: String,
    },
    /// An expression over aggregate calls (possibly a bare aggregate).
    Aggregate {
        /// The output expression in terms of aggregate calls.
        expr: Expr,
        /// User-visible column name.
        name: String,
    },
}

impl OutputColumn {
    /// The user-visible column name.
    pub fn name(&self) -> &str {
        match self {
            OutputColumn::GroupKey { name, .. } | OutputColumn::Aggregate { name, .. } => name,
        }
    }
}

/// Everything the rewriter and answer rewriter need to know about a query.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// The original query (after comparison-subquery flattening, when applied).
    pub query: Query,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// The distinct aggregate calls.
    pub aggregates: Vec<AggregateSpec>,
    /// The final output columns, in order.
    pub output: Vec<OutputColumn>,
    /// Base tables referenced in the FROM clause (alias → info).
    pub tables: Vec<QueryTable>,
    /// HAVING predicate (applied by the answer rewriter).
    pub having: Option<Expr>,
    /// ORDER BY items (applied by the answer rewriter).
    pub order_by: Vec<OrderByItem>,
    /// LIMIT (applied by the answer rewriter).
    pub limit: Option<u64>,
}

/// One base-table reference in the FROM clause.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTable {
    /// Binding name the query refers to the table by.
    pub alias: String,
    /// The underlying base-table name.
    pub table: String,
    /// Columns of this table used in equi-join conditions.
    pub join_columns: Vec<String>,
}

impl QueryAnalysis {
    /// Bare (unqualified, lower-cased) names of the grouping columns, used by
    /// the planner's advantage factors.
    pub fn group_column_names(&self) -> Vec<String> {
        self.group_by
            .iter()
            .filter_map(|g| match g {
                Expr::Column { name, .. } => Some(name.to_ascii_lowercase()),
                _ => None,
            })
            .collect()
    }

    /// Bare names of count-distinct argument columns.
    pub fn distinct_column_names(&self) -> Vec<String> {
        self.aggregates
            .iter()
            .filter(|a| a.class == AggClass::Distinct)
            .filter_map(|a| a.call.args.first())
            .filter_map(|e| match e {
                Expr::Column { name, .. } => Some(name.to_ascii_lowercase()),
                _ => None,
            })
            .collect()
    }

    /// Planner-facing table references (row counts filled in by the caller).
    pub fn table_refs(&self, row_counts: &HashMap<String, u64>) -> Vec<TableRef> {
        self.tables
            .iter()
            .map(|t| TableRef {
                alias: t.alias.clone(),
                table: t.table.clone(),
                rows: *row_counts.get(&t.table.to_ascii_lowercase()).unwrap_or(&0),
                join_columns: t.join_columns.clone(),
            })
            .collect()
    }

    /// True when any aggregate belongs to the given class.
    pub fn has_class(&self, class: AggClass) -> bool {
        self.aggregates.iter().any(|a| a.class == class)
    }
}

/// The rewritten statements for one incoming query, plus the metadata the
/// answer rewriter needs to assemble the final result.
#[derive(Debug, Clone)]
pub struct RewriteOutput {
    /// The analysis of the original query.
    pub analysis: QueryAnalysis,
    /// The sample plan the rewrite was produced under.
    pub plan: SamplePlan,
    /// Variational-subsampling query for the mean-like aggregates.
    pub mean_query: Option<Statement>,
    /// Scaled count-distinct query plus, per aggregate index, the scale factor
    /// to apply to the raw result (1/τ when a hashed sample was used).
    pub distinct_query: Option<(Statement, HashMap<usize, f64>)>,
    /// Exact query for extreme statistics (min/max), run on base tables.
    pub extreme_query: Option<Statement>,
    /// Number of subsamples used.
    pub subsample_count: u64,
}

// ---------------------------------------------------------------------------
// Query analysis
// ---------------------------------------------------------------------------

/// Analyses a query and decides whether VerdictDB can approximate it
/// (Table 1's supported class).  Unsupported queries yield
/// [`VerdictError::Unsupported`] so the caller can pass them through.
pub fn analyze_query(query: &Query) -> VerdictResult<QueryAnalysis> {
    // Flatten correlated comparison subqueries first (§2.2).
    let query = crate::flatten::flatten_comparison_subqueries(query.clone());

    if query.from.is_empty() {
        return Err(VerdictError::Unsupported("query has no FROM clause".into()));
    }
    // EXISTS predicates are outside the supported class.
    let mut has_exists = false;
    let mut has_window = false;
    verdict_sql::visitor::walk_query(&query, &mut |e| {
        if matches!(e, Expr::Exists { .. }) {
            has_exists = true;
        }
        if let Expr::Function(f) = e {
            if f.over.is_some() {
                has_window = true;
            }
        }
    });
    if has_exists {
        return Err(VerdictError::Unsupported(
            "EXISTS subqueries are not approximated".into(),
        ));
    }
    if has_window {
        return Err(VerdictError::Unsupported(
            "window functions in the input query are not approximated".into(),
        ));
    }

    // FROM must consist of base tables joined by equi-joins (derived tables
    // are handled by the nested-query path in the context, not here).
    let mut tables: Vec<QueryTable> = Vec::new();
    for twj in &query.from {
        collect_table(&twj.relation, &mut tables)?;
        for j in &twj.joins {
            collect_table(&j.relation, &mut tables)?;
            if let Some(c) = &j.constraint {
                record_join_columns(c, &mut tables);
            }
        }
    }

    // Projection analysis.
    let group_by = query.group_by.clone();
    let mut output = Vec::new();
    let mut aggregates: Vec<AggregateSpec> = Vec::new();
    for (i, item) in query.projection.iter().enumerate() {
        let expr = match item.expr() {
            Some(e) => e.clone(),
            None => {
                return Err(VerdictError::Unsupported(
                    "SELECT * is not meaningful for aggregate approximation".into(),
                ))
            }
        };
        let name = item
            .alias()
            .map(|s| s.to_string())
            .unwrap_or_else(|| default_name(&expr, i));
        if expr.contains_aggregate() {
            register_aggregates(&expr, &mut aggregates)?;
            output.push(OutputColumn::Aggregate { expr, name });
        } else if let Some(gidx) = group_key_index(&expr, &group_by) {
            output.push(OutputColumn::GroupKey { index: gidx, name });
        } else {
            return Err(VerdictError::Unsupported(format!(
                "projection item '{}' is neither an aggregate nor a grouping expression",
                print_expr(&expr, &GenericDialect)
            )));
        }
    }
    if let Some(h) = &query.having {
        register_aggregates(h, &mut aggregates)?;
    }
    if aggregates.is_empty() {
        return Err(VerdictError::Unsupported(
            "query has no aggregate functions".into(),
        ));
    }

    Ok(QueryAnalysis {
        group_by,
        aggregates,
        output,
        tables,
        having: query.having.clone(),
        order_by: query.order_by.clone(),
        limit: query.limit,
        query,
    })
}

fn collect_table(tf: &TableFactor, tables: &mut Vec<QueryTable>) -> VerdictResult<()> {
    match tf {
        TableFactor::Table { name, alias } => {
            let binding = alias
                .clone()
                .unwrap_or_else(|| name.base_name().to_string());
            tables.push(QueryTable {
                alias: binding,
                table: name.key(),
                join_columns: Vec::new(),
            });
            Ok(())
        }
        TableFactor::Derived { .. } => Err(VerdictError::Unsupported(
            "derived tables in FROM are handled by the nested-query path".into(),
        )),
    }
}

fn record_join_columns(constraint: &Expr, tables: &mut [QueryTable]) {
    walk_expr(constraint, &mut |e| {
        if let Expr::BinaryOp {
            left,
            op: BinaryOp::Eq,
            right,
        } = e
        {
            for side in [left.as_ref(), right.as_ref()] {
                if let Expr::Column {
                    table: Some(alias),
                    name,
                } = side
                {
                    if let Some(t) = tables
                        .iter_mut()
                        .find(|t| t.alias.eq_ignore_ascii_case(alias))
                    {
                        if !t.join_columns.iter().any(|c| c.eq_ignore_ascii_case(name)) {
                            t.join_columns.push(name.to_ascii_lowercase());
                        }
                    }
                } else if let Expr::Column { table: None, name } = side {
                    // Unqualified join column: attribute it to every table (it
                    // only influences the planner's universe-join advantage).
                    for t in tables.iter_mut() {
                        if !t.join_columns.iter().any(|c| c.eq_ignore_ascii_case(name)) {
                            t.join_columns.push(name.to_ascii_lowercase());
                        }
                    }
                }
            }
        }
    });
}

fn register_aggregates(expr: &Expr, aggregates: &mut Vec<AggregateSpec>) -> VerdictResult<()> {
    let mut err = None;
    walk_expr(expr, &mut |e| {
        if err.is_some() {
            return;
        }
        if let Some(call) = e.as_aggregate() {
            let key = print_expr(e, &GenericDialect);
            let already = aggregates
                .iter()
                .any(|a| print_expr(&Expr::Function(a.call.clone()), &GenericDialect) == key);
            if already {
                return;
            }
            match classify(call) {
                Ok(class) => aggregates.push(AggregateSpec {
                    index: aggregates.len(),
                    call: call.clone(),
                    class,
                }),
                Err(e) => err = Some(e),
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

fn classify(call: &FunctionCall) -> VerdictResult<AggClass> {
    let name = call.name.as_str();
    if is_extreme_aggregate(name) {
        return Ok(AggClass::Extreme);
    }
    if name == "count" && call.distinct {
        return Ok(AggClass::Distinct);
    }
    match name {
        "count" | "sum" | "avg" | "variance" | "var_samp" | "stddev" | "stddev_samp" | "median"
        | "quantile" | "percentile" => Ok(AggClass::MeanLike),
        "ndv" | "approx_count_distinct" => Ok(AggClass::Distinct),
        "approx_median" => Ok(AggClass::MeanLike),
        other => Err(VerdictError::Unsupported(format!(
            "aggregate function {other}"
        ))),
    }
}

fn group_key_index(expr: &Expr, group_by: &[Expr]) -> Option<usize> {
    for (i, g) in group_by.iter().enumerate() {
        if g == expr {
            return Some(i);
        }
        // `SELECT city ... GROUP BY t.city` and vice versa.
        if let (Expr::Column { name: a, .. }, Expr::Column { name: b, .. }) = (g, expr) {
            if a.eq_ignore_ascii_case(b) {
                return Some(i);
            }
        }
    }
    None
}

fn default_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function(f) => f.name.clone(),
        _ => format!("col_{position}"),
    }
}

// ---------------------------------------------------------------------------
// Rewriting
// ---------------------------------------------------------------------------

/// Names used in rewritten SQL, shared with the answer rewriter.
pub mod columns {
    /// Group-key output column prefix (`verdict_g0`, `verdict_g1`, …).
    pub const GROUP_PREFIX: &str = "verdict_g";
    /// Mean-like estimate column prefix (`verdict_est_<agg index>`).
    pub const EST_PREFIX: &str = "verdict_est_";
    /// Count-distinct raw-estimate column prefix.
    pub const DISTINCT_PREFIX: &str = "verdict_dst_";
    /// Extreme-statistic column prefix.
    pub const EXTREME_PREFIX: &str = "verdict_ext_";
    /// Subsample id column.
    pub const SID: &str = "verdict_sid";
    /// Subsample size column.
    pub const SUB_SIZE: &str = "verdict_sub_size";
}

/// Rewrites a query into its approximate parts according to the sample plan.
pub fn rewrite(
    analysis: &QueryAnalysis,
    plan: &SamplePlan,
    config: &VerdictConfig,
) -> VerdictResult<RewriteOutput> {
    let b = config.effective_subsamples();
    let mean_query = if analysis.has_class(AggClass::MeanLike) {
        Some(Statement::Query(Box::new(rewrite_mean_like(
            analysis, plan, b,
        )?)))
    } else {
        None
    };
    let distinct_query = if analysis.has_class(AggClass::Distinct) {
        let (q, scales) = rewrite_distinct(analysis, plan)?;
        Some((Statement::Query(Box::new(q)), scales))
    } else {
        None
    };
    let extreme_query = if analysis.has_class(AggClass::Extreme) {
        Some(Statement::Query(Box::new(rewrite_extreme(analysis)?)))
    } else {
        None
    };
    Ok(RewriteOutput {
        analysis: analysis.clone(),
        plan: plan.clone(),
        mean_query,
        distinct_query,
        extreme_query,
        subsample_count: b,
    })
}

/// Builds the FROM clause with sampled tables replaced by variational tables
/// (derived tables that attach a random `verdict_sid_<k>` to every tuple).
/// Returns the substituted FROM plus, per sampled alias, its sid column name,
/// probability column reference, and sample metadata.
fn substitute_from(
    query: &Query,
    plan: &SamplePlan,
    b: u64,
    with_sid: bool,
) -> (Vec<TableWithJoins>, Vec<SampledRelation>) {
    let mut from = query.from.clone();
    let mut sampled: Vec<SampledRelation> = Vec::new();
    let mut counter = 0usize;
    let mut query_like = Query::empty();
    query_like.from = std::mem::take(&mut from);
    transform_query_tables(&mut query_like, &mut |name, alias| {
        let binding = alias
            .map(|a| a.to_string())
            .unwrap_or_else(|| name.base_name().to_string());
        let choice = plan.choice_for(&binding)?;
        let sample = choice.sample.as_ref()?;
        if name.key() != choice.table_ref.table {
            return None;
        }
        let k = counter;
        counter += 1;
        let sid_column = format!("verdict_sid_{k}");
        // The subsample id comes from the uniform draw *stored in the
        // scramble* (`1 + floor(u·b)`), not from a fresh `rand()`: the
        // assignment is frozen per tuple, so the same query over unchanged
        // data always produces the same answer and interval — which is what
        // lets a progressive stream's final frame match the one-shot answer
        // bit for bit, and what makes cached answers reproducible.
        let inner_sql = if with_sid {
            format!(
                "SELECT *, CAST(1 + floor({SUBSAMPLE_DRAW_COLUMN} * {b}) AS BIGINT) \
                 AS {sid_column} FROM {}",
                sample.sample_table
            )
        } else {
            format!("SELECT * FROM {}", sample.sample_table)
        };
        let subquery = match verdict_sql::parse_statement(&inner_sql) {
            Ok(Statement::Query(q)) => q,
            _ => return None,
        };
        sampled.push(SampledRelation {
            alias: binding.clone(),
            sid_column,
            meta: sample.clone(),
        });
        Some(TableFactor::Derived {
            subquery,
            alias: Some(binding),
        })
    });
    (query_like.from, sampled)
}

/// A sampled relation in the rewritten FROM clause.
#[derive(Debug, Clone)]
struct SampledRelation {
    alias: String,
    sid_column: String,
    meta: SampleMeta,
}

/// The combined subsample-id expression: a single variational table keeps its
/// own sid; two are paired with `h(i, j)` (Theorem 4); more fold left.
fn combined_sid_expr(sampled: &[SampledRelation], b: u64) -> Option<Expr> {
    let sqrt_b = (b as f64).sqrt().round() as u64;
    let mut iter = sampled.iter();
    let first = iter.next()?;
    let mut expr_sql = format!("{}.{}", first.alias, first.sid_column);
    for next in iter {
        // h(i, j) = floor((i-1)/√b)·√b + floor((j-1)/√b) + 1
        expr_sql = format!(
            "(floor(({expr_sql} - 1) / {sqrt_b}) * {sqrt_b} + floor(({}.{} - 1) / {sqrt_b}) + 1)",
            next.alias, next.sid_column
        );
    }
    verdict_sql::parse_expression(&expr_sql).ok()
}

/// The combined sampling-probability expression for the (possibly irregular)
/// sample produced by joining the chosen samples: the product of per-relation
/// probabilities, except that two hashed samples joined on their hash column
/// share the same inclusion event, so the joint probability is the minimum of
/// the two (§5.1 / Appendix E).
fn combined_prob_expr(sampled: &[SampledRelation]) -> Option<String> {
    if sampled.is_empty() {
        return None;
    }
    let all_hashed_on_join = sampled.len() >= 2
        && sampled
            .iter()
            .all(|s| matches!(s.meta.sample_type, SampleType::Hashed { .. }));
    if all_hashed_on_join {
        let args = sampled
            .iter()
            .map(|s| format!("{}.{}", s.alias, SAMPLING_PROB_COLUMN))
            .collect::<Vec<_>>()
            .join(", ");
        return Some(format!("least({args})"));
    }
    Some(
        sampled
            .iter()
            .map(|s| format!("{}.{}", s.alias, SAMPLING_PROB_COLUMN))
            .collect::<Vec<_>>()
            .join(" * "),
    )
}

/// Builds the variational-subsampling query for the mean-like aggregates.
fn rewrite_mean_like(analysis: &QueryAnalysis, plan: &SamplePlan, b: u64) -> VerdictResult<Query> {
    let (from, sampled) = substitute_from(&analysis.query, plan, b, true);
    if sampled.is_empty() {
        return Err(VerdictError::NoSampleAvailable(
            "the sample plan does not use any sample table".into(),
        ));
    }
    let sid_expr = combined_sid_expr(&sampled, b)
        .ok_or_else(|| VerdictError::Answer("failed to build subsample-id expression".into()))?;
    let prob_sql = combined_prob_expr(&sampled)
        .ok_or_else(|| VerdictError::Answer("failed to build probability expression".into()))?;

    let mut projection: Vec<SelectItem> = Vec::new();
    for (i, g) in analysis.group_by.iter().enumerate() {
        projection.push(SelectItem::ExprWithAlias {
            expr: g.clone(),
            alias: format!("{}{i}", columns::GROUP_PREFIX),
        });
    }
    for spec in &analysis.aggregates {
        if spec.class != AggClass::MeanLike {
            continue;
        }
        let est_sql = mean_estimate_sql(&spec.call, &prob_sql, b)?;
        let est_expr = verdict_sql::parse_expression(&est_sql)
            .map_err(|e| VerdictError::Answer(format!("internal estimate expression: {e}")))?;
        projection.push(SelectItem::ExprWithAlias {
            expr: est_expr,
            alias: format!("{}{}", columns::EST_PREFIX, spec.index),
        });
    }
    projection.push(SelectItem::ExprWithAlias {
        expr: sid_expr.clone(),
        alias: columns::SID.to_string(),
    });
    projection.push(SelectItem::ExprWithAlias {
        expr: Expr::func("count", vec![Expr::Wildcard]),
        alias: columns::SUB_SIZE.to_string(),
    });

    let mut group_by = analysis.group_by.clone();
    group_by.push(sid_expr);

    Ok(Query {
        distinct: false,
        projection,
        from,
        selection: analysis.query.selection.clone(),
        group_by,
        having: None,
        order_by: Vec::new(),
        limit: None,
    })
}

/// Per-subsample unbiased estimate expression for one mean-like aggregate.
///
/// Count and sum use the Horvitz–Thompson total of the subsample scaled by
/// the number of subsamples `b` (a population tuple lands in one specific
/// subsample with probability `p/b`); averaged over all `b` subsamples this
/// recovers exactly the full-sample HT estimate, while its spread across
/// subsamples carries the sampling variability Theorem 2 needs.  Averages are
/// ratio estimators and need no scaling; variance-, quantile-, and
/// median-style statistics are scale-free.
fn mean_estimate_sql(call: &FunctionCall, prob_sql: &str, b: u64) -> VerdictResult<String> {
    let arg_sql = call
        .args
        .first()
        .map(|a| print_expr(a, &GenericDialect))
        .unwrap_or_else(|| "*".to_string());
    let sql = match call.name.as_str() {
        "count" => format!("{b} * sum(1.0 / ({prob_sql}))"),
        "sum" => format!("{b} * sum(({arg_sql}) / ({prob_sql}))"),
        "avg" => format!("sum(({arg_sql}) / ({prob_sql})) / sum(1.0 / ({prob_sql}))"),
        // Scale-free statistics: computed directly on the subsample.  The
        // sampling probabilities within a group are (near-)constant, so the
        // unweighted statistic is a consistent estimator.
        "variance" | "var_samp" => format!("variance({arg_sql})"),
        "stddev" | "stddev_samp" => format!("stddev({arg_sql})"),
        "median" | "approx_median" => format!("median({arg_sql})"),
        "quantile" | "percentile" => {
            let q = call
                .args
                .get(1)
                .map(|a| print_expr(a, &GenericDialect))
                .unwrap_or_else(|| "0.5".to_string());
            format!("quantile({arg_sql}, {q})")
        }
        other => {
            return Err(VerdictError::Unsupported(format!(
                "mean-like rewrite for aggregate {other}"
            )))
        }
    };
    Ok(sql)
}

/// Builds the count-distinct part: a plain grouped count(distinct …) over the
/// hashed sample (when the plan chose one on the distinct column), whose raw
/// result the answer rewriter multiplies by 1/τ.
fn rewrite_distinct(
    analysis: &QueryAnalysis,
    plan: &SamplePlan,
) -> VerdictResult<(Query, HashMap<usize, f64>)> {
    // Keep only hashed-sample substitutions whose hash columns cover the
    // distinct columns; everything else reads the base table (exact but safe).
    let distinct_cols = analysis.distinct_column_names();
    let filtered_choices: Vec<_> = plan
        .choices
        .iter()
        .cloned()
        .map(|mut c| {
            let keep = match &c.sample {
                Some(SampleMeta {
                    sample_type: SampleType::Hashed { columns },
                    ..
                }) => columns
                    .iter()
                    .all(|h| distinct_cols.iter().any(|d| d.eq_ignore_ascii_case(h))),
                _ => false,
            };
            if !keep {
                c.sample = None;
            }
            c
        })
        .collect();
    let filtered_plan = SamplePlan {
        choices: filtered_choices,
        score: plan.score,
        io_cost: plan.io_cost,
        effective_ratio: plan.effective_ratio,
    };

    let (from, sampled) = substitute_from(&analysis.query, &filtered_plan, 1, false);

    let mut scales: HashMap<usize, f64> = HashMap::new();
    let scale = sampled
        .first()
        .map(|s| 1.0 / s.meta.ratio.max(f64::MIN_POSITIVE))
        .unwrap_or(1.0);

    let mut projection: Vec<SelectItem> = Vec::new();
    for (i, g) in analysis.group_by.iter().enumerate() {
        projection.push(SelectItem::ExprWithAlias {
            expr: g.clone(),
            alias: format!("{}{i}", columns::GROUP_PREFIX),
        });
    }
    for spec in &analysis.aggregates {
        if spec.class != AggClass::Distinct {
            continue;
        }
        projection.push(SelectItem::ExprWithAlias {
            expr: Expr::Function(spec.call.clone()),
            alias: format!("{}{}", columns::DISTINCT_PREFIX, spec.index),
        });
        scales.insert(spec.index, scale);
    }

    Ok((
        Query {
            distinct: false,
            projection,
            from,
            selection: analysis.query.selection.clone(),
            group_by: analysis.group_by.clone(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        },
        scales,
    ))
}

/// Builds the exact query for extreme statistics (min/max) over base tables.
fn rewrite_extreme(analysis: &QueryAnalysis) -> VerdictResult<Query> {
    let mut projection: Vec<SelectItem> = Vec::new();
    for (i, g) in analysis.group_by.iter().enumerate() {
        projection.push(SelectItem::ExprWithAlias {
            expr: g.clone(),
            alias: format!("{}{i}", columns::GROUP_PREFIX),
        });
    }
    for spec in &analysis.aggregates {
        if spec.class != AggClass::Extreme {
            continue;
        }
        projection.push(SelectItem::ExprWithAlias {
            expr: Expr::Function(spec.call.clone()),
            alias: format!("{}{}", columns::EXTREME_PREFIX, spec.index),
        });
    }
    Ok(Query {
        distinct: false,
        projection,
        from: analysis.query.from.clone(),
        selection: analysis.query.selection.clone(),
        group_by: analysis.group_by.clone(),
        having: None,
        order_by: Vec::new(),
        limit: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::MetaStore;
    use crate::planner::{PlanningContext, SamplePlanner};
    use verdict_sql::parse_statement;
    use verdict_sql::printer::print_statement;

    fn query(sql: &str) -> Query {
        match parse_statement(sql).unwrap() {
            Statement::Query(q) => *q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    fn store() -> MetaStore {
        let store = MetaStore::new();
        store.register(SampleMeta {
            base_table: "orders".into(),
            sample_table: "verdict_sample_orders_uniform".into(),
            sample_type: SampleType::Uniform,
            ratio: 0.01,
            sample_rows: 10_000,
            base_rows: 1_000_000,
            appended_rows: 0,
        });
        store.register(SampleMeta {
            base_table: "order_products".into(),
            sample_table: "verdict_sample_order_products_hashed_order_id".into(),
            sample_type: SampleType::Hashed {
                columns: vec!["order_id".into()],
            },
            ratio: 0.01,
            sample_rows: 30_000,
            base_rows: 3_000_000,
            appended_rows: 0,
        });
        store.register(SampleMeta {
            base_table: "orders".into(),
            sample_table: "verdict_sample_orders_hashed_order_id".into(),
            sample_type: SampleType::Hashed {
                columns: vec!["order_id".into()],
            },
            ratio: 0.01,
            sample_rows: 10_000,
            base_rows: 1_000_000,
            appended_rows: 0,
        });
        store
    }

    fn plan_for(analysis: &QueryAnalysis) -> SamplePlan {
        let store = store();
        let cfg = VerdictConfig::default();
        let planner = SamplePlanner::new(&store, &cfg);
        let mut rows = HashMap::new();
        rows.insert("orders".to_string(), 1_000_000u64);
        rows.insert("order_products".to_string(), 3_000_000u64);
        planner.plan(
            &analysis.table_refs(&rows),
            &PlanningContext {
                group_columns: analysis.group_column_names(),
                distinct_columns: analysis.distinct_column_names(),
                io_budget: 0.02,
            },
        )
    }

    #[test]
    fn analysis_classifies_aggregates_and_groups() {
        let q = query(
            "SELECT city, count(*) AS cnt, sum(price) AS total, max(price) AS biggest \
             FROM orders WHERE price > 10 GROUP BY city",
        );
        let a = analyze_query(&q).unwrap();
        assert_eq!(a.group_by.len(), 1);
        assert_eq!(a.aggregates.len(), 3);
        assert_eq!(a.aggregates[0].class, AggClass::MeanLike);
        assert_eq!(a.aggregates[2].class, AggClass::Extreme);
        assert_eq!(a.output.len(), 4);
        assert_eq!(a.output[0].name(), "city");
        assert!(a.has_class(AggClass::Extreme));
        assert!(!a.has_class(AggClass::Distinct));
    }

    #[test]
    fn unsupported_queries_are_rejected() {
        assert!(analyze_query(&query("SELECT city FROM orders GROUP BY city")).is_err());
        assert!(analyze_query(&query("SELECT * FROM orders")).is_err());
        assert!(analyze_query(&query(
            "SELECT count(*) FROM orders WHERE EXISTS (SELECT 1 FROM order_products)"
        ))
        .is_err());
    }

    #[test]
    fn mean_rewrite_produces_expected_structure() {
        let q = query("SELECT city, count(*) AS cnt, avg(price) AS ap FROM orders GROUP BY city");
        let a = analyze_query(&q).unwrap();
        let plan = plan_for(&a);
        let out = rewrite(&a, &plan, &VerdictConfig::default()).unwrap();
        let stmt = out.mean_query.expect("mean query");
        let sql = print_statement(&stmt, &GenericDialect);
        // the rewritten SQL must parse and contain the key ingredients
        parse_statement(&sql).unwrap();
        assert!(sql.contains("verdict_sample_orders_uniform"), "{sql}");
        assert!(sql.contains("verdict_sid"), "{sql}");
        assert!(sql.contains("verdict_sub_size"), "{sql}");
        assert!(sql.contains("verdict_sampling_prob"), "{sql}");
        assert!(sql.contains("100 * sum(1.0 / "), "{sql}");
        assert!(sql.to_lowercase().contains("group by city, "), "{sql}");
    }

    #[test]
    fn join_rewrite_uses_theorem4_sid_pairing() {
        let q = query(
            "SELECT count(*) AS cnt FROM orders o \
             INNER JOIN order_products p ON o.order_id = p.order_id",
        );
        let a = analyze_query(&q).unwrap();
        let plan = plan_for(&a);
        // both tables should be sampled with hashed samples
        assert!(plan.choices.iter().all(|c| c.sample.is_some()));
        let out = rewrite(&a, &plan, &VerdictConfig::default()).unwrap();
        let sql = print_statement(&out.mean_query.unwrap(), &GenericDialect);
        parse_statement(&sql).unwrap();
        // sqrt(100) = 10 appears in the h(i, j) pairing expression
        assert!(
            sql.contains("floor((o.verdict_sid_0 - 1) / 10) * 10"),
            "{sql}"
        );
        assert!(sql.contains("least(") || sql.contains("*"), "{sql}");
    }

    #[test]
    fn distinct_rewrite_scales_by_inverse_ratio() {
        let q = query("SELECT count(DISTINCT order_id) AS buyers FROM orders");
        let a = analyze_query(&q).unwrap();
        let plan = plan_for(&a);
        let out = rewrite(&a, &plan, &VerdictConfig::default()).unwrap();
        let (stmt, scales) = out.distinct_query.expect("distinct part");
        let sql = print_statement(&stmt, &GenericDialect);
        parse_statement(&sql).unwrap();
        assert!(sql.contains("count(DISTINCT order_id)"), "{sql}");
        assert!((scales[&0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn extreme_aggregates_run_on_base_tables() {
        let q = query("SELECT city, max(price) AS mx, count(*) AS cnt FROM orders GROUP BY city");
        let a = analyze_query(&q).unwrap();
        let plan = plan_for(&a);
        let out = rewrite(&a, &plan, &VerdictConfig::default()).unwrap();
        let sql = print_statement(&out.extreme_query.unwrap(), &GenericDialect);
        assert!(sql.contains("FROM orders"), "{sql}");
        assert!(!sql.contains("verdict_sample"), "{sql}");
        assert!(sql.contains("max(price) AS verdict_ext_"), "{sql}");
    }

    #[test]
    fn group_column_names_feed_the_planner() {
        let q = query("SELECT city, count(*) FROM orders GROUP BY city");
        let a = analyze_query(&q).unwrap();
        assert_eq!(a.group_column_names(), vec!["city".to_string()]);
        let q = query("SELECT count(DISTINCT user_id) FROM orders");
        let a = analyze_query(&q).unwrap();
        assert_eq!(a.distinct_column_names(), vec!["user_id".to_string()]);
    }
}
