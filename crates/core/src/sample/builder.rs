//! SQL generation for sample construction (§3 of the paper).
//!
//! All three offline sample types are created purely with standard SQL
//! (`CREATE TABLE … AS SELECT`), which is the core constraint of a
//! middleware-only AQP engine:
//!
//! * **uniform** — one Bernoulli pass with probability τ;
//! * **hashed (universe)** — keep tuples whose hashed column value lands in
//!   the lowest τ fraction of the hash range;
//! * **stratified** — the two-pass probabilistic approach of §3.2: pass one
//!   counts strata sizes, pass two samples each tuple with a strata-size
//!   dependent probability given by the Lemma 1 staircase function.
//!
//! The generated SQL avoids `rand()` inside `WHERE` clauses when the dialect
//! disallows it (Impala), by materialising the random draw in a derived
//! table first.

use crate::config::VerdictConfig;
use crate::sample::{qualified_columns, SampleType, SAMPLING_PROB_COLUMN, SUBSAMPLE_DRAW_COLUMN};
use crate::stats::build_staircase;
use verdict_sql::Dialect;

/// Resolution of the integer hash used to implement `h(t.C) < τ`.
const HASH_DOMAIN: u64 = 1_000_000;

/// A sequence of SQL statements that creates one sample table, plus the
/// temporary tables it needs (dropped by the trailing statements).
#[derive(Debug, Clone, PartialEq)]
pub struct SamplePlanSql {
    /// Statements to execute in order.
    pub statements: Vec<String>,
    /// The name of the sample table the statements create.
    pub sample_table: String,
}

/// Generates the SQL that creates a sample of `base_table`.
///
/// `base_rows` is the current size of the base table (needed to derive the
/// per-stratum minimum row count of Equation 1) and `base_columns` is the
/// base table's column list.  The explicit list matters whenever a helper
/// `verdict_rand` column is materialised in a derived table (the Impala-safe
/// uniform form and the stratified two-pass form): projecting `SELECT *`
/// there would leak the helper column into the sample's schema, breaking the
/// arity contract that a sample is *base columns + the probability column +
/// the frozen subsample draw* (which incremental append maintenance relies
/// on).
///
/// Every form appends `rand() AS `[`SUBSAMPLE_DRAW_COLUMN`] as the last
/// projected column: one independent uniform draw per surviving tuple,
/// frozen at build time, from which query rewriting derives the variational
/// subsample id (`rand()` in a projection is safe on every dialect — only
/// `rand()` in WHERE is restricted, and that restriction is what the
/// `verdict_rand` helper works around).
///
/// Every form also ends in `ORDER BY rand()`: the sample table is
/// **physically shuffled** at build time — the property that makes it a
/// *scramble*.  Base tables are often ordered by time or key, so a sampled
/// prefix would be a biased slice of history; after the shuffle any prefix
/// of the scramble is a uniform random subsample, which is exactly what
/// progressive execution needs for its block-by-block frames to be honest
/// estimates of the full-population answer.
#[allow(clippy::too_many_arguments)]
pub fn build_sample_sql(
    base_table: &str,
    sample_table: &str,
    sample_type: &SampleType,
    ratio: f64,
    base_rows: u64,
    strata_count: u64,
    base_columns: &[String],
    config: &VerdictConfig,
    dialect: &dyn Dialect,
) -> SamplePlanSql {
    match sample_type {
        SampleType::Uniform => uniform_sql(base_table, sample_table, ratio, base_columns, dialect),
        SampleType::Hashed { columns } => {
            hashed_sql(base_table, sample_table, columns, ratio, dialect)
        }
        SampleType::Stratified { columns } => stratified_sql(
            base_table,
            sample_table,
            columns,
            ratio,
            base_rows,
            strata_count,
            base_columns,
            config,
            dialect,
        ),
        SampleType::Irregular => SamplePlanSql {
            statements: Vec::new(),
            sample_table: sample_table.to_string(),
        },
    }
}

fn uniform_sql(
    base_table: &str,
    sample_table: &str,
    ratio: f64,
    base_columns: &[String],
    dialect: &dyn Dialect,
) -> SamplePlanSql {
    let rand = dialect.random_function();
    let st = dialect.quote_ident(sample_table);
    let bt = dialect.quote_ident(base_table);
    let stmt = if dialect.allows_rand_in_where() {
        // No helper column needed, so `*` is exactly the base columns.
        format!(
            "CREATE TABLE {st} AS SELECT *, {ratio} AS {SAMPLING_PROB_COLUMN}, \
             {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
             FROM {bt} WHERE {rand} < {ratio} ORDER BY {rand}"
        )
    } else {
        // Impala-safe form: materialise the random draw in a derived table,
        // then project the base columns explicitly so the helper stays inside.
        let cols = qualified_columns("verdict_src", base_columns, dialect);
        format!(
            "CREATE TABLE {st} AS SELECT {cols}, {ratio} AS {SAMPLING_PROB_COLUMN}, \
             {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
             FROM (SELECT *, {rand} AS verdict_rand FROM {bt}) AS verdict_src \
             WHERE verdict_src.verdict_rand < {ratio} ORDER BY {rand}"
        )
    };
    SamplePlanSql {
        statements: vec![stmt],
        sample_table: sample_table.to_string(),
    }
}

fn hashed_sql(
    base_table: &str,
    sample_table: &str,
    columns: &[String],
    ratio: f64,
    dialect: &dyn Dialect,
) -> SamplePlanSql {
    // Multi-column universe samples hash the concatenation of the columns.
    let quoted: Vec<String> = columns.iter().map(|c| dialect.quote_ident(c)).collect();
    let key_expr = if quoted.len() == 1 {
        quoted[0].clone()
    } else {
        format!("concat({})", quoted.join(", "))
    };
    let hash = dialect.hash_function(&key_expr, HASH_DOMAIN);
    let threshold = (ratio * HASH_DOMAIN as f64).round() as u64;
    let rand = dialect.random_function();
    let stmt = format!(
        "CREATE TABLE {} AS SELECT *, {ratio} AS {SAMPLING_PROB_COLUMN}, \
         {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
         FROM {} WHERE {hash} < {threshold} ORDER BY {rand}",
        dialect.quote_ident(sample_table),
        dialect.quote_ident(base_table)
    );
    SamplePlanSql {
        statements: vec![stmt],
        sample_table: sample_table.to_string(),
    }
}

#[allow(clippy::too_many_arguments)]
fn stratified_sql(
    base_table: &str,
    sample_table: &str,
    columns: &[String],
    ratio: f64,
    base_rows: u64,
    strata_count: u64,
    base_columns: &[String],
    config: &VerdictConfig,
    dialect: &dyn Dialect,
) -> SamplePlanSql {
    let temp_table = format!("{sample_table}_strata_tmp");
    let tt = dialect.quote_ident(&temp_table);
    let st = dialect.quote_ident(sample_table);
    let bt = dialect.quote_ident(base_table);
    let rand = dialect.random_function();
    let col_list = columns
        .iter()
        .map(|c| dialect.quote_ident(c))
        .collect::<Vec<_>>()
        .join(", ");

    // Equation 1: at least |T|·τ/d tuples per stratum (clamped below by the
    // configured minimum so tiny tables still keep a usable per-group count).
    let d = strata_count.max(1);
    let m = (((base_rows as f64) * ratio / d as f64).ceil() as u64).max(config.stratified_min_rows);

    // Pass 1: strata sizes.
    let pass1 = format!(
        "CREATE TABLE {tt} AS SELECT {col_list}, count(*) AS verdict_strata_size \
         FROM {bt} GROUP BY {col_list}"
    );

    // Staircase CASE expression over strata sizes (§3.2 / Lemma 1).
    let steps = build_staircase(m, base_rows.max(1), config.stratified_delta);
    let mut case_expr = String::from("CASE");
    for step in &steps {
        case_expr.push_str(&format!(
            " WHEN verdict_strata_size > {} THEN {:.8}",
            step.threshold, step.probability
        ));
    }
    case_expr.push_str(" ELSE 1.0 END");

    // Pass 2: Bernoulli-sample each tuple with the strata-dependent probability.
    let join_cond = columns
        .iter()
        .map(|c| {
            let qc = dialect.quote_ident(c);
            format!("verdict_src.{qc} = {tt}.{qc}")
        })
        .collect::<Vec<_>>()
        .join(" AND ");
    let cols = qualified_columns("verdict_src", base_columns, dialect);
    let pass2 = if dialect.allows_rand_in_where() {
        format!(
            "CREATE TABLE {st} AS SELECT {cols}, ({case_expr}) AS {SAMPLING_PROB_COLUMN}, \
             {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
             FROM {bt} AS verdict_src \
             INNER JOIN {tt} ON {join_cond} \
             WHERE {rand} < ({case_expr}) ORDER BY {rand}"
        )
    } else {
        // Impala-safe form: the random draw lives in a derived table; the
        // explicit projection keeps the helper column out of the sample.
        format!(
            "CREATE TABLE {st} AS SELECT {cols}, ({case_expr}) AS {SAMPLING_PROB_COLUMN}, \
             {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
             FROM (SELECT *, {rand} AS verdict_rand FROM {bt}) AS verdict_src \
             INNER JOIN {tt} ON {join_cond} \
             WHERE verdict_src.verdict_rand < ({case_expr}) ORDER BY {rand}"
        )
    };

    let cleanup = format!("DROP TABLE IF EXISTS {tt}");
    SamplePlanSql {
        statements: vec![pass1, pass2, cleanup],
        sample_table: sample_table.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_sql::{GenericDialect, ImpalaDialect, RedshiftDialect};

    fn config() -> VerdictConfig {
        VerdictConfig::for_testing()
    }

    fn base_columns() -> Vec<String> {
        vec!["order_id".into(), "city".into(), "price".into()]
    }

    #[test]
    fn uniform_sample_sql_contains_probability_column() {
        let plan = build_sample_sql(
            "orders",
            "verdict_sample_orders_uniform",
            &SampleType::Uniform,
            0.01,
            1_000_000,
            0,
            &base_columns(),
            &config(),
            &GenericDialect,
        );
        assert_eq!(plan.statements.len(), 1);
        assert!(plan.statements[0].contains("rand() < 0.01"));
        assert!(plan.statements[0].contains(SAMPLING_PROB_COLUMN));
        // every generated statement must parse
        verdict_sql::parse_statement(&plan.statements[0]).unwrap();
    }

    #[test]
    fn impala_uniform_sample_avoids_rand_in_where() {
        let plan = build_sample_sql(
            "orders",
            "s",
            &SampleType::Uniform,
            0.01,
            1_000_000,
            0,
            &base_columns(),
            &config(),
            &ImpalaDialect,
        );
        assert!(plan.statements[0].contains("verdict_rand < 0.01"));
        assert!(plan.statements[0].contains("SELECT *, rand() AS verdict_rand"));
        verdict_sql::parse_statement(&plan.statements[0]).unwrap();
    }

    #[test]
    fn hashed_sample_uses_dialect_hash() {
        let plan = build_sample_sql(
            "orders",
            "s",
            &SampleType::Hashed {
                columns: vec!["order_id".into()],
            },
            0.01,
            1_000_000,
            0,
            &base_columns(),
            &config(),
            &RedshiftDialect,
        );
        assert!(plan.statements[0].contains("crc32"));
        assert!(plan.statements[0].contains("< 10000"));
    }

    #[test]
    fn stratified_sample_generates_two_passes_and_cleanup() {
        let plan = build_sample_sql(
            "orders",
            "s",
            &SampleType::Stratified {
                columns: vec!["city".into()],
            },
            0.01,
            1_000_000,
            24,
            &base_columns(),
            &config(),
            &GenericDialect,
        );
        assert_eq!(plan.statements.len(), 3);
        assert!(plan.statements[0].contains("GROUP BY city"));
        assert!(plan.statements[1].contains("CASE WHEN verdict_strata_size >"));
        assert!(plan.statements[2].starts_with("DROP TABLE"));
        for s in &plan.statements {
            verdict_sql::parse_statement(s).unwrap();
        }
    }

    #[test]
    fn stratified_case_probabilities_decrease_with_size() {
        let plan = build_sample_sql(
            "orders",
            "s",
            &SampleType::Stratified {
                columns: vec!["city".into()],
            },
            0.01,
            100_000,
            10,
            &base_columns(),
            &config(),
            &GenericDialect,
        );
        // extract the THEN probabilities of the projection's CASE expression
        // (the text before WHERE) and check monotonicity: descending
        // thresholds => ascending probabilities as we read the CASE branches.
        let sql = plan.statements[1].split(" WHERE ").next().unwrap();
        let probs: Vec<f64> = sql
            .split("THEN ")
            .skip(1)
            .filter_map(|chunk| chunk.split_whitespace().next())
            .filter_map(|tok| tok.parse::<f64>().ok())
            .collect();
        assert!(probs.len() >= 2);
        for w in probs.windows(2) {
            assert!(
                w[0] <= w[1] + 1e-9,
                "expected ascending probabilities, got {probs:?}"
            );
        }
    }
}
