//! Incremental sample maintenance under data appends (Appendix D).
//!
//! All three offline sample types tolerate appends because tuples are sampled
//! independently:
//!
//! * **uniform** and **hashed** samples simply apply the same τ (and hash
//!   function) to the new batch and `INSERT` the survivors into the existing
//!   sample table;
//! * **stratified** samples reuse the per-stratum sampling probabilities that
//!   are already recorded in the sample's probability column; strata that did
//!   not exist before are sampled with a freshly computed probability.
//!
//! Staleness detection compares the recorded base-table cardinality against
//! the current one.

use crate::sample::{
    qualified_columns, SampleMeta, SampleType, SAMPLING_PROB_COLUMN, SUBSAMPLE_DRAW_COLUMN,
};
use verdict_sql::Dialect;

/// How far a sample has drifted from its base table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Staleness {
    /// The base table has the same row count as when the sample was built.
    Fresh,
    /// The base table has grown since the sample was built.
    Stale {
        /// Number of rows appended since the sample was built.
        appended_rows: u64,
    },
    /// The base table shrank — the sample must be rebuilt from scratch
    /// (appends are the only supported incremental update).
    RequiresRebuild,
}

/// Classifies the freshness of a sample given the base table's current size.
pub fn staleness(meta: &SampleMeta, current_base_rows: u64) -> Staleness {
    use std::cmp::Ordering::*;
    match current_base_rows.cmp(&meta.base_rows) {
        Equal => Staleness::Fresh,
        Greater => Staleness::Stale {
            appended_rows: current_base_rows - meta.base_rows,
        },
        Less => Staleness::RequiresRebuild,
    }
}

/// Generates the SQL that folds an appended batch (available as
/// `batch_table`) into an existing sample.
///
/// `batch_columns` is the **base table's** column list, which the batch must
/// share (by name — physical order in the batch is irrelevant, because the
/// projection references columns explicitly).  Projecting it explicitly and
/// in base order keeps the positional `INSERT` aligned with the sample table
/// (base columns, the sampling-probability column, then the frozen
/// subsample-draw column) even when a helper `verdict_rand` column is
/// attached in a derived table.  Appended tuples receive fresh subsample
/// draws, exactly as build time gave the original tuples theirs.
///
/// For uniform and hashed samples one `INSERT INTO … SELECT` suffices.  For
/// stratified samples the appended tuples join against the per-stratum
/// probabilities already present in the sample table; tuples from brand-new
/// strata are kept whole (probability 1), matching Appendix D.
pub fn append_sql(
    meta: &SampleMeta,
    batch_table: &str,
    batch_columns: &[String],
    dialect: &dyn Dialect,
) -> Vec<String> {
    let sample = dialect.quote_ident(&meta.sample_table);
    let batch = dialect.quote_ident(batch_table);
    let ratio = meta.ratio;
    let rand = dialect.random_function();
    match &meta.sample_type {
        SampleType::Uniform => {
            let cols = qualified_columns("verdict_src", batch_columns, dialect);
            vec![format!(
                "INSERT INTO {sample} SELECT {cols}, {ratio} AS {SAMPLING_PROB_COLUMN}, \
                 {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
                 FROM (SELECT *, {rand} AS verdict_rand FROM {batch}) AS verdict_src \
                 WHERE verdict_src.verdict_rand < {ratio}"
            )]
        }
        SampleType::Hashed { columns } => {
            let quoted: Vec<String> = columns.iter().map(|c| dialect.quote_ident(c)).collect();
            let key_expr = if quoted.len() == 1 {
                quoted[0].clone()
            } else {
                format!("concat({})", quoted.join(", "))
            };
            let hash = dialect.hash_function(&key_expr, 1_000_000);
            let threshold = (ratio * 1_000_000f64).round() as u64;
            // No helper column is attached, but the projection is still
            // explicit and in base order: the INSERT is positional, so a
            // batch staged with reordered columns must not corrupt the
            // sample.
            let cols = batch_columns
                .iter()
                .map(|c| dialect.quote_ident(c))
                .collect::<Vec<_>>()
                .join(", ");
            vec![format!(
                "INSERT INTO {sample} SELECT {cols}, {ratio} AS {SAMPLING_PROB_COLUMN}, \
                 {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
                 FROM {batch} WHERE {hash} < {threshold}"
            )]
        }
        SampleType::Stratified { columns } => {
            let col_list = columns
                .iter()
                .map(|c| dialect.quote_ident(c))
                .collect::<Vec<_>>()
                .join(", ");
            let probs_table =
                dialect.quote_ident(&format!("{}_append_probs_tmp", meta.sample_table));
            let join_cond = columns
                .iter()
                .map(|c| {
                    let qc = dialect.quote_ident(c);
                    format!("verdict_src.{qc} = {probs_table}.{qc}")
                })
                .collect::<Vec<_>>()
                .join(" AND ");
            let cols = qualified_columns("verdict_src", batch_columns, dialect);
            vec![
                // A failed earlier refresh may have left the temp table
                // behind (its trailing DROP never ran); clear it first so
                // the retry is not wedged on TableAlreadyExists.
                format!("DROP TABLE IF EXISTS {probs_table}"),
                // existing per-stratum probabilities (min is arbitrary — the
                // probability is constant within a stratum)
                format!(
                    "CREATE TABLE {probs_table} AS SELECT {col_list}, \
                     min({SAMPLING_PROB_COLUMN}) AS verdict_stratum_prob \
                     FROM {sample} GROUP BY {col_list}"
                ),
                format!(
                    "INSERT INTO {sample} SELECT {cols}, \
                     coalesce({probs_table}.verdict_stratum_prob, 1.0) AS {SAMPLING_PROB_COLUMN}, \
                     {rand} AS {SUBSAMPLE_DRAW_COLUMN} \
                     FROM (SELECT *, {rand} AS verdict_rand FROM {batch}) AS verdict_src \
                     LEFT JOIN {probs_table} ON {join_cond} \
                     WHERE verdict_src.verdict_rand < coalesce({probs_table}.verdict_stratum_prob, 1.0)"
                ),
                format!("DROP TABLE IF EXISTS {probs_table}"),
            ]
        }
        SampleType::Irregular => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_sql::GenericDialect;

    fn meta(sample_type: SampleType) -> SampleMeta {
        SampleMeta {
            base_table: "orders".into(),
            sample_table: "verdict_sample_orders_x".into(),
            sample_type,
            ratio: 0.01,
            sample_rows: 10_000,
            base_rows: 1_000_000,
            appended_rows: 0,
        }
    }

    #[test]
    fn staleness_classification() {
        let m = meta(SampleType::Uniform);
        assert_eq!(staleness(&m, 1_000_000), Staleness::Fresh);
        assert_eq!(
            staleness(&m, 1_100_000),
            Staleness::Stale {
                appended_rows: 100_000
            }
        );
        assert_eq!(staleness(&m, 900_000), Staleness::RequiresRebuild);
    }

    fn batch_columns() -> Vec<String> {
        vec!["order_id".into(), "city".into(), "price".into()]
    }

    #[test]
    fn uniform_append_is_single_insert_with_explicit_projection() {
        let sql = append_sql(
            &meta(SampleType::Uniform),
            "orders_batch",
            &batch_columns(),
            &GenericDialect,
        );
        assert_eq!(sql.len(), 1);
        assert!(sql[0].starts_with("INSERT INTO"));
        // The helper verdict_rand column must not leak into the projection:
        // exactly the base columns plus the probability column are inserted.
        assert!(
            sql[0].contains("SELECT verdict_src.order_id, verdict_src.city, verdict_src.price,")
        );
        verdict_sql::parse_statement(&sql[0]).unwrap();
    }

    #[test]
    fn hashed_append_reuses_same_hash_threshold() {
        let m = meta(SampleType::Hashed {
            columns: vec!["order_id".into()],
        });
        let sql = append_sql(&m, "orders_batch", &batch_columns(), &GenericDialect);
        assert!(sql[0].contains("verdict_hash(order_id, 1000000) < 10000"));
        // Explicit base-order projection: a reordered batch must not feed
        // the positional INSERT column-shifted values.
        assert!(sql[0].contains("SELECT order_id, city, price,"));
        verdict_sql::parse_statement(&sql[0]).unwrap();
    }

    #[test]
    fn stratified_append_reuses_recorded_probabilities() {
        let m = meta(SampleType::Stratified {
            columns: vec!["city".into()],
        });
        let sql = append_sql(&m, "orders_batch", &batch_columns(), &GenericDialect);
        assert_eq!(sql.len(), 4);
        assert!(
            sql[0].starts_with("DROP TABLE IF EXISTS"),
            "a leftover temp table from a failed refresh must not wedge the retry"
        );
        assert!(sql[1].contains("GROUP BY city"));
        assert!(sql[2].contains("coalesce"));
        assert!(
            !sql[2].contains("verdict_src.*"),
            "no wildcard over the rand helper"
        );
        for s in &sql {
            verdict_sql::parse_statement(s).unwrap();
        }
    }
}
