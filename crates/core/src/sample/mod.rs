//! Sample preparation: the offline stage of VerdictDB (§3 of the paper).
//!
//! Four sample types exist (§3.1): **uniform**, **hashed** (universe),
//! **stratified**, and **irregular** (the latter only arises at query time
//! when samples are joined).  Every sample table stores the per-tuple
//! sampling probability in an extra column named
//! [`SAMPLING_PROB_COLUMN`], exactly as the paper prescribes, so that query
//! rewriting can build Horvitz–Thompson style unbiased estimates in SQL.
//! A second extra column, [`SUBSAMPLE_DRAW_COLUMN`], freezes one uniform
//! draw per tuple at build time; the rewriter derives the variational
//! subsample id from it (`1 + floor(u·b)`), mirroring the scramble *block*
//! column of the shipped VerdictDB.  Materialising the draw makes query
//! answers a pure function of the scramble contents and the configuration —
//! which is what lets a progressive stream's final frame be bit-identical
//! to the one-shot answer, and repeated identical queries cache-coherent.

pub mod builder;
pub mod maintenance;
pub mod policy;

use std::fmt;

/// Name of the extra column holding each tuple's sampling probability.
pub const SAMPLING_PROB_COLUMN: &str = "verdict_sampling_prob";

/// Name of the extra column holding each tuple's frozen uniform draw
/// `u ∈ [0, 1)`, from which the rewriter derives the variational subsample
/// id as `1 + floor(u · b)` for any subsample count `b`.
pub const SUBSAMPLE_DRAW_COLUMN: &str = "verdict_subsample_u";

/// Prefix for all tables VerdictDB creates in the underlying database.
pub const SAMPLE_TABLE_PREFIX: &str = "verdict_sample";

/// `alias.c1, alias.c2, …` — explicit projection of the base columns, shared
/// by sample construction and append maintenance so both always emit the
/// same arity (base columns + the probability column) and qualification.
/// Column names are quoted per the target dialect when they need it.
pub(crate) fn qualified_columns(
    alias: &str,
    columns: &[String],
    dialect: &dyn verdict_sql::Dialect,
) -> String {
    columns
        .iter()
        .map(|c| format!("{alias}.{}", dialect.quote_ident(c)))
        .collect::<Vec<_>>()
        .join(", ")
}

/// The sample types VerdictDB constructs offline (§3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SampleType {
    /// Every tuple sampled independently with probability τ.
    Uniform,
    /// "Universe" sample: keep tuples whose hashed column-set value falls
    /// below τ; required for joining two samples and for count-distinct.
    Hashed {
        /// The hashed (universe) column set.
        columns: Vec<String>,
    },
    /// At least `min(|T|·τ/d, stratum size)` tuples retained per distinct
    /// value of the column set (Equation 1).
    Stratified {
        /// The stratification column set.
        columns: Vec<String>,
    },
    /// Produced only at query time by joining other samples; never built offline.
    Irregular,
}

impl SampleType {
    /// Short tag used when naming sample tables.
    pub fn tag(&self) -> &'static str {
        match self {
            SampleType::Uniform => "uniform",
            SampleType::Hashed { .. } => "hashed",
            SampleType::Stratified { .. } => "stratified",
            SampleType::Irregular => "irregular",
        }
    }

    /// The column set this sample is built on (empty for uniform samples).
    pub fn columns(&self) -> &[String] {
        match self {
            SampleType::Hashed { columns } | SampleType::Stratified { columns } => columns,
            _ => &[],
        }
    }
}

impl fmt::Display for SampleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleType::Uniform => write!(f, "uniform"),
            SampleType::Hashed { columns } => write!(f, "hashed({})", columns.join(",")),
            SampleType::Stratified { columns } => write!(f, "stratified({})", columns.join(",")),
            SampleType::Irregular => write!(f, "irregular"),
        }
    }
}

/// Metadata describing one sample table, recorded at creation time.
///
/// The paper stores this in a dedicated schema inside the database catalog;
/// [`crate::meta::MetaStore`] mirrors that by persisting the same records in
/// a `verdict_meta_samples` table, while keeping an in-memory copy for
/// planning.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleMeta {
    /// The original ("base") table this sample was drawn from.
    pub base_table: String,
    /// Name of the sample table inside the underlying database.
    pub sample_table: String,
    /// Sample type (and its column set, when applicable).
    pub sample_type: SampleType,
    /// The sampling parameter τ used at creation time.
    pub ratio: f64,
    /// Number of rows in the sample table (measured after creation).
    pub sample_rows: u64,
    /// Number of rows in the base table at creation time.
    pub base_rows: u64,
    /// Sample rows added by incremental append maintenance since the last
    /// full (re)build.  Appended rows land at the **end** of the sample
    /// table and are not re-shuffled, so a nonzero value means the
    /// build-time "any prefix is a uniform subsample" property no longer
    /// holds; progressive execution declines such scrambles (falling back
    /// to a correct one-shot answer) until a batchless
    /// `REFRESH SCRAMBLES <t>` rebuild restores the shuffle.
    pub appended_rows: u64,
}

impl SampleMeta {
    /// The fraction of the base table materialised in this sample.
    pub fn actual_ratio(&self) -> f64 {
        if self.base_rows == 0 {
            0.0
        } else {
            self.sample_rows as f64 / self.base_rows as f64
        }
    }

    /// The canonical name for a sample table of the given type over a base table.
    pub fn table_name_for(base_table: &str, sample_type: &SampleType) -> String {
        let base = base_table.replace('.', "_");
        let mut name = format!("{SAMPLE_TABLE_PREFIX}_{base}_{}", sample_type.tag());
        let cols = sample_type.columns();
        if !cols.is_empty() {
            name.push('_');
            name.push_str(&cols.join("_"));
        }
        name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_table_names_are_deterministic_and_distinct() {
        let uniform = SampleMeta::table_name_for("orders", &SampleType::Uniform);
        let hashed = SampleMeta::table_name_for(
            "orders",
            &SampleType::Hashed {
                columns: vec!["order_id".into()],
            },
        );
        let stratified = SampleMeta::table_name_for(
            "orders",
            &SampleType::Stratified {
                columns: vec!["city".into()],
            },
        );
        assert_eq!(uniform, "verdict_sample_orders_uniform");
        assert_eq!(hashed, "verdict_sample_orders_hashed_order_id");
        assert_eq!(stratified, "verdict_sample_orders_stratified_city");
        assert_ne!(uniform, hashed);
    }

    #[test]
    fn actual_ratio_handles_empty_base() {
        let m = SampleMeta {
            base_table: "t".into(),
            sample_table: "s".into(),
            sample_type: SampleType::Uniform,
            ratio: 0.01,
            sample_rows: 100,
            base_rows: 10_000,
            appended_rows: 0,
        };
        assert!((m.actual_ratio() - 0.01).abs() < 1e-12);
        let empty = SampleMeta { base_rows: 0, ..m };
        assert_eq!(empty.actual_ratio(), 0.0);
    }

    #[test]
    fn sample_type_display_and_columns() {
        let s = SampleType::Stratified {
            columns: vec!["a".into(), "b".into()],
        };
        assert_eq!(s.to_string(), "stratified(a,b)");
        assert_eq!(s.columns(), &["a".to_string(), "b".to_string()]);
        assert!(SampleType::Uniform.columns().is_empty());
    }
}
