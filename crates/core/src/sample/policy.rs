//! The default sampling policy (Appendix F of the paper).
//!
//! When the user asks VerdictDB to prepare a table for AQP without naming
//! sample types, VerdictDB inspects the column cardinalities and decides:
//!
//! 1. a uniform sample is always built;
//! 2. for each of the (up to ten) highest-cardinality columns whose
//!    cardinality exceeds 1% of the table size, a hashed (universe) sample is
//!    built — such columns are join keys / count-distinct targets;
//! 3. for each of the (up to ten) lowest-cardinality columns whose
//!    cardinality is below 1% of the table size, a stratified sample is
//!    built — such columns are typical group-by attributes.
//!
//! The sampling parameter τ defaults to `10M / |T|` in the paper; this
//! implementation scales the same rule by the configured `min_table_rows`
//! (the "large table" threshold), so laptop-scale datasets behave like the
//! paper's cluster-scale ones.

use crate::config::VerdictConfig;
use crate::sample::SampleType;

/// Cardinality statistics for one column of a base table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnCardinality {
    /// Column name.
    pub column: String,
    /// Number of distinct values observed.
    pub distinct_values: u64,
}

/// The outcome of the default policy: which samples to build and with what τ.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingDecision {
    /// The sample tables to build.
    pub sample_types: Vec<SampleType>,
    /// The sampling ratio τ to build them with.
    pub ratio: f64,
}

/// Applies the Appendix F default policy.
pub fn default_policy(
    table_rows: u64,
    columns: &[ColumnCardinality],
    config: &VerdictConfig,
) -> SamplingDecision {
    // τ = target_sample_rows / |T|, clamped into (0, 1]; the paper uses 10M
    // as the target because its tables hold billions of rows.
    let target_rows = (config.min_table_rows as f64).max(1.0) * (config.sampling_ratio / 0.01);
    let ratio = (target_rows / table_rows.max(1) as f64).clamp(config.sampling_ratio.min(1.0), 1.0);

    let mut sample_types = vec![SampleType::Uniform];

    let threshold = (table_rows as f64 * 0.01).max(1.0) as u64;

    // High-cardinality columns -> hashed samples (descending cardinality, top 10).
    let mut high: Vec<&ColumnCardinality> = columns
        .iter()
        .filter(|c| c.distinct_values > threshold)
        .collect();
    high.sort_by_key(|c| std::cmp::Reverse(c.distinct_values));
    for c in high.into_iter().take(10) {
        sample_types.push(SampleType::Hashed {
            columns: vec![c.column.clone()],
        });
    }

    // Low-cardinality columns -> stratified samples (ascending cardinality, top 10).
    let mut low: Vec<&ColumnCardinality> = columns
        .iter()
        .filter(|c| c.distinct_values <= threshold && c.distinct_values > 1)
        .collect();
    low.sort_by_key(|c| c.distinct_values);
    for c in low.into_iter().take(10) {
        sample_types.push(SampleType::Stratified {
            columns: vec![c.column.clone()],
        });
    }

    SamplingDecision {
        sample_types,
        ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cards() -> Vec<ColumnCardinality> {
        vec![
            ColumnCardinality {
                column: "order_id".into(),
                distinct_values: 900_000,
            },
            ColumnCardinality {
                column: "user_id".into(),
                distinct_values: 150_000,
            },
            ColumnCardinality {
                column: "city".into(),
                distinct_values: 24,
            },
            ColumnCardinality {
                column: "status".into(),
                distinct_values: 3,
            },
            ColumnCardinality {
                column: "constant".into(),
                distinct_values: 1,
            },
        ]
    }

    #[test]
    fn policy_builds_uniform_plus_hashed_plus_stratified() {
        let decision = default_policy(1_000_000, &cards(), &VerdictConfig::default());
        assert!(decision.sample_types.contains(&SampleType::Uniform));
        assert!(decision.sample_types.contains(&SampleType::Hashed {
            columns: vec!["order_id".into()]
        }));
        assert!(decision.sample_types.contains(&SampleType::Hashed {
            columns: vec!["user_id".into()]
        }));
        assert!(decision.sample_types.contains(&SampleType::Stratified {
            columns: vec!["city".into()]
        }));
        assert!(decision.sample_types.contains(&SampleType::Stratified {
            columns: vec!["status".into()]
        }));
        // single-valued columns are useless strata
        assert!(!decision
            .sample_types
            .iter()
            .any(|s| s.columns() == ["constant".to_string()]));
    }

    #[test]
    fn ratio_shrinks_for_larger_tables() {
        let cfg = VerdictConfig::default();
        let small = default_policy(20_000, &[], &cfg);
        let large = default_policy(10_000_000, &[], &cfg);
        assert!(small.ratio > large.ratio);
        assert!(large.ratio >= cfg.sampling_ratio.min(1.0));
        assert!(small.ratio <= 1.0);
    }

    #[test]
    fn policy_caps_hashed_samples_at_ten() {
        let many: Vec<ColumnCardinality> = (0..30)
            .map(|i| ColumnCardinality {
                column: format!("c{i}"),
                distinct_values: 500_000 + i,
            })
            .collect();
        let decision = default_policy(1_000_000, &many, &VerdictConfig::default());
        let hashed = decision
            .sample_types
            .iter()
            .filter(|s| matches!(s, SampleType::Hashed { .. }))
            .count();
        assert_eq!(hashed, 10);
    }
}
