//! [`VerdictSession`] — the SQL-first session API.
//!
//! The paper's core claim is *universality*: applications talk to VerdictDB
//! exactly as they would to any SQL database.  Sample management, exact-mode
//! escapes, and tuning are all plain SQL statements — not bespoke library
//! calls.  A session accepts **only SQL** and returns a unified
//! [`VerdictResponse`]:
//!
//! ```text
//! CREATE SCRAMBLE s_orders FROM orders METHOD uniform RATIO 0.01
//! SELECT city, avg(price) AS ap FROM orders GROUP BY city
//! SET target_error = 0.02
//! BYPASS SELECT count(*) FROM orders
//! REFRESH SCRAMBLES orders FROM orders_batch
//! SHOW SCRAMBLES
//! DROP SCRAMBLES orders
//! ```
//!
//! A session owns a shared [`VerdictContext`] (`Arc`, so many sessions share
//! one engine catalog, sample registry, and answer cache) plus its own
//! [`QueryOptions`].  Options are resolved against the context's immutable
//! base [`VerdictConfig`] *per statement*: `SET` mutates only this session's
//! options, never shared state — the replacement for the old
//! `config_mut()`-on-a-shared-context wart, which could not work behind the
//! server's `Arc<VerdictContext>` at all.

use crate::config::VerdictConfig;
use crate::context::{VerdictAnswer, VerdictContext};
use crate::error::{VerdictError, VerdictResult};
use crate::obs::QueryTrace;
use crate::progress::ProgressStream;
use crate::sample::maintenance::Staleness;
use crate::sample::{SampleMeta, SampleType};
use std::sync::Arc;
use verdict_engine::{GroupStrategy, Table, TableBuilder};
use verdict_sql::ast::{Literal, ScrambleMethod, SetValue, Statement};
use verdict_sql::printer::print_statement;

/// Per-session (and therefore per-query) overrides of the context's base
/// configuration (§2.4 knobs).
///
/// Every field is optional; `None` inherits the base [`VerdictConfig`].
/// Options are set through SQL (`SET <option> = <value>`) or constructed
/// directly for embedded use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOptions {
    /// `SET target_error = r` — maximum tolerated relative error; when the
    /// estimated error exceeds it the query is re-run exactly (High-level
    /// Accuracy Contract).
    pub target_error: Option<f64>,
    /// `SET confidence = c` — confidence level for reported error bounds.
    pub confidence: Option<f64>,
    /// `SET cache = on|off` — per-session answer-cache policy.  `off`
    /// bypasses the shared cache for this session's statements (no lookups,
    /// no insertions); `on` restores the base behaviour.  A cache disabled
    /// at context construction cannot be enabled per session.
    pub cache: Option<bool>,
    /// `SET parallelism = n` — worker-thread hint for the underlying
    /// engine.  Results are bit-identical at any setting; only latency
    /// changes.  **Engine-wide, not session-scoped**: the hint is applied
    /// to the shared connection's morsel pool when set (the engine has one
    /// pool, so per-statement isolation is not possible); `SET parallelism
    /// = default` restores the base configuration's setting.
    pub parallelism: Option<usize>,
    /// `SET group_strategy = auto|hash|dict|radix` — GROUP BY clustering
    /// strategy hint for the engine's grouping kernels.  Every strategy
    /// yields bit-identical answers (same first-appearance group order);
    /// only latency changes.  **Engine-wide, not session-scoped**, exactly
    /// like [`Self::parallelism`]; `SET group_strategy = default` restores
    /// the base configuration's setting.
    pub group_strategy: Option<GroupStrategy>,
    /// `SET bypass = on|off` — when on, every query runs exactly on the
    /// base tables (a session-wide `BYPASS`).
    pub bypass: bool,
    /// `SET error_columns = on|off` — attach `<column>_err` columns to
    /// approximate results.
    pub error_columns: Option<bool>,
    /// `SET io_budget = f` — maximum fraction of each large table read per
    /// query.
    pub io_budget: Option<f64>,
    /// `SET sampling_ratio = r` — default τ for `CREATE SCRAMBLE` statements
    /// that omit `RATIO`.
    pub sampling_ratio: Option<f64>,
    /// `SET stream_block_rows = n` — scramble rows consumed per progressive
    /// frame (see [`VerdictConfig::stream_block_rows`]).
    pub stream_block_rows: Option<usize>,
    /// `SET stream_max_frames = n` — cap on frames per stream, 0 for
    /// unbounded (see [`VerdictConfig::stream_max_frames`]).
    pub stream_max_frames: Option<usize>,
    /// `SET deadline_ms = n` — per-query deadline in milliseconds, enforced
    /// by the serving layer's admission control (a statement still queued
    /// when its deadline passes is answered with a typed `DEADLINE` error;
    /// progressive streams stop at the deadline).  `None` (the default)
    /// means no deadline; in-process sessions ignore the option.
    pub deadline_ms: Option<u64>,
    /// `SET slow_query_ms = n` — slow-query threshold in milliseconds (see
    /// [`VerdictConfig::slow_query_ms`]); `0` disables the flag.  Purely
    /// observational: flagged statements are marked `slow` in the trace ring
    /// and counted in `verdict_slow_queries_total`.
    pub slow_query_ms: Option<u64>,
}

impl QueryOptions {
    /// Resolves these options against a base configuration, producing the
    /// effective per-statement [`VerdictConfig`].
    pub fn resolve(&self, base: &VerdictConfig) -> VerdictConfig {
        let mut cfg = base.clone();
        if let Some(te) = self.target_error {
            cfg.max_relative_error = Some(te);
        }
        if let Some(c) = self.confidence {
            cfg.confidence = c;
        }
        if self.cache == Some(false) {
            cfg.answer_cache_capacity = 0;
        }
        // `parallelism` and `group_strategy` are deliberately NOT folded in:
        // the engine reads those knobs only at context construction, so the
        // per-statement config cannot carry them — SET applies each hint to
        // the shared pool instead.
        if let Some(e) = self.error_columns {
            cfg.include_error_columns = e;
        }
        if let Some(b) = self.io_budget {
            cfg.io_budget = b;
        }
        if let Some(r) = self.sampling_ratio {
            cfg.sampling_ratio = r;
        }
        if let Some(b) = self.stream_block_rows {
            cfg.stream_block_rows = b;
        }
        if let Some(f) = self.stream_max_frames {
            cfg.stream_max_frames = f;
        }
        if let Some(ms) = self.slow_query_ms {
            cfg.slow_query_ms = ms;
        }
        cfg
    }
}

/// The unified result of one SQL statement executed on a [`VerdictSession`].
#[derive(Debug, Clone)]
pub enum VerdictResponse {
    /// A query answer (`SELECT`, `STREAM`, `BYPASS`, or passthrough DDL/DML).
    Answer(VerdictAnswer),
    /// Scrambles built by `CREATE SCRAMBLE` / `CREATE SCRAMBLES`.
    ScramblesCreated(Vec<SampleMeta>),
    /// Number of scrambles removed by `DROP SCRAMBLE[S]`.
    ScramblesDropped(usize),
    /// Number of scrambles refreshed/rebuilt by `REFRESH SCRAMBLE[S]`.
    ScramblesRefreshed(usize),
    /// The `SHOW SCRAMBLES` listing.
    Scrambles(Table),
    /// The `SHOW STATS` listing.
    Stats(Table),
    /// The `EXPLAIN [ANALYZE]` listing: plan description (plain `EXPLAIN`)
    /// or the executed statement's span tree with attribution (`ANALYZE`).
    Explain(Table),
    /// The `SHOW PROFILE` listing: recent traces from the ring.
    Profile(Table),
    /// The `SHOW METRICS` Prometheus-style text exposition.
    Metrics(String),
    /// Acknowledgement of `SET <option> = <value>` (normalised name/value).
    OptionSet {
        /// The canonical option name.
        name: String,
        /// The applied value, rendered as text (`"default"` when cleared).
        value: String,
    },
}

impl VerdictResponse {
    /// The tabular part of the response, if any (`Answer`, `Scrambles`,
    /// `Stats`, `Explain`, `Profile`).
    pub fn table(&self) -> Option<&Table> {
        match self {
            VerdictResponse::Answer(a) => Some(&a.table),
            VerdictResponse::Scrambles(t)
            | VerdictResponse::Stats(t)
            | VerdictResponse::Explain(t)
            | VerdictResponse::Profile(t) => Some(t),
            _ => None,
        }
    }

    /// The query answer, if this response carries one.
    pub fn answer(&self) -> Option<&VerdictAnswer> {
        match self {
            VerdictResponse::Answer(a) => Some(a),
            _ => None,
        }
    }

    /// Consumes the response, returning the query answer or an error for
    /// non-answer responses (convenience for callers that know they sent a
    /// query).
    pub fn into_answer(self) -> VerdictResult<VerdictAnswer> {
        match self {
            VerdictResponse::Answer(a) => Ok(a),
            other => Err(VerdictError::Answer(format!(
                "statement produced a {} response, not a query answer",
                other.kind()
            ))),
        }
    }

    /// A short tag naming the response variant (used in protocol frames).
    pub fn kind(&self) -> &'static str {
        match self {
            VerdictResponse::Answer(_) => "answer",
            VerdictResponse::ScramblesCreated(_) => "scrambles_created",
            VerdictResponse::ScramblesDropped(_) => "scrambles_dropped",
            VerdictResponse::ScramblesRefreshed(_) => "scrambles_refreshed",
            VerdictResponse::Scrambles(_) => "scrambles",
            VerdictResponse::Stats(_) => "stats",
            VerdictResponse::Explain(_) => "explain",
            VerdictResponse::Profile(_) => "profile",
            VerdictResponse::Metrics(_) => "metrics",
            VerdictResponse::OptionSet { .. } => "option_set",
        }
    }
}

/// A SQL-only session over a shared [`VerdictContext`].
///
/// See the [module documentation](self) for the statement surface.  Sessions
/// are cheap to create (one `Arc` clone plus default options) and are *not*
/// shared between threads — each connection/actor gets its own.
pub struct VerdictSession {
    ctx: Arc<VerdictContext>,
    options: QueryOptions,
    shed: crate::shed::ShedTier,
}

impl VerdictSession {
    /// Opens a session with default (inherit-everything) options.
    pub fn new(ctx: Arc<VerdictContext>) -> VerdictSession {
        Self::with_options(ctx, QueryOptions::default())
    }

    /// Opens a session with explicit initial options.
    pub fn with_options(ctx: Arc<VerdictContext>, options: QueryOptions) -> VerdictSession {
        VerdictSession {
            ctx,
            options,
            shed: crate::shed::ShedTier::None,
        }
    }

    /// The shared middleware context.
    pub fn context(&self) -> &Arc<VerdictContext> {
        &self.ctx
    }

    /// The current session options.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Applies a load-shedding tier to every subsequent statement's
    /// effective configuration (see [`crate::shed`]).  Set by the serving
    /// layer's admission control per admitted statement — deliberately not
    /// reachable through `SET`, so clients cannot un-shed themselves.
    pub fn set_shed_tier(&mut self, tier: crate::shed::ShedTier) {
        self.shed = tier;
    }

    /// The load-shedding tier currently applied to this session.
    pub fn shed_tier(&self) -> crate::shed::ShedTier {
        self.shed
    }

    /// The effective configuration the next statement would run under.
    pub fn effective_config(&self) -> VerdictConfig {
        let mut cfg = self.options.resolve(self.ctx.config());
        self.shed.apply(&mut cfg);
        cfg
    }

    /// Executes one SQL statement (a trailing `;` is allowed).
    pub fn execute(&mut self, sql: &str) -> VerdictResult<VerdictResponse> {
        let stmt = verdict_sql::parse_statement(sql)?;
        self.execute_statement(&stmt, sql)
    }

    /// Opens a progressive execution for a query: a pull-based iterator of
    /// [`ProgressFrame`](crate::progress::ProgressFrame)s whose estimates
    /// and confidence intervals refine block by block, ending with the
    /// one-shot answer (see [`crate::progress`]).  Accepts either a plain
    /// `SELECT …` or the `STREAM SELECT …` statement form.
    ///
    /// The stream runs under this session's current options: `target_error`
    /// becomes the early-stop threshold, `stream_block_rows` /
    /// `stream_max_frames` shape the frame cadence, and `bypass` degrades
    /// to a single exact frame.
    pub fn stream(&mut self, sql: &str) -> VerdictResult<ProgressStream> {
        let stmt = verdict_sql::parse_statement(sql)?;
        match stmt {
            Statement::Stream(q) | Statement::Query(q) => Ok(self.open_stream(*q)),
            _ => Err(VerdictError::Unsupported(
                "only queries can be streamed (SELECT … or STREAM SELECT …)".into(),
            )),
        }
    }

    fn open_stream(&mut self, query: verdict_sql::ast::Query) -> ProgressStream {
        let cfg = self.effective_config();
        ProgressStream::open(Arc::clone(&self.ctx), query, cfg, self.options.bypass)
    }

    /// Executes a `;`-separated script, returning one response per statement.
    /// Execution stops at the first error.
    pub fn execute_script(&mut self, sql: &str) -> VerdictResult<Vec<VerdictResponse>> {
        let stmts = verdict_sql::parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            let text = print_statement(stmt, self.ctx.dialect());
            out.push(self.execute_statement(stmt, &text)?);
        }
        Ok(out)
    }

    /// Dispatches one parsed statement; `sql` must be its source text.
    ///
    /// Every statement is traced: queries through the context's span
    /// pipeline, control statements (scramble DDL, `SET`, `SHOW`) as a
    /// single `control` span — so the class histograms and the recent-trace
    /// ring cover the full statement surface.
    pub fn execute_statement(
        &mut self,
        stmt: &Statement,
        sql: &str,
    ) -> VerdictResult<VerdictResponse> {
        match stmt {
            // Plain SQL: approximate when possible, exact under session
            // bypass; DDL/DML passes through to the underlying database.
            Statement::Query(_)
            | Statement::CreateTableAs { .. }
            | Statement::DropTable { .. }
            | Statement::InsertIntoSelect { .. } => {
                let cfg = self.effective_config();
                let answer = if self.options.bypass {
                    self.ctx
                        .execute_exact_traced(stmt, sql, &cfg, self.shed.label())?
                        .0
                } else {
                    self.ctx
                        .execute_statement_traced(stmt, sql, &cfg, self.shed.label())?
                        .0
                };
                Ok(VerdictResponse::Answer(answer))
            }
            Statement::Bypass(inner) => {
                let cfg = self.effective_config();
                let text = print_statement(inner, self.ctx.dialect());
                let (answer, _) =
                    self.ctx
                        .execute_exact_traced(stmt, &text, &cfg, self.shed.label())?;
                Ok(VerdictResponse::Answer(answer))
            }
            Statement::Stream(q) => {
                // Single-response alias for the streaming surface: run the
                // progressive execution to its end and return the final
                // frame (bit-identical to the one-shot answer when the
                // stream completes; the early-stopped prefix answer when a
                // target error is met first).  The cache is never read — a
                // stream observes fresh data — but a completed answer is
                // inserted so the next identical SELECT hits.
                let stream = self.open_stream((**q).clone());
                Ok(VerdictResponse::Answer(stream.final_frame()?.answer))
            }
            Statement::Explain { analyze, statement } => self.execute_explain(*analyze, statement),
            _ => {
                let started = std::time::Instant::now();
                let response = self.execute_control(stmt, sql);
                if response.is_ok() {
                    let cfg = self.effective_config();
                    self.ctx
                        .observe_control(stmt, sql, started.elapsed(), &cfg, self.shed.label());
                }
                response
            }
        }
    }

    /// Executes the control-statement surface (scramble DDL, `SHOW`, `SET`);
    /// queries, `BYPASS`, `STREAM`, and `EXPLAIN` are dispatched before this
    /// is reached.
    fn execute_control(&mut self, stmt: &Statement, sql: &str) -> VerdictResult<VerdictResponse> {
        let _ = sql;
        match stmt {
            Statement::CreateScramble {
                name,
                table,
                method,
                ratio,
                on,
            } => {
                let cfg = self.effective_config();
                let sample_type = scramble_sample_type(*method, on)?;
                let ratio = ratio.unwrap_or(cfg.sampling_ratio);
                if !(ratio > 0.0 && ratio <= 1.0) {
                    return Err(VerdictError::Unsupported(format!(
                        "scramble RATIO must be in (0, 1], got {ratio}"
                    )));
                }
                let meta = self.ctx.create_sample_named(
                    Some(&name.key()),
                    &table.key(),
                    sample_type,
                    ratio,
                    &cfg,
                )?;
                Ok(VerdictResponse::ScramblesCreated(vec![meta]))
            }
            Statement::CreateScrambles { table } => {
                let cfg = self.effective_config();
                let created = self
                    .ctx
                    .create_recommended_samples_with(&table.key(), &cfg)?;
                Ok(VerdictResponse::ScramblesCreated(created))
            }
            Statement::DropScramble { name, if_exists } => {
                let dropped = self.ctx.drop_sample_named(&name.key(), *if_exists)?;
                Ok(VerdictResponse::ScramblesDropped(usize::from(dropped)))
            }
            Statement::DropScrambles { table, if_exists } => {
                let dropped = self.ctx.drop_samples(&table.key())?;
                if dropped == 0 && !if_exists {
                    return Err(VerdictError::Metadata(format!(
                        "no scrambles are registered for table {table}"
                    )));
                }
                Ok(VerdictResponse::ScramblesDropped(dropped))
            }
            Statement::RefreshScrambles { table, batch } => {
                let refreshed = match batch {
                    Some(b) => self
                        .ctx
                        .refresh_samples_after_append(&table.key(), &b.key())?,
                    None => {
                        let cfg = self.effective_config();
                        self.ctx.rebuild_samples(&table.key(), &cfg)?
                    }
                };
                Ok(VerdictResponse::ScramblesRefreshed(refreshed))
            }
            Statement::ShowScrambles => Ok(VerdictResponse::Scrambles(self.show_scrambles()?)),
            Statement::ShowStats => Ok(VerdictResponse::Stats(self.show_stats())),
            Statement::ShowProfile { last } => Ok(VerdictResponse::Profile(
                self.show_profile(last.map_or(10, |n| n as usize)),
            )),
            Statement::ShowMetrics => Ok(VerdictResponse::Metrics(self.ctx.metrics_text())),
            Statement::SetOption { name, value } => {
                let (name, rendered) = self.set_option(name, value)?;
                Ok(VerdictResponse::OptionSet {
                    name,
                    value: rendered,
                })
            }
            _ => unreachable!("query statements are dispatched before execute_control"),
        }
    }

    /// Executes `EXPLAIN [ANALYZE] <statement>`.  Plain `EXPLAIN` describes
    /// the plan without executing; `ANALYZE` executes the statement under
    /// this session's options and renders the finished trace as a span
    /// table with end-to-end attribution rows.
    fn execute_explain(
        &mut self,
        analyze: bool,
        statement: &Statement,
    ) -> VerdictResult<VerdictResponse> {
        let cfg = self.effective_config();
        if !analyze {
            return Ok(VerdictResponse::Explain(
                self.ctx.explain_statement(statement, &cfg)?,
            ));
        }
        let text = print_statement(statement, self.ctx.dialect());
        let trace = match statement {
            Statement::Bypass(inner) => {
                let inner_text = print_statement(inner, self.ctx.dialect());
                self.ctx
                    .execute_exact_traced(statement, &inner_text, &cfg, self.shed.label())?
                    .1
            }
            Statement::Query(_)
            | Statement::CreateTableAs { .. }
            | Statement::DropTable { .. }
            | Statement::InsertIntoSelect { .. } => {
                if self.options.bypass {
                    self.ctx
                        .execute_exact_traced(statement, &text, &cfg, self.shed.label())?
                        .1
                } else {
                    self.ctx
                        .execute_statement_traced(statement, &text, &cfg, self.shed.label())?
                        .1
                }
            }
            Statement::Stream(q) => {
                // A stream's final frame equals the one-shot answer, so
                // ANALYZE runs the underlying query through the traced
                // one-shot pipeline (skipping the cache, like a stream).
                let qstmt = Statement::Query(q.clone());
                self.ctx
                    .execute_statement_traced(&qstmt, &text, &cfg, self.shed.label())?
                    .1
            }
            other => {
                // Control statements execute normally; their one-span trace
                // is rendered just like a query trace.
                let started = std::time::Instant::now();
                self.execute_control(other, &text)?;
                self.ctx
                    .observe_control(other, &text, started.elapsed(), &cfg, self.shed.label())
            }
        };
        Ok(VerdictResponse::Explain(render_analyze(&trace)))
    }

    /// Builds the `SHOW PROFILE [LAST n]` table from the recent-trace ring:
    /// one row per trace, most recent first, with a compact per-stage span
    /// summary.
    fn show_profile(&self, n: usize) -> Table {
        let traces = self.ctx.obs().ring().recent(n);
        let mut seq = Vec::with_capacity(traces.len());
        let mut class = Vec::with_capacity(traces.len());
        let mut total_us = Vec::with_capacity(traces.len());
        let mut cached = Vec::with_capacity(traces.len());
        let mut slow = Vec::with_capacity(traces.len());
        let mut shed = Vec::with_capacity(traces.len());
        let mut spans = Vec::with_capacity(traces.len());
        let mut sqls = Vec::with_capacity(traces.len());
        for t in &traces {
            seq.push(t.seq as i64);
            class.push(t.class.to_string());
            total_us.push(t.total.as_micros() as i64);
            cached.push(t.cached.to_string());
            slow.push(t.slow.to_string());
            shed.push(t.shed_tier.to_string());
            spans.push(
                t.spans
                    .iter()
                    .map(|s| format!("{}={}us", s.stage, s.duration.as_micros()))
                    .collect::<Vec<_>>()
                    .join(" "),
            );
            sqls.push(t.sql.clone());
        }
        TableBuilder::new()
            .int_column("seq", seq)
            .str_column("class", class)
            .int_column("total_us", total_us)
            .str_column("cached", cached)
            .str_column("slow", slow)
            .str_column("shed_tier", shed)
            .str_column("spans", spans)
            .str_column("sql", sqls)
            .build()
            .expect("profile table construction cannot fail")
    }

    /// Builds the `SHOW SCRAMBLES` table: one row per registered scramble,
    /// sorted by (base table, scramble name) for a deterministic listing.
    fn show_scrambles(&self) -> VerdictResult<Table> {
        let mut metas = self.ctx.meta().all();
        metas.sort_by(|a, b| {
            (a.base_table.as_str(), a.sample_table.as_str())
                .cmp(&(b.base_table.as_str(), b.sample_table.as_str()))
        });
        let mut scramble = Vec::with_capacity(metas.len());
        let mut base = Vec::with_capacity(metas.len());
        let mut method = Vec::with_capacity(metas.len());
        let mut on = Vec::with_capacity(metas.len());
        let mut ratio = Vec::with_capacity(metas.len());
        let mut rows = Vec::with_capacity(metas.len());
        let mut base_rows = Vec::with_capacity(metas.len());
        let mut status = Vec::with_capacity(metas.len());
        for meta in &metas {
            scramble.push(meta.sample_table.clone());
            base.push(meta.base_table.clone());
            method.push(meta.sample_type.tag().to_string());
            on.push(meta.sample_type.columns().join(","));
            ratio.push(meta.ratio);
            rows.push(meta.sample_rows as i64);
            base_rows.push(meta.base_rows as i64);
            status.push(self.staleness_label(meta));
        }
        TableBuilder::new()
            .str_column("scramble", scramble)
            .str_column("base_table", base)
            .str_column("method", method)
            .str_column("columns", on)
            .float_column("ratio", ratio)
            .int_column("rows", rows)
            .int_column("base_rows", base_rows)
            .str_column("status", status)
            .build()
            .map_err(|e| VerdictError::Answer(format!("SHOW SCRAMBLES failed: {e}")))
    }

    fn staleness_label(&self, meta: &SampleMeta) -> String {
        match self.ctx.connection().table_row_count(&meta.base_table) {
            Ok(current) => match crate::sample::maintenance::staleness(meta, current) {
                Staleness::Fresh => "fresh".to_string(),
                Staleness::Stale { appended_rows } => format!("stale(+{appended_rows})"),
                Staleness::RequiresRebuild => "requires_rebuild".to_string(),
            },
            Err(_) => "base_missing".to_string(),
        }
    }

    /// Builds the `SHOW STATS` table: middleware counters as
    /// (section, stat, value) rows, grouped into stable sections — `cache`,
    /// `streams`, `backend`, `store` — with stats sorted alphabetically
    /// within each section.  The serving layer appends its own `serving`
    /// section rows server-side; the ordering is pinned by a test, so
    /// dashboards can scrape positions safely.
    fn show_stats(&self) -> Table {
        let cache = self.ctx.cache_stats();
        let streams = self.ctx.stream_stats();
        let backend = self.ctx.backend_stats();
        let mut rows: Vec<(&'static str, String, i64)> = vec![
            (
                "cache",
                "cache_capacity".into(),
                self.ctx.cache().capacity() as i64,
            ),
            (
                "cache",
                "cache_entries".into(),
                self.ctx.cache().len() as i64,
            ),
            ("cache", "cache_evictions".into(), cache.evictions as i64),
            ("cache", "cache_hits".into(), cache.hits as i64),
            ("cache", "cache_insertions".into(), cache.insertions as i64),
            (
                "cache",
                "cache_invalidations".into(),
                cache.invalidations as i64,
            ),
            ("cache", "cache_misses".into(), cache.misses as i64),
            (
                "streams",
                "stream_early_stops".into(),
                streams.early_stops as i64,
            ),
            (
                "streams",
                "stream_fallbacks".into(),
                streams.fallbacks as i64,
            ),
            ("streams", "stream_frames".into(), streams.frames as i64),
            (
                "streams",
                "streams_completed".into(),
                streams.completed as i64,
            ),
            ("streams", "streams_started".into(), streams.started as i64),
            // Per-backend routing counters: which backend answered, how many
            // statements it was handed, and how often a missing capability
            // forced a degraded (but correct) path.
            (
                "backend",
                "backend_queries".into(),
                backend.queries_routed as i64,
            ),
            (
                "backend",
                "backend_scan_fallbacks".into(),
                backend.scan_fallbacks as i64,
            ),
            (
                "backend",
                "backend_version_fallbacks".into(),
                backend.version_fallbacks as i64,
            ),
            ("backend", "scrambles".into(), self.ctx.meta().len() as i64),
        ];
        for (k, v) in &backend.extra {
            rows.push(("backend", format!("backend_{k}"), *v as i64));
        }
        // Persistent-store activity, present only when the context was
        // opened over a data directory.
        if let Some(store) = self.ctx.store_stats() {
            rows.push((
                "store",
                "store_checkpoints".into(),
                store.checkpoints as i64,
            ));
            rows.push(("store", "store_pages_read".into(), store.pages_read as i64));
            rows.push((
                "store",
                "store_pages_written".into(),
                store.pages_written as i64,
            ));
            rows.push(("store", "store_recoveries".into(), store.recoveries as i64));
            rows.push((
                "store",
                "store_wal_records".into(),
                store.wal_records as i64,
            ));
            rows.push(("store", "store_wal_syncs".into(), store.wal_syncs as i64));
        }
        let rank = |s: &str| match s {
            "cache" => 0u8,
            "streams" => 1,
            "backend" => 2,
            "store" => 3,
            _ => 4,
        };
        rows.sort_by(|a, b| (rank(a.0), a.1.as_str()).cmp(&(rank(b.0), b.1.as_str())));
        TableBuilder::new()
            .str_column(
                "section",
                rows.iter().map(|(s, _, _)| s.to_string()).collect(),
            )
            .str_column("stat", rows.iter().map(|(_, k, _)| k.clone()).collect())
            .int_column("value", rows.iter().map(|(_, _, v)| *v).collect())
            .build()
            .expect("stats table construction cannot fail")
    }

    /// Applies `SET <option> = <value>`, returning the canonical option name
    /// and the rendered applied value.
    fn set_option(&mut self, name: &str, value: &SetValue) -> VerdictResult<(String, String)> {
        let reset = matches!(value, SetValue::Ident(w) if w == "default" || w == "none");
        match name {
            "target_error" | "max_relative_error" => {
                self.options.target_error = if reset {
                    None
                } else {
                    let t = value_f64(value)?;
                    if t <= 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "target_error must be positive, got {t}"
                        )));
                    }
                    Some(t)
                };
                Ok(("target_error".into(), render(self.options.target_error)))
            }
            "confidence" => {
                let v = if reset {
                    None
                } else {
                    let c = value_f64(value)?;
                    if !(c > 0.0 && c < 1.0) {
                        return Err(VerdictError::Unsupported(format!(
                            "confidence must be in (0, 1), got {c}"
                        )));
                    }
                    Some(c)
                };
                self.options.confidence = v;
                Ok(("confidence".into(), render(self.options.confidence)))
            }
            "cache" => {
                self.options.cache = if reset {
                    None
                } else {
                    Some(value_bool(value)?)
                };
                Ok(("cache".into(), render(self.options.cache)))
            }
            "parallelism" => {
                let v = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 1.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "parallelism must be a positive integer, got {n}"
                        )));
                    }
                    Some(n as usize)
                };
                self.options.parallelism = v;
                // The hint targets the shared engine pool (engine-wide, see
                // the field docs); results stay bit-identical at any
                // setting, only latency changes.  Reset restores the base
                // configuration's setting (or the machine default).
                let effective = v
                    .or(self.ctx.config().parallelism)
                    .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()));
                if let Some(n) = effective {
                    self.ctx.connection().set_parallelism(n);
                }
                Ok(("parallelism".into(), render(self.options.parallelism)))
            }
            "group_strategy" => {
                let v = if reset {
                    None
                } else {
                    let word = match value {
                        SetValue::Ident(w) => w.clone(),
                        SetValue::Literal(Literal::String(s)) => s.clone(),
                        other => {
                            return Err(VerdictError::Unsupported(format!(
                                "expected auto/hash/dict/radix, got {other}"
                            )))
                        }
                    };
                    Some(GroupStrategy::parse(&word).ok_or_else(|| {
                        VerdictError::Unsupported(format!(
                            "unknown group_strategy {word} (auto, hash, dict, radix)"
                        ))
                    })?)
                };
                self.options.group_strategy = v;
                // Like parallelism, the hint targets the shared engine pool;
                // every strategy yields bit-identical groupings, so only
                // latency changes.  Reset restores the base configuration's
                // setting (or Auto).
                let effective = v
                    .or(self.ctx.config().group_strategy)
                    .unwrap_or(GroupStrategy::Auto);
                self.ctx.connection().set_group_strategy(effective);
                Ok(("group_strategy".into(), render(self.options.group_strategy)))
            }
            "bypass" => {
                self.options.bypass = if reset { false } else { value_bool(value)? };
                Ok(("bypass".into(), self.options.bypass.to_string()))
            }
            "error_columns" | "include_error_columns" => {
                self.options.error_columns = if reset {
                    None
                } else {
                    Some(value_bool(value)?)
                };
                Ok(("error_columns".into(), render(self.options.error_columns)))
            }
            "io_budget" => {
                self.options.io_budget = if reset {
                    None
                } else {
                    Some(value_fraction(value, "io_budget")?)
                };
                Ok(("io_budget".into(), render(self.options.io_budget)))
            }
            "sampling_ratio" => {
                self.options.sampling_ratio = if reset {
                    None
                } else {
                    Some(value_fraction(value, "sampling_ratio")?)
                };
                Ok(("sampling_ratio".into(), render(self.options.sampling_ratio)))
            }
            "stream_block_rows" => {
                self.options.stream_block_rows = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 1.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "stream_block_rows must be a positive integer, got {n}"
                        )));
                    }
                    Some(n as usize)
                };
                Ok((
                    "stream_block_rows".into(),
                    render(self.options.stream_block_rows),
                ))
            }
            "stream_max_frames" => {
                self.options.stream_max_frames = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "stream_max_frames must be a non-negative integer \
                             (0 = unbounded), got {n}"
                        )));
                    }
                    Some(n as usize)
                };
                Ok((
                    "stream_max_frames".into(),
                    render(self.options.stream_max_frames),
                ))
            }
            "deadline_ms" => {
                self.options.deadline_ms = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 1.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "deadline_ms must be a positive integer number of \
                             milliseconds, got {n}"
                        )));
                    }
                    Some(n as u64)
                };
                Ok(("deadline_ms".into(), render(self.options.deadline_ms)))
            }
            "slow_query_ms" => {
                self.options.slow_query_ms = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "slow_query_ms must be a non-negative integer number of \
                             milliseconds (0 = disabled), got {n}"
                        )));
                    }
                    Some(n as u64)
                };
                Ok(("slow_query_ms".into(), render(self.options.slow_query_ms)))
            }
            other => Err(VerdictError::Unsupported(format!(
                "unknown session option {other} (target_error, confidence, cache, \
                 parallelism, group_strategy, bypass, error_columns, io_budget, \
                 sampling_ratio, stream_block_rows, stream_max_frames, deadline_ms, \
                 slow_query_ms)"
            ))),
        }
    }
}

/// Renders a finished trace as the `EXPLAIN ANALYZE` table: one row per
/// span (offset + duration + detail), followed by `@`-prefixed attribution
/// rows (total wall time, cache/shed/backend/store attribution).  Span
/// durations tile the statement's wall time, so summing the non-`@` rows'
/// `duration_us` approximates `@total` closely.
fn render_analyze(trace: &QueryTrace) -> Table {
    let mut span = Vec::new();
    let mut start_us = Vec::new();
    let mut duration_us = Vec::new();
    let mut detail = Vec::new();
    for s in &trace.spans {
        span.push(s.stage.to_string());
        start_us.push(s.start.as_micros() as i64);
        duration_us.push(s.duration.as_micros() as i64);
        detail.push(s.detail.clone());
    }
    let mut attr = |name: &str, value: String| {
        span.push(name.to_string());
        start_us.push(0);
        duration_us.push(0);
        detail.push(value);
    };
    attr("@class", trace.class.to_string());
    attr("@cached", trace.cached.to_string());
    attr("@exact", trace.exact.to_string());
    attr("@shed_tier", trace.shed_tier.to_string());
    attr("@backend_queries", trace.backend_queries.to_string());
    attr("@store_pages_read", trace.store_pages_read.to_string());
    attr("@rows_returned", trace.rows_returned.to_string());
    attr("@rows_scanned", trace.rows_scanned.to_string());
    attr("@slow", trace.slow.to_string());
    // @total carries the wall time in duration_us, like the span rows.
    span.push("@total".to_string());
    start_us.push(0);
    duration_us.push(trace.total.as_micros() as i64);
    detail.push(format!("seq {}", trace.seq));
    TableBuilder::new()
        .str_column("span", span)
        .int_column("start_us", start_us)
        .int_column("duration_us", duration_us)
        .str_column("detail", detail)
        .build()
        .expect("analyze table construction cannot fail")
}

/// Maps `METHOD`/`ON` clauses onto a [`SampleType`], validating the
/// combination.
fn scramble_sample_type(
    method: Option<ScrambleMethod>,
    on: &[String],
) -> VerdictResult<SampleType> {
    let columns: Vec<String> = on.iter().map(|c| c.to_ascii_lowercase()).collect();
    match method.unwrap_or(ScrambleMethod::Uniform) {
        ScrambleMethod::Uniform => {
            if !columns.is_empty() {
                return Err(VerdictError::Unsupported(
                    "uniform scrambles take no ON columns; use METHOD stratified or hashed".into(),
                ));
            }
            Ok(SampleType::Uniform)
        }
        ScrambleMethod::Stratified => {
            if columns.is_empty() {
                return Err(VerdictError::Unsupported(
                    "METHOD stratified requires an ON column list".into(),
                ));
            }
            Ok(SampleType::Stratified { columns })
        }
        ScrambleMethod::Hashed => {
            if columns.is_empty() {
                return Err(VerdictError::Unsupported(
                    "METHOD hashed requires an ON column list".into(),
                ));
            }
            Ok(SampleType::Hashed { columns })
        }
    }
}

/// A numeric `SET` value constrained to the (0, 1] fraction range.
fn value_fraction(value: &SetValue, option: &str) -> VerdictResult<f64> {
    let v = value_f64(value)?;
    if !(v > 0.0 && v <= 1.0) {
        return Err(VerdictError::Unsupported(format!(
            "{option} must be in (0, 1], got {v}"
        )));
    }
    Ok(v)
}

fn value_f64(value: &SetValue) -> VerdictResult<f64> {
    match value {
        SetValue::Literal(Literal::Float(f)) => Ok(*f),
        SetValue::Literal(Literal::Integer(i)) => Ok(*i as f64),
        other => Err(VerdictError::Unsupported(format!(
            "expected a numeric value, got {other}"
        ))),
    }
}

fn value_bool(value: &SetValue) -> VerdictResult<bool> {
    match value {
        SetValue::Literal(Literal::Boolean(b)) => Ok(*b),
        SetValue::Ident(w) if w == "on" => Ok(true),
        SetValue::Ident(w) if w == "off" => Ok(false),
        SetValue::Literal(Literal::Integer(1)) => Ok(true),
        SetValue::Literal(Literal::Integer(0)) => Ok(false),
        other => Err(VerdictError::Unsupported(format!(
            "expected on/off, got {other}"
        ))),
    }
}

fn render<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "default".to_string(),
    }
}
