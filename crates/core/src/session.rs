//! [`VerdictSession`] — the SQL-first session API.
//!
//! The paper's core claim is *universality*: applications talk to VerdictDB
//! exactly as they would to any SQL database.  Sample management, exact-mode
//! escapes, and tuning are all plain SQL statements — not bespoke library
//! calls.  A session accepts **only SQL** and returns a unified
//! [`VerdictResponse`]:
//!
//! ```text
//! CREATE SCRAMBLE s_orders FROM orders METHOD uniform RATIO 0.01
//! SELECT city, avg(price) AS ap FROM orders GROUP BY city
//! SET target_error = 0.02
//! BYPASS SELECT count(*) FROM orders
//! REFRESH SCRAMBLES orders FROM orders_batch
//! SHOW SCRAMBLES
//! DROP SCRAMBLES orders
//! ```
//!
//! A session owns a shared [`VerdictContext`] (`Arc`, so many sessions share
//! one engine catalog, sample registry, and answer cache) plus its own
//! [`QueryOptions`].  Options are resolved against the context's immutable
//! base [`VerdictConfig`] *per statement*: `SET` mutates only this session's
//! options, never shared state — the replacement for the old
//! `config_mut()`-on-a-shared-context wart, which could not work behind the
//! server's `Arc<VerdictContext>` at all.

use crate::config::VerdictConfig;
use crate::context::{VerdictAnswer, VerdictContext};
use crate::error::{VerdictError, VerdictResult};
use crate::progress::ProgressStream;
use crate::sample::maintenance::Staleness;
use crate::sample::{SampleMeta, SampleType};
use std::sync::Arc;
use verdict_engine::{GroupStrategy, Table, TableBuilder};
use verdict_sql::ast::{Literal, ScrambleMethod, SetValue, Statement};
use verdict_sql::printer::print_statement;

/// Per-session (and therefore per-query) overrides of the context's base
/// configuration (§2.4 knobs).
///
/// Every field is optional; `None` inherits the base [`VerdictConfig`].
/// Options are set through SQL (`SET <option> = <value>`) or constructed
/// directly for embedded use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryOptions {
    /// `SET target_error = r` — maximum tolerated relative error; when the
    /// estimated error exceeds it the query is re-run exactly (High-level
    /// Accuracy Contract).
    pub target_error: Option<f64>,
    /// `SET confidence = c` — confidence level for reported error bounds.
    pub confidence: Option<f64>,
    /// `SET cache = on|off` — per-session answer-cache policy.  `off`
    /// bypasses the shared cache for this session's statements (no lookups,
    /// no insertions); `on` restores the base behaviour.  A cache disabled
    /// at context construction cannot be enabled per session.
    pub cache: Option<bool>,
    /// `SET parallelism = n` — worker-thread hint for the underlying
    /// engine.  Results are bit-identical at any setting; only latency
    /// changes.  **Engine-wide, not session-scoped**: the hint is applied
    /// to the shared connection's morsel pool when set (the engine has one
    /// pool, so per-statement isolation is not possible); `SET parallelism
    /// = default` restores the base configuration's setting.
    pub parallelism: Option<usize>,
    /// `SET group_strategy = auto|hash|dict|radix` — GROUP BY clustering
    /// strategy hint for the engine's grouping kernels.  Every strategy
    /// yields bit-identical answers (same first-appearance group order);
    /// only latency changes.  **Engine-wide, not session-scoped**, exactly
    /// like [`Self::parallelism`]; `SET group_strategy = default` restores
    /// the base configuration's setting.
    pub group_strategy: Option<GroupStrategy>,
    /// `SET bypass = on|off` — when on, every query runs exactly on the
    /// base tables (a session-wide `BYPASS`).
    pub bypass: bool,
    /// `SET error_columns = on|off` — attach `<column>_err` columns to
    /// approximate results.
    pub error_columns: Option<bool>,
    /// `SET io_budget = f` — maximum fraction of each large table read per
    /// query.
    pub io_budget: Option<f64>,
    /// `SET sampling_ratio = r` — default τ for `CREATE SCRAMBLE` statements
    /// that omit `RATIO`.
    pub sampling_ratio: Option<f64>,
    /// `SET stream_block_rows = n` — scramble rows consumed per progressive
    /// frame (see [`VerdictConfig::stream_block_rows`]).
    pub stream_block_rows: Option<usize>,
    /// `SET stream_max_frames = n` — cap on frames per stream, 0 for
    /// unbounded (see [`VerdictConfig::stream_max_frames`]).
    pub stream_max_frames: Option<usize>,
    /// `SET deadline_ms = n` — per-query deadline in milliseconds, enforced
    /// by the serving layer's admission control (a statement still queued
    /// when its deadline passes is answered with a typed `DEADLINE` error;
    /// progressive streams stop at the deadline).  `None` (the default)
    /// means no deadline; in-process sessions ignore the option.
    pub deadline_ms: Option<u64>,
}

impl QueryOptions {
    /// Resolves these options against a base configuration, producing the
    /// effective per-statement [`VerdictConfig`].
    pub fn resolve(&self, base: &VerdictConfig) -> VerdictConfig {
        let mut cfg = base.clone();
        if let Some(te) = self.target_error {
            cfg.max_relative_error = Some(te);
        }
        if let Some(c) = self.confidence {
            cfg.confidence = c;
        }
        if self.cache == Some(false) {
            cfg.answer_cache_capacity = 0;
        }
        // `parallelism` and `group_strategy` are deliberately NOT folded in:
        // the engine reads those knobs only at context construction, so the
        // per-statement config cannot carry them — SET applies each hint to
        // the shared pool instead.
        if let Some(e) = self.error_columns {
            cfg.include_error_columns = e;
        }
        if let Some(b) = self.io_budget {
            cfg.io_budget = b;
        }
        if let Some(r) = self.sampling_ratio {
            cfg.sampling_ratio = r;
        }
        if let Some(b) = self.stream_block_rows {
            cfg.stream_block_rows = b;
        }
        if let Some(f) = self.stream_max_frames {
            cfg.stream_max_frames = f;
        }
        cfg
    }
}

/// The unified result of one SQL statement executed on a [`VerdictSession`].
#[derive(Debug, Clone)]
pub enum VerdictResponse {
    /// A query answer (`SELECT`, `STREAM`, `BYPASS`, or passthrough DDL/DML).
    Answer(VerdictAnswer),
    /// Scrambles built by `CREATE SCRAMBLE` / `CREATE SCRAMBLES`.
    ScramblesCreated(Vec<SampleMeta>),
    /// Number of scrambles removed by `DROP SCRAMBLE[S]`.
    ScramblesDropped(usize),
    /// Number of scrambles refreshed/rebuilt by `REFRESH SCRAMBLE[S]`.
    ScramblesRefreshed(usize),
    /// The `SHOW SCRAMBLES` listing.
    Scrambles(Table),
    /// The `SHOW STATS` listing.
    Stats(Table),
    /// Acknowledgement of `SET <option> = <value>` (normalised name/value).
    OptionSet {
        /// The canonical option name.
        name: String,
        /// The applied value, rendered as text (`"default"` when cleared).
        value: String,
    },
}

impl VerdictResponse {
    /// The tabular part of the response, if any (`Answer`, `Scrambles`,
    /// `Stats`).
    pub fn table(&self) -> Option<&Table> {
        match self {
            VerdictResponse::Answer(a) => Some(&a.table),
            VerdictResponse::Scrambles(t) | VerdictResponse::Stats(t) => Some(t),
            _ => None,
        }
    }

    /// The query answer, if this response carries one.
    pub fn answer(&self) -> Option<&VerdictAnswer> {
        match self {
            VerdictResponse::Answer(a) => Some(a),
            _ => None,
        }
    }

    /// Consumes the response, returning the query answer or an error for
    /// non-answer responses (convenience for callers that know they sent a
    /// query).
    pub fn into_answer(self) -> VerdictResult<VerdictAnswer> {
        match self {
            VerdictResponse::Answer(a) => Ok(a),
            other => Err(VerdictError::Answer(format!(
                "statement produced a {} response, not a query answer",
                other.kind()
            ))),
        }
    }

    /// A short tag naming the response variant (used in protocol frames).
    pub fn kind(&self) -> &'static str {
        match self {
            VerdictResponse::Answer(_) => "answer",
            VerdictResponse::ScramblesCreated(_) => "scrambles_created",
            VerdictResponse::ScramblesDropped(_) => "scrambles_dropped",
            VerdictResponse::ScramblesRefreshed(_) => "scrambles_refreshed",
            VerdictResponse::Scrambles(_) => "scrambles",
            VerdictResponse::Stats(_) => "stats",
            VerdictResponse::OptionSet { .. } => "option_set",
        }
    }
}

/// A SQL-only session over a shared [`VerdictContext`].
///
/// See the [module documentation](self) for the statement surface.  Sessions
/// are cheap to create (one `Arc` clone plus default options) and are *not*
/// shared between threads — each connection/actor gets its own.
pub struct VerdictSession {
    ctx: Arc<VerdictContext>,
    options: QueryOptions,
    shed: crate::shed::ShedTier,
}

impl VerdictSession {
    /// Opens a session with default (inherit-everything) options.
    pub fn new(ctx: Arc<VerdictContext>) -> VerdictSession {
        Self::with_options(ctx, QueryOptions::default())
    }

    /// Opens a session with explicit initial options.
    pub fn with_options(ctx: Arc<VerdictContext>, options: QueryOptions) -> VerdictSession {
        VerdictSession {
            ctx,
            options,
            shed: crate::shed::ShedTier::None,
        }
    }

    /// The shared middleware context.
    pub fn context(&self) -> &Arc<VerdictContext> {
        &self.ctx
    }

    /// The current session options.
    pub fn options(&self) -> &QueryOptions {
        &self.options
    }

    /// Applies a load-shedding tier to every subsequent statement's
    /// effective configuration (see [`crate::shed`]).  Set by the serving
    /// layer's admission control per admitted statement — deliberately not
    /// reachable through `SET`, so clients cannot un-shed themselves.
    pub fn set_shed_tier(&mut self, tier: crate::shed::ShedTier) {
        self.shed = tier;
    }

    /// The load-shedding tier currently applied to this session.
    pub fn shed_tier(&self) -> crate::shed::ShedTier {
        self.shed
    }

    /// The effective configuration the next statement would run under.
    pub fn effective_config(&self) -> VerdictConfig {
        let mut cfg = self.options.resolve(self.ctx.config());
        self.shed.apply(&mut cfg);
        cfg
    }

    /// Executes one SQL statement (a trailing `;` is allowed).
    pub fn execute(&mut self, sql: &str) -> VerdictResult<VerdictResponse> {
        let stmt = verdict_sql::parse_statement(sql)?;
        self.execute_statement(&stmt, sql)
    }

    /// Opens a progressive execution for a query: a pull-based iterator of
    /// [`ProgressFrame`](crate::progress::ProgressFrame)s whose estimates
    /// and confidence intervals refine block by block, ending with the
    /// one-shot answer (see [`crate::progress`]).  Accepts either a plain
    /// `SELECT …` or the `STREAM SELECT …` statement form.
    ///
    /// The stream runs under this session's current options: `target_error`
    /// becomes the early-stop threshold, `stream_block_rows` /
    /// `stream_max_frames` shape the frame cadence, and `bypass` degrades
    /// to a single exact frame.
    pub fn stream(&mut self, sql: &str) -> VerdictResult<ProgressStream> {
        let stmt = verdict_sql::parse_statement(sql)?;
        match stmt {
            Statement::Stream(q) | Statement::Query(q) => Ok(self.open_stream(*q)),
            _ => Err(VerdictError::Unsupported(
                "only queries can be streamed (SELECT … or STREAM SELECT …)".into(),
            )),
        }
    }

    fn open_stream(&mut self, query: verdict_sql::ast::Query) -> ProgressStream {
        let cfg = self.effective_config();
        ProgressStream::open(Arc::clone(&self.ctx), query, cfg, self.options.bypass)
    }

    /// Executes a `;`-separated script, returning one response per statement.
    /// Execution stops at the first error.
    pub fn execute_script(&mut self, sql: &str) -> VerdictResult<Vec<VerdictResponse>> {
        let stmts = verdict_sql::parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in &stmts {
            let text = print_statement(stmt, self.ctx.dialect());
            out.push(self.execute_statement(stmt, &text)?);
        }
        Ok(out)
    }

    /// Dispatches one parsed statement; `sql` must be its source text.
    pub fn execute_statement(
        &mut self,
        stmt: &Statement,
        sql: &str,
    ) -> VerdictResult<VerdictResponse> {
        match stmt {
            // Plain SQL: approximate when possible, exact under session
            // bypass; DDL/DML passes through to the underlying database.
            Statement::Query(_)
            | Statement::CreateTableAs { .. }
            | Statement::DropTable { .. }
            | Statement::InsertIntoSelect { .. } => {
                let cfg = self.effective_config();
                let answer = if self.options.bypass {
                    self.ctx.execute_exact(sql)?
                } else {
                    self.ctx.execute_statement_with_config(stmt, sql, &cfg)?
                };
                Ok(VerdictResponse::Answer(answer))
            }
            Statement::Bypass(inner) => {
                let text = print_statement(inner, self.ctx.dialect());
                Ok(VerdictResponse::Answer(self.ctx.execute_exact(&text)?))
            }
            Statement::Stream(q) => {
                // Single-response alias for the streaming surface: run the
                // progressive execution to its end and return the final
                // frame (bit-identical to the one-shot answer when the
                // stream completes; the early-stopped prefix answer when a
                // target error is met first).  The cache is never read — a
                // stream observes fresh data — but a completed answer is
                // inserted so the next identical SELECT hits.
                let stream = self.open_stream((**q).clone());
                Ok(VerdictResponse::Answer(stream.final_frame()?.answer))
            }
            Statement::CreateScramble {
                name,
                table,
                method,
                ratio,
                on,
            } => {
                let cfg = self.effective_config();
                let sample_type = scramble_sample_type(*method, on)?;
                let ratio = ratio.unwrap_or(cfg.sampling_ratio);
                if !(ratio > 0.0 && ratio <= 1.0) {
                    return Err(VerdictError::Unsupported(format!(
                        "scramble RATIO must be in (0, 1], got {ratio}"
                    )));
                }
                let meta = self.ctx.create_sample_named(
                    Some(&name.key()),
                    &table.key(),
                    sample_type,
                    ratio,
                    &cfg,
                )?;
                Ok(VerdictResponse::ScramblesCreated(vec![meta]))
            }
            Statement::CreateScrambles { table } => {
                let cfg = self.effective_config();
                let created = self
                    .ctx
                    .create_recommended_samples_with(&table.key(), &cfg)?;
                Ok(VerdictResponse::ScramblesCreated(created))
            }
            Statement::DropScramble { name, if_exists } => {
                let dropped = self.ctx.drop_sample_named(&name.key(), *if_exists)?;
                Ok(VerdictResponse::ScramblesDropped(usize::from(dropped)))
            }
            Statement::DropScrambles { table, if_exists } => {
                let dropped = self.ctx.drop_samples(&table.key())?;
                if dropped == 0 && !if_exists {
                    return Err(VerdictError::Metadata(format!(
                        "no scrambles are registered for table {table}"
                    )));
                }
                Ok(VerdictResponse::ScramblesDropped(dropped))
            }
            Statement::RefreshScrambles { table, batch } => {
                let refreshed = match batch {
                    Some(b) => self
                        .ctx
                        .refresh_samples_after_append(&table.key(), &b.key())?,
                    None => {
                        let cfg = self.effective_config();
                        self.ctx.rebuild_samples(&table.key(), &cfg)?
                    }
                };
                Ok(VerdictResponse::ScramblesRefreshed(refreshed))
            }
            Statement::ShowScrambles => Ok(VerdictResponse::Scrambles(self.show_scrambles()?)),
            Statement::ShowStats => Ok(VerdictResponse::Stats(self.show_stats())),
            Statement::SetOption { name, value } => {
                let (name, rendered) = self.set_option(name, value)?;
                Ok(VerdictResponse::OptionSet {
                    name,
                    value: rendered,
                })
            }
        }
    }

    /// Builds the `SHOW SCRAMBLES` table: one row per registered scramble,
    /// sorted by (base table, scramble name) for a deterministic listing.
    fn show_scrambles(&self) -> VerdictResult<Table> {
        let mut metas = self.ctx.meta().all();
        metas.sort_by(|a, b| {
            (a.base_table.as_str(), a.sample_table.as_str())
                .cmp(&(b.base_table.as_str(), b.sample_table.as_str()))
        });
        let mut scramble = Vec::with_capacity(metas.len());
        let mut base = Vec::with_capacity(metas.len());
        let mut method = Vec::with_capacity(metas.len());
        let mut on = Vec::with_capacity(metas.len());
        let mut ratio = Vec::with_capacity(metas.len());
        let mut rows = Vec::with_capacity(metas.len());
        let mut base_rows = Vec::with_capacity(metas.len());
        let mut status = Vec::with_capacity(metas.len());
        for meta in &metas {
            scramble.push(meta.sample_table.clone());
            base.push(meta.base_table.clone());
            method.push(meta.sample_type.tag().to_string());
            on.push(meta.sample_type.columns().join(","));
            ratio.push(meta.ratio);
            rows.push(meta.sample_rows as i64);
            base_rows.push(meta.base_rows as i64);
            status.push(self.staleness_label(meta));
        }
        TableBuilder::new()
            .str_column("scramble", scramble)
            .str_column("base_table", base)
            .str_column("method", method)
            .str_column("columns", on)
            .float_column("ratio", ratio)
            .int_column("rows", rows)
            .int_column("base_rows", base_rows)
            .str_column("status", status)
            .build()
            .map_err(|e| VerdictError::Answer(format!("SHOW SCRAMBLES failed: {e}")))
    }

    fn staleness_label(&self, meta: &SampleMeta) -> String {
        match self.ctx.connection().table_row_count(&meta.base_table) {
            Ok(current) => match crate::sample::maintenance::staleness(meta, current) {
                Staleness::Fresh => "fresh".to_string(),
                Staleness::Stale { appended_rows } => format!("stale(+{appended_rows})"),
                Staleness::RequiresRebuild => "requires_rebuild".to_string(),
            },
            Err(_) => "base_missing".to_string(),
        }
    }

    /// Builds the `SHOW STATS` table: middleware counters as (stat, value)
    /// rows — scramble registry size, the answer cache's
    /// hit/miss/insert/invalidation/eviction activity, and the progressive
    /// streaming counters.
    fn show_stats(&self) -> Table {
        let cache = self.ctx.cache_stats();
        let streams = self.ctx.stream_stats();
        let backend = self.ctx.backend_stats();
        let mut rows: Vec<(String, i64)> = vec![
            ("scrambles".into(), self.ctx.meta().len() as i64),
            ("cache_capacity".into(), self.ctx.cache().capacity() as i64),
            ("cache_entries".into(), self.ctx.cache().len() as i64),
            ("cache_hits".into(), cache.hits as i64),
            ("cache_misses".into(), cache.misses as i64),
            ("cache_insertions".into(), cache.insertions as i64),
            ("cache_invalidations".into(), cache.invalidations as i64),
            ("cache_evictions".into(), cache.evictions as i64),
            ("streams_started".into(), streams.started as i64),
            ("streams_completed".into(), streams.completed as i64),
            ("stream_frames".into(), streams.frames as i64),
            ("stream_early_stops".into(), streams.early_stops as i64),
            ("stream_fallbacks".into(), streams.fallbacks as i64),
            // Per-backend routing counters: which backend answered, how many
            // statements it was handed, and how often a missing capability
            // forced a degraded (but correct) path.
            ("backend_queries".into(), backend.queries_routed as i64),
            (
                "backend_version_fallbacks".into(),
                backend.version_fallbacks as i64,
            ),
            (
                "backend_scan_fallbacks".into(),
                backend.scan_fallbacks as i64,
            ),
        ];
        for (k, v) in &backend.extra {
            rows.push((format!("backend_{k}"), *v as i64));
        }
        // Persistent-store activity, present only when the context was
        // opened over a data directory.
        if let Some(store) = self.ctx.store_stats() {
            rows.push(("store_pages_read".into(), store.pages_read as i64));
            rows.push(("store_pages_written".into(), store.pages_written as i64));
            rows.push(("store_wal_records".into(), store.wal_records as i64));
            rows.push(("store_wal_syncs".into(), store.wal_syncs as i64));
            rows.push(("store_recoveries".into(), store.recoveries as i64));
            rows.push(("store_checkpoints".into(), store.checkpoints as i64));
        }
        TableBuilder::new()
            .str_column("stat", rows.iter().map(|(k, _)| k.clone()).collect())
            .int_column("value", rows.iter().map(|(_, v)| *v).collect())
            .build()
            .expect("stats table construction cannot fail")
    }

    /// Applies `SET <option> = <value>`, returning the canonical option name
    /// and the rendered applied value.
    fn set_option(&mut self, name: &str, value: &SetValue) -> VerdictResult<(String, String)> {
        let reset = matches!(value, SetValue::Ident(w) if w == "default" || w == "none");
        match name {
            "target_error" | "max_relative_error" => {
                self.options.target_error = if reset {
                    None
                } else {
                    let t = value_f64(value)?;
                    if t <= 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "target_error must be positive, got {t}"
                        )));
                    }
                    Some(t)
                };
                Ok(("target_error".into(), render(self.options.target_error)))
            }
            "confidence" => {
                let v = if reset {
                    None
                } else {
                    let c = value_f64(value)?;
                    if !(c > 0.0 && c < 1.0) {
                        return Err(VerdictError::Unsupported(format!(
                            "confidence must be in (0, 1), got {c}"
                        )));
                    }
                    Some(c)
                };
                self.options.confidence = v;
                Ok(("confidence".into(), render(self.options.confidence)))
            }
            "cache" => {
                self.options.cache = if reset {
                    None
                } else {
                    Some(value_bool(value)?)
                };
                Ok(("cache".into(), render(self.options.cache)))
            }
            "parallelism" => {
                let v = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 1.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "parallelism must be a positive integer, got {n}"
                        )));
                    }
                    Some(n as usize)
                };
                self.options.parallelism = v;
                // The hint targets the shared engine pool (engine-wide, see
                // the field docs); results stay bit-identical at any
                // setting, only latency changes.  Reset restores the base
                // configuration's setting (or the machine default).
                let effective = v
                    .or(self.ctx.config().parallelism)
                    .or_else(|| std::thread::available_parallelism().ok().map(|n| n.get()));
                if let Some(n) = effective {
                    self.ctx.connection().set_parallelism(n);
                }
                Ok(("parallelism".into(), render(self.options.parallelism)))
            }
            "group_strategy" => {
                let v = if reset {
                    None
                } else {
                    let word = match value {
                        SetValue::Ident(w) => w.clone(),
                        SetValue::Literal(Literal::String(s)) => s.clone(),
                        other => {
                            return Err(VerdictError::Unsupported(format!(
                                "expected auto/hash/dict/radix, got {other}"
                            )))
                        }
                    };
                    Some(GroupStrategy::parse(&word).ok_or_else(|| {
                        VerdictError::Unsupported(format!(
                            "unknown group_strategy {word} (auto, hash, dict, radix)"
                        ))
                    })?)
                };
                self.options.group_strategy = v;
                // Like parallelism, the hint targets the shared engine pool;
                // every strategy yields bit-identical groupings, so only
                // latency changes.  Reset restores the base configuration's
                // setting (or Auto).
                let effective = v
                    .or(self.ctx.config().group_strategy)
                    .unwrap_or(GroupStrategy::Auto);
                self.ctx.connection().set_group_strategy(effective);
                Ok(("group_strategy".into(), render(self.options.group_strategy)))
            }
            "bypass" => {
                self.options.bypass = if reset { false } else { value_bool(value)? };
                Ok(("bypass".into(), self.options.bypass.to_string()))
            }
            "error_columns" | "include_error_columns" => {
                self.options.error_columns = if reset {
                    None
                } else {
                    Some(value_bool(value)?)
                };
                Ok(("error_columns".into(), render(self.options.error_columns)))
            }
            "io_budget" => {
                self.options.io_budget = if reset {
                    None
                } else {
                    Some(value_fraction(value, "io_budget")?)
                };
                Ok(("io_budget".into(), render(self.options.io_budget)))
            }
            "sampling_ratio" => {
                self.options.sampling_ratio = if reset {
                    None
                } else {
                    Some(value_fraction(value, "sampling_ratio")?)
                };
                Ok(("sampling_ratio".into(), render(self.options.sampling_ratio)))
            }
            "stream_block_rows" => {
                self.options.stream_block_rows = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 1.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "stream_block_rows must be a positive integer, got {n}"
                        )));
                    }
                    Some(n as usize)
                };
                Ok((
                    "stream_block_rows".into(),
                    render(self.options.stream_block_rows),
                ))
            }
            "stream_max_frames" => {
                self.options.stream_max_frames = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 0.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "stream_max_frames must be a non-negative integer \
                             (0 = unbounded), got {n}"
                        )));
                    }
                    Some(n as usize)
                };
                Ok((
                    "stream_max_frames".into(),
                    render(self.options.stream_max_frames),
                ))
            }
            "deadline_ms" => {
                self.options.deadline_ms = if reset {
                    None
                } else {
                    let n = value_f64(value)?;
                    if n < 1.0 || n.fract() != 0.0 {
                        return Err(VerdictError::Unsupported(format!(
                            "deadline_ms must be a positive integer number of \
                             milliseconds, got {n}"
                        )));
                    }
                    Some(n as u64)
                };
                Ok(("deadline_ms".into(), render(self.options.deadline_ms)))
            }
            other => Err(VerdictError::Unsupported(format!(
                "unknown session option {other} (target_error, confidence, cache, \
                 parallelism, group_strategy, bypass, error_columns, io_budget, \
                 sampling_ratio, stream_block_rows, stream_max_frames, deadline_ms)"
            ))),
        }
    }
}

/// Maps `METHOD`/`ON` clauses onto a [`SampleType`], validating the
/// combination.
fn scramble_sample_type(
    method: Option<ScrambleMethod>,
    on: &[String],
) -> VerdictResult<SampleType> {
    let columns: Vec<String> = on.iter().map(|c| c.to_ascii_lowercase()).collect();
    match method.unwrap_or(ScrambleMethod::Uniform) {
        ScrambleMethod::Uniform => {
            if !columns.is_empty() {
                return Err(VerdictError::Unsupported(
                    "uniform scrambles take no ON columns; use METHOD stratified or hashed".into(),
                ));
            }
            Ok(SampleType::Uniform)
        }
        ScrambleMethod::Stratified => {
            if columns.is_empty() {
                return Err(VerdictError::Unsupported(
                    "METHOD stratified requires an ON column list".into(),
                ));
            }
            Ok(SampleType::Stratified { columns })
        }
        ScrambleMethod::Hashed => {
            if columns.is_empty() {
                return Err(VerdictError::Unsupported(
                    "METHOD hashed requires an ON column list".into(),
                ));
            }
            Ok(SampleType::Hashed { columns })
        }
    }
}

/// A numeric `SET` value constrained to the (0, 1] fraction range.
fn value_fraction(value: &SetValue, option: &str) -> VerdictResult<f64> {
    let v = value_f64(value)?;
    if !(v > 0.0 && v <= 1.0) {
        return Err(VerdictError::Unsupported(format!(
            "{option} must be in (0, 1], got {v}"
        )));
    }
    Ok(v)
}

fn value_f64(value: &SetValue) -> VerdictResult<f64> {
    match value {
        SetValue::Literal(Literal::Float(f)) => Ok(*f),
        SetValue::Literal(Literal::Integer(i)) => Ok(*i as f64),
        other => Err(VerdictError::Unsupported(format!(
            "expected a numeric value, got {other}"
        ))),
    }
}

fn value_bool(value: &SetValue) -> VerdictResult<bool> {
    match value {
        SetValue::Literal(Literal::Boolean(b)) => Ok(*b),
        SetValue::Ident(w) if w == "on" => Ok(true),
        SetValue::Ident(w) if w == "off" => Ok(false),
        SetValue::Literal(Literal::Integer(1)) => Ok(true),
        SetValue::Literal(Literal::Integer(0)) => Ok(false),
        other => Err(VerdictError::Unsupported(format!(
            "expected on/off, got {other}"
        ))),
    }
}

fn render<T: std::fmt::Display>(v: Option<T>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "default".to_string(),
    }
}
