//! Admission control and accuracy shedding for the serving layer.
//!
//! Approximate query processing gives the server a degradation axis no
//! exact engine has: under overload it can *lower the accuracy* of answers
//! — raise the tolerated error, shrink the I/O budget — instead of turning
//! queries away.  This module holds the pure policy: [`ShedTier`] (how much
//! accuracy to give up), [`ShedPolicy`] (which queue depth maps to which
//! tier), and [`AdmissionController`] (the depth-tracking gate the server
//! consults per statement).  Keeping the logic here, free of sockets and
//! threads, makes the invariants directly property-testable:
//!
//! * tiers are **monotone** in queue depth — accuracy degrades before
//!   refusal, never after;
//! * refusal (`BUSY`) happens **only** at the queue's capacity watermark;
//! * every admission is paired with exactly one release (the server turns
//!   this into "every admitted query gets exactly one terminal frame").

use crate::config::VerdictConfig;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// How much accuracy the server sheds for one admitted query.
///
/// Tiers are ordered: a higher tier never reports a *tighter* accuracy
/// contract than a lower one.  `None` is the no-shedding fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum ShedTier {
    /// No shedding: the query runs under the session's own options.
    #[default]
    None,
    /// Light shedding: tolerate ≥ 2% relative error, keep the I/O budget.
    Light,
    /// Heavy shedding: tolerate ≥ 5% relative error, halve the I/O budget.
    Heavy,
    /// Critical shedding (last step before refusal): tolerate ≥ 10%
    /// relative error, quarter the I/O budget.
    Critical,
}

impl ShedTier {
    /// The tolerated-relative-error floor this tier imposes (`None` for the
    /// unshedded tier).  A session that already tolerates *more* error than
    /// the floor keeps its own setting — shedding never tightens a contract.
    pub fn target_error_floor(self) -> Option<f64> {
        match self {
            ShedTier::None => None,
            ShedTier::Light => Some(0.02),
            ShedTier::Heavy => Some(0.05),
            ShedTier::Critical => Some(0.10),
        }
    }

    /// Multiplier applied to the effective I/O budget (≤ 1).
    pub fn io_budget_scale(self) -> f64 {
        match self {
            ShedTier::None | ShedTier::Light => 1.0,
            ShedTier::Heavy => 0.5,
            ShedTier::Critical => 0.25,
        }
    }

    /// Numeric level (0 = unshedded), reported on the wire as `shed=<n>`.
    pub fn level(self) -> u8 {
        match self {
            ShedTier::None => 0,
            ShedTier::Light => 1,
            ShedTier::Heavy => 2,
            ShedTier::Critical => 3,
        }
    }

    /// The tier for a numeric level (saturating at `Critical`).
    pub fn from_level(level: u8) -> ShedTier {
        match level {
            0 => ShedTier::None,
            1 => ShedTier::Light,
            2 => ShedTier::Heavy,
            _ => ShedTier::Critical,
        }
    }

    /// Human-readable tag used in `DEGRADED` annotations and stats.
    pub fn label(self) -> &'static str {
        match self {
            ShedTier::None => "none",
            ShedTier::Light => "light",
            ShedTier::Heavy => "heavy",
            ShedTier::Critical => "critical",
        }
    }

    /// Folds the tier into an effective per-statement configuration:
    /// raises the tolerated relative error to the tier's floor and scales
    /// the I/O budget down.  Both knobs are part of the answer-cache
    /// fingerprint, so degraded answers never pollute unshedded entries.
    pub fn apply(self, cfg: &mut VerdictConfig) {
        if let Some(floor) = self.target_error_floor() {
            cfg.max_relative_error = Some(match cfg.max_relative_error {
                Some(t) => t.max(floor),
                None => floor,
            });
            // Keep at least a sliver of budget so the plan stays feasible.
            cfg.io_budget = (cfg.io_budget * self.io_budget_scale()).max(1e-4);
        }
    }
}

/// Maps queue depth to a [`ShedTier`] via fractional watermarks of the
/// queue capacity; refusal happens only when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedPolicy {
    /// Maximum number of concurrently admitted (queued + executing)
    /// statements; depth at capacity refuses with `BUSY`.
    pub queue_capacity: usize,
    /// Depth fraction at which [`ShedTier::Light`] begins.
    pub light_watermark: f64,
    /// Depth fraction at which [`ShedTier::Heavy`] begins.
    pub heavy_watermark: f64,
    /// Depth fraction at which [`ShedTier::Critical`] begins.
    pub critical_watermark: f64,
}

impl ShedPolicy {
    /// The default watermarks (50% / 75% / 90%) over the given capacity.
    pub fn for_capacity(queue_capacity: usize) -> ShedPolicy {
        ShedPolicy {
            queue_capacity: queue_capacity.max(1),
            light_watermark: 0.50,
            heavy_watermark: 0.75,
            critical_watermark: 0.90,
        }
    }

    /// The tier applied to a query admitted at the given depth (depth =
    /// statements already admitted, not counting this one).  The watermark
    /// fraction counts the arriving statement itself, so the final slot
    /// before refusal always sheds at [`ShedTier::Critical`] — degradation
    /// strictly precedes refusal at every capacity.
    pub fn tier_at(&self, depth: usize) -> ShedTier {
        let cap = self.queue_capacity.max(1) as f64;
        let fraction = (depth + 1) as f64 / cap;
        if fraction >= self.critical_watermark {
            ShedTier::Critical
        } else if fraction >= self.heavy_watermark {
            ShedTier::Heavy
        } else if fraction >= self.light_watermark {
            ShedTier::Light
        } else {
            ShedTier::None
        }
    }

    /// True when a query arriving at the given depth must be refused.
    pub fn refuses_at(&self, depth: usize) -> bool {
        depth >= self.queue_capacity
    }
}

/// The admission decision for one arriving statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admitted, to run under the given shed tier.
    Admit(ShedTier),
    /// Refused: the run queue is at its capacity watermark (`BUSY`).
    Refuse,
}

/// Counters published by an [`AdmissionController`] (all monotone).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Statements admitted (any tier).
    pub admitted: u64,
    /// Statements admitted with a non-trivial shed tier.
    pub shed: u64,
    /// Statements refused with `BUSY`.
    pub refused: u64,
    /// Highest concurrently-admitted depth observed.
    pub peak_depth: u64,
}

/// Thread-safe admission gate: tracks the number of admitted-but-unfinished
/// statements and applies a [`ShedPolicy`] to each arrival.
///
/// The contract is strict ticketing: every [`Self::try_admit`] returning
/// [`Admission::Admit`] must be paired with exactly one [`Self::release`].
#[derive(Debug)]
pub struct AdmissionController {
    policy: ShedPolicy,
    depth: AtomicUsize,
    admitted: AtomicU64,
    shed: AtomicU64,
    refused: AtomicU64,
    peak_depth: AtomicU64,
}

impl AdmissionController {
    /// A controller over the given policy, starting idle.
    pub fn new(policy: ShedPolicy) -> AdmissionController {
        AdmissionController {
            policy,
            depth: AtomicUsize::new(0),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            peak_depth: AtomicU64::new(0),
        }
    }

    /// The policy this controller enforces.
    pub fn policy(&self) -> &ShedPolicy {
        &self.policy
    }

    /// Number of statements currently admitted and not yet released.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Attempts to admit one statement: refuses iff the queue is at its
    /// capacity watermark, otherwise reserves a slot and reports the shed
    /// tier the statement must run under.
    pub fn try_admit(&self) -> Admission {
        // Reserve optimistically, then check the watermark: compare-exchange
        // free, and over-admission is impossible because the reservation
        // itself is counted against capacity.
        let prior = self.depth.fetch_add(1, Ordering::SeqCst);
        if self.policy.refuses_at(prior) {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Admission::Refuse;
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        self.peak_depth
            .fetch_max(prior as u64 + 1, Ordering::Relaxed);
        let tier = self.policy.tier_at(prior);
        if tier != ShedTier::None {
            self.shed.fetch_add(1, Ordering::Relaxed);
        }
        Admission::Admit(tier)
    }

    /// Releases one previously admitted statement's slot.
    pub fn release(&self) {
        let prior = self.depth.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prior > 0, "release without a matching admit");
    }

    /// A snapshot of the monotone counters.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            peak_depth: self.peak_depth.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_are_monotone_in_depth() {
        let policy = ShedPolicy::for_capacity(100);
        let mut last = ShedTier::None;
        for depth in 0..=100 {
            let tier = policy.tier_at(depth);
            assert!(tier >= last, "tier regressed at depth {depth}");
            last = tier;
        }
    }

    #[test]
    fn refusal_only_at_capacity() {
        let policy = ShedPolicy::for_capacity(8);
        for depth in 0..8 {
            assert!(!policy.refuses_at(depth));
        }
        assert!(policy.refuses_at(8));
        assert!(policy.refuses_at(9));
    }

    #[test]
    fn degradation_precedes_refusal() {
        // Just below capacity the policy must already be shedding hard:
        // accuracy degrades before any refusal.
        for cap in [4usize, 10, 64, 1000] {
            let policy = ShedPolicy::for_capacity(cap);
            assert_eq!(policy.tier_at(cap - 1), ShedTier::Critical, "cap {cap}");
        }
    }

    #[test]
    fn apply_never_tightens_the_contract() {
        let mut cfg = VerdictConfig::default();
        cfg.max_relative_error = Some(0.5);
        let budget = cfg.io_budget;
        ShedTier::Critical.apply(&mut cfg);
        assert_eq!(cfg.max_relative_error, Some(0.5));
        assert!(cfg.io_budget <= budget);

        let mut cfg = VerdictConfig::default();
        ShedTier::Light.apply(&mut cfg);
        assert_eq!(cfg.max_relative_error, Some(0.02));
    }

    #[test]
    fn controller_ticketing_round_trips() {
        let ctl = AdmissionController::new(ShedPolicy::for_capacity(2));
        assert!(matches!(ctl.try_admit(), Admission::Admit(_)));
        assert!(matches!(ctl.try_admit(), Admission::Admit(_)));
        assert_eq!(ctl.try_admit(), Admission::Refuse);
        ctl.release();
        assert!(matches!(ctl.try_admit(), Admission::Admit(_)));
        ctl.release();
        ctl.release();
        assert_eq!(ctl.depth(), 0);
        let stats = ctl.stats();
        assert_eq!(stats.admitted, 3);
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.peak_depth, 2);
    }

    #[test]
    fn levels_round_trip() {
        for tier in [
            ShedTier::None,
            ShedTier::Light,
            ShedTier::Heavy,
            ShedTier::Critical,
        ] {
            assert_eq!(ShedTier::from_level(tier.level()), tier);
        }
    }
}
