//! Statistical primitives used throughout the middleware.
//!
//! * error function family (`erf`, `erfc`, `erfc_inv`) and the standard
//!   normal quantile, needed by Lemma 1 and by CLT-based error bounds;
//! * `staircase_probability` — the `f_m(n)` of Lemma 1: the Bernoulli
//!   sampling probability that yields at least `m` of `n` tuples with
//!   probability `1 − δ`;
//! * weighted means / standard deviations used by the answer rewriter.

/// The error function, via the Abramowitz & Stegun 7.1.26 approximation
/// (max absolute error ≈ 1.5e-7, ample for sampling-probability planning).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
pub fn erfc(x: f64) -> f64 {
    1.0 - erf(x)
}

/// Inverse of the complementary error function on (0, 2).
///
/// Solved by bisection on the monotonically decreasing `erfc`; 80 iterations
/// give far more precision than the forward approximation itself.
pub fn erfc_inv(y: f64) -> f64 {
    assert!(y > 0.0 && y < 2.0, "erfc_inv domain is (0, 2), got {y}");
    let mut lo = -6.0f64;
    let mut hi = 6.0f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if erfc(mid) > y {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Quantile (inverse CDF) of the standard normal distribution.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "normal quantile domain is (0,1), got {p}"
    );
    // Φ^{-1}(p) = −√2 · erfc_inv(2p)
    -std::f64::consts::SQRT_2 * erfc_inv(2.0 * p)
}

/// Two-sided normal critical value for a `confidence` (e.g. 0.95 → ≈1.96).
pub fn normal_critical_value(confidence: f64) -> f64 {
    let alpha = 1.0 - confidence;
    normal_quantile(1.0 - alpha / 2.0)
}

/// The `g(p; n)` of Lemma 1: a normal approximation of the `1 − δ` lower tail
/// of a Binomial(n, p) count.
///
/// `g(p; n) = sqrt(2·n·p·(1−p)) · erfc⁻¹(2(1−δ)) + n·p`
pub fn lemma1_g(p: f64, n: f64, delta: f64) -> f64 {
    (2.0 * n * p * (1.0 - p)).sqrt() * erfc_inv(2.0 * (1.0 - delta)) + n * p
}

/// The `f_m(n)` of Lemma 1: the smallest Bernoulli sampling probability such
/// that at least `m` out of `n` tuples are sampled with probability `1 − δ`.
///
/// Returns 1.0 when even sampling everything cannot (or need not) help
/// (`m ≥ n`), matching the `else 1` branch of the paper's staircase CASE
/// expression.
pub fn staircase_probability(m: u64, n: u64, delta: f64) -> f64 {
    if n == 0 || m == 0 {
        return if m == 0 { 0.0 } else { 1.0 };
    }
    if m >= n {
        return 1.0;
    }
    let (m, n) = (m as f64, n as f64);
    // g(p; n) is increasing in p; find the smallest p with g(p; n) >= m.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if lemma1_g(mid, n, delta) >= m {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi.min(1.0)
}

/// One step of the staircase CASE expression: strata-size bucket thresholds
/// (descending) and the sampling probability to use for each bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct StaircaseStep {
    /// Use this step when `strata_size > threshold`.
    pub threshold: u64,
    /// The Bernoulli sampling probability for that bucket.
    pub probability: f64,
}

/// Builds the staircase function used in the stratified-sampling CASE
/// expression (§3.2): a sequence of `(threshold, probability)` steps covering
/// strata sizes from `max_size` down to `m`, where each step's probability
/// upper-bounds `f_m(n)` over its bucket (f_m is decreasing in n, so the
/// bucket's lower end determines the bound).  Strata of `m` or fewer tuples
/// are taken whole (probability 1).
pub fn build_staircase(m: u64, max_size: u64, delta: f64) -> Vec<StaircaseStep> {
    let mut steps = Vec::new();
    if max_size <= m {
        return steps;
    }
    // Geometric bucket grid: m, 1.5m, 2.25m, ... up to max_size.
    let mut thresholds = Vec::new();
    let mut t = m.max(1) as f64;
    while (t as u64) < max_size {
        thresholds.push(t as u64);
        t *= 1.5;
    }
    thresholds.push(max_size);
    // Emit in descending threshold order, as a CASE expression evaluates
    // its WHEN branches top-down.
    for window in thresholds.windows(2).rev() {
        let lower = window[0];
        let upper = window[1];
        steps.push(StaircaseStep {
            threshold: lower,
            probability: staircase_probability(m, lower.max(1), delta).min(1.0),
        });
        let _ = upper;
    }
    steps
}

/// Weighted mean of `values` with the given `weights`.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    let wsum: f64 = weights.iter().sum();
    if wsum == 0.0 {
        return f64::NAN;
    }
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum
}

/// Sample standard deviation.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// The `q`-quantile (0..=1) of a slice, by linear interpolation.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    let frac = pos - lower as f64;
    sorted[lower] * (1.0 - frac) + sorted[upper] * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_matches_reference_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007).abs() < 1e-4);
        assert!((erf(-1.0) + 0.8427007).abs() < 1e-4);
        assert!((erfc(2.0) - 0.0046777).abs() < 1e-4);
    }

    #[test]
    fn erfc_inv_inverts_erfc() {
        for &x in &[-2.0, -1.0, -0.3, 0.0, 0.5, 1.5, 2.5] {
            let y = erfc(x);
            let back = erfc_inv(y);
            assert!((back - x).abs() < 1e-4, "erfc_inv(erfc({x})) = {back}");
        }
    }

    #[test]
    fn normal_quantiles_match_reference() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-3);
        assert!((normal_quantile(0.5)).abs() < 1e-6);
        assert!((normal_critical_value(0.95) - 1.959964).abs() < 1e-3);
        assert!((normal_critical_value(0.99) - 2.575829).abs() < 1e-3);
    }

    #[test]
    fn staircase_probability_guarantees_min_count() {
        // With p = f_m(n), a Binomial(n, p) should produce >= m with prob 1-δ.
        // Check the normal-approximation quantile directly.
        let delta = 0.001;
        for &(m, n) in &[(10u64, 100u64), (100, 10_000), (50, 200), (1000, 1_000_000)] {
            let p = staircase_probability(m, n, delta);
            assert!(p <= 1.0 && p > 0.0);
            let lower_tail = lemma1_g(p, n as f64, delta);
            assert!(
                lower_tail >= m as f64 - 1e-6,
                "m={m} n={n}: lower tail {lower_tail} < m"
            );
            // and it must exceed the naive ratio m/n (the paper's motivating example)
            assert!(p >= m as f64 / n as f64);
        }
    }

    #[test]
    fn naive_ratio_would_violate_guarantee() {
        // The paper's example: sampling 10 out of 100 with p = 0.1 fails ~45%
        // of the time; the staircase probability must be visibly larger.
        let p = staircase_probability(10, 100, 0.001);
        assert!(p > 0.15, "expected a markedly larger probability, got {p}");
    }

    #[test]
    fn staircase_steps_are_descending_and_bounded() {
        let steps = build_staircase(100, 100_000, 0.001);
        assert!(!steps.is_empty());
        for w in steps.windows(2) {
            assert!(w[0].threshold > w[1].threshold);
            assert!(w[0].probability <= w[1].probability + 1e-12);
        }
        for s in &steps {
            assert!(s.probability > 0.0 && s.probability <= 1.0);
        }
    }

    #[test]
    fn small_strata_are_taken_whole() {
        assert_eq!(staircase_probability(100, 50, 0.001), 1.0);
        assert!(build_staircase(100, 80, 0.001).is_empty());
    }

    #[test]
    fn weighted_mean_and_quantile() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), 1.5);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.5);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138089935).abs() < 1e-6);
    }
}
