//! Instacart-like online-grocery sales dataset (the paper's `insta` dataset).
//!
//! Schema (a faithful subset of the public Instacart release the paper
//! scaled 100×):
//!
//! * `orders(order_id, user_id, city, order_dow, order_hour, days_since_prior)`
//! * `order_products(order_id, product_id, price, quantity, add_to_cart_order, reordered)`
//! * `products(product_id, aisle_id, department_id, shelf_price)`
//!
//! The generator controls the properties the paper's micro-benchmark queries
//! exercise: low-cardinality grouping columns (`city`, `order_dow`,
//! `department_id`), a skewed fan-out from orders to order_products, and
//! high-cardinality join keys (`order_id`, `product_id`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verdict_engine::{Engine, Table, TableBuilder};

/// Deterministic generator for the Instacart-like dataset.
#[derive(Debug, Clone)]
pub struct InstacartGenerator {
    /// Scale factor: 1.0 produces ~200K orders / ~600K order_products rows.
    pub scale: f64,
    /// RNG seed so experiments are reproducible.
    pub seed: u64,
}

/// Number of distinct cities (the paper's micro-benchmarks group by columns
/// with up to 24 distinct values).
pub const CITIES: usize = 24;
/// Number of departments.
pub const DEPARTMENTS: usize = 21;
/// Number of aisles.
pub const AISLES: usize = 134;

impl InstacartGenerator {
    /// Creates a generator at the given scale with the default seed.
    pub fn new(scale: f64) -> InstacartGenerator {
        InstacartGenerator {
            scale,
            seed: 0x1257ACA7,
        }
    }

    /// Number of orders at this scale.
    pub fn num_orders(&self) -> usize {
        ((200_000.0 * self.scale) as usize).max(100)
    }

    /// Number of products in the catalogue.
    pub fn num_products(&self) -> usize {
        ((20_000.0 * self.scale) as usize).clamp(200, 50_000)
    }

    /// Generates the `orders` table.
    pub fn orders(&self) -> Table {
        let n = self.num_orders();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order_id = Vec::with_capacity(n);
        let mut user_id = Vec::with_capacity(n);
        let mut city = Vec::with_capacity(n);
        let mut dow = Vec::with_capacity(n);
        let mut hour = Vec::with_capacity(n);
        let mut days_since = Vec::with_capacity(n);
        for i in 0..n {
            order_id.push(i as i64 + 1);
            user_id.push(rng.gen_range(1..=(n as i64 / 4).max(1)));
            // Zipf-ish city popularity: city 0 is the most common.
            let c = zipf_like(&mut rng, CITIES, 1.1);
            city.push(format!("city_{c:02}"));
            dow.push(rng.gen_range(0..7i64));
            hour.push(rng.gen_range(0..24i64));
            days_since.push(rng.gen_range(0..31i64));
        }
        TableBuilder::new()
            .int_column("order_id", order_id)
            .int_column("user_id", user_id)
            .str_column("city", city)
            .int_column("order_dow", dow)
            .int_column("order_hour", hour)
            .int_column("days_since_prior", days_since)
            .build()
            .expect("consistent orders table")
    }

    /// Generates the `order_products` fact table (~3 line items per order).
    pub fn order_products(&self) -> Table {
        let n_orders = self.num_orders();
        let n_products = self.num_products();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x0f0f0f0f);
        let mut order_id = Vec::new();
        let mut product_id = Vec::new();
        let mut price = Vec::new();
        let mut quantity = Vec::new();
        let mut add_order = Vec::new();
        let mut reordered = Vec::new();
        for o in 0..n_orders {
            // skewed basket size: mostly small baskets, occasionally large
            let basket = 1 + zipf_like(&mut rng, 8, 1.3);
            for pos in 0..basket {
                order_id.push(o as i64 + 1);
                let p = zipf_like(&mut rng, n_products, 1.05);
                product_id.push(p as i64 + 1);
                // price depends on the product plus noise, heavy-ish tail
                let base = 1.5 + (p % 97) as f64 * 0.35;
                price.push((base + rng.gen_range(0.0..4.0)) * (1.0 + rng.gen_range(0.0f64..0.2)));
                quantity.push(rng.gen_range(1..=5i64));
                add_order.push(pos as i64 + 1);
                reordered.push(rng.gen_range(0..=1i64));
            }
        }
        TableBuilder::new()
            .int_column("order_id", order_id)
            .int_column("product_id", product_id)
            .float_column("price", price)
            .int_column("quantity", quantity)
            .int_column("add_to_cart_order", add_order)
            .int_column("reordered", reordered)
            .build()
            .expect("consistent order_products table")
    }

    /// Generates the `products` dimension table.
    pub fn products(&self) -> Table {
        let n = self.num_products();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcdef);
        let mut product_id = Vec::with_capacity(n);
        let mut aisle = Vec::with_capacity(n);
        let mut department = Vec::with_capacity(n);
        let mut shelf_price = Vec::with_capacity(n);
        for i in 0..n {
            product_id.push(i as i64 + 1);
            aisle.push(rng.gen_range(1..=AISLES as i64));
            department.push(rng.gen_range(1..=DEPARTMENTS as i64));
            shelf_price.push(1.5 + (i % 97) as f64 * 0.35);
        }
        TableBuilder::new()
            .int_column("product_id", product_id)
            .int_column("aisle_id", aisle)
            .int_column("department_id", department)
            .float_column("shelf_price", shelf_price)
            .build()
            .expect("consistent products table")
    }

    /// Registers all three tables in the engine's catalog.
    pub fn register(&self, engine: &Engine) {
        engine.register_table("orders", self.orders());
        engine.register_table("order_products", self.order_products());
        engine.register_table("products", self.products());
    }
}

/// A crude Zipf-like integer draw in `[0, n)`: rank r has weight `1/(r+1)^s`.
/// Approximated with inverse-CDF over a harmonic-ish transform so it stays
/// O(1) per draw.
pub fn zipf_like(rng: &mut StdRng, n: usize, skew: f64) -> usize {
    let u: f64 = rng.gen_range(0.0..1.0);
    // map the uniform draw through a power law and clamp
    let x = u.powf(skew * 2.0);
    ((x * n as f64) as usize).min(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_engine::Value;

    #[test]
    fn generated_tables_have_expected_shape() {
        let g = InstacartGenerator::new(0.01);
        let orders = g.orders();
        let items = g.order_products();
        let products = g.products();
        assert_eq!(orders.num_rows(), 2000);
        assert!(items.num_rows() > orders.num_rows());
        assert_eq!(products.num_rows(), 200);
        assert!(orders.schema.index_of("city").is_some());
        assert!(items.schema.index_of("price").is_some());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = InstacartGenerator::new(0.01).orders();
        let b = InstacartGenerator::new(0.01).orders();
        assert_eq!(a, b);
    }

    #[test]
    fn city_cardinality_is_bounded() {
        let g = InstacartGenerator::new(0.02);
        let orders = g.orders();
        let city_col = orders.column_by_name("city").unwrap();
        let distinct: std::collections::HashSet<String> = city_col
            .iter()
            .map(|v| match v {
                Value::Str(s) => s.clone(),
                other => other.to_string(),
            })
            .collect();
        assert!(distinct.len() <= CITIES);
        assert!(distinct.len() >= 10);
    }

    #[test]
    fn join_keys_reference_existing_orders() {
        let g = InstacartGenerator::new(0.005);
        let orders = g.orders();
        let items = g.order_products();
        let max_order = orders.num_rows() as i64;
        let key_col = items.column_by_name("order_id").unwrap();
        assert!(key_col.iter().all(|v| {
            let id = v.as_i64().unwrap();
            id >= 1 && id <= max_order
        }));
    }
}
