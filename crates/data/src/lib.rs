//! # verdict-data
//!
//! Dataset generators and benchmark workloads for the VerdictDB-rs
//! reproduction.
//!
//! The paper evaluates on three datasets (§6.1): a 100×-scaled Instacart
//! sales database (`insta`), a 500 GB TPC-H database, and a synthetic dataset
//! with controlled statistical properties.  None of those can be shipped
//! here, so this crate generates **laptop-scale datasets with the same
//! schemas, skew characteristics, and group cardinalities**, which is what
//! the speedup/error *shape* depends on, plus the two query workloads
//! (`tq-*` TPC-H-style queries and `iq-*` Instacart micro-benchmark queries)
//! expressed in the SQL dialect of the in-memory engine.

pub mod instacart;
pub mod queries;
pub mod synthetic;
pub mod tpch;

pub use instacart::InstacartGenerator;
pub use queries::{instacart_queries, tpch_queries, WorkloadQuery};
pub use synthetic::SyntheticGenerator;
pub use tpch::TpchGenerator;

#[cfg(test)]
mod tests {
    use super::*;
    use verdict_engine::Engine;

    #[test]
    fn all_workload_queries_run_exactly_on_generated_data() {
        let engine = Engine::with_seed(42);
        InstacartGenerator::new(0.02).register(&engine);
        TpchGenerator::new(0.02).register(&engine);
        for q in instacart_queries().iter().chain(tpch_queries().iter()) {
            let result = engine.execute_sql(&q.sql);
            assert!(
                result.is_ok(),
                "workload query {} failed: {:?}\nSQL: {}",
                q.id,
                result.err(),
                q.sql
            );
        }
    }
}
