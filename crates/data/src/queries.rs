//! Benchmark query workloads.
//!
//! The paper's evaluation uses 33 queries: 18 TPC-H queries (`tq-*`) and 15
//! micro-benchmark queries over the Instacart dataset (`iq-*`).  The queries
//! here follow the same numbering and exercise the same features —
//! aggregations over one to four joined tables, low-cardinality grouping
//! attributes, selective predicates, count-distinct, and a few queries whose
//! grouping attributes are so high-cardinality that AQP is infeasible and
//! VerdictDB falls back to exact execution (tq-3, tq-8, tq-10 here; tq-3,
//! tq-8, tq-15 in the paper).  Queries are phrased in the engine's SQL
//! dialect (dates are integer day offsets).

/// Which generated dataset a workload query runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// The TPC-H-like tables (`lineitem`, `tpch_orders`, `customer`, …).
    Tpch,
    /// The Instacart-like tables (`orders`, `order_products`, `products`).
    Instacart,
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Paper-style identifier, e.g. `tq-6` or `iq-14`.
    pub id: &'static str,
    /// The dataset the query targets.
    pub dataset: Dataset,
    /// SQL text.
    pub sql: String,
    /// One-line description of what the query exercises.
    pub description: &'static str,
    /// True when the grouping attributes are high-cardinality enough that
    /// VerdictDB is expected to fall back to exact execution (speedup ≈ 1×).
    pub expect_fallback: bool,
}

fn q(
    id: &'static str,
    dataset: Dataset,
    description: &'static str,
    expect_fallback: bool,
    sql: &str,
) -> WorkloadQuery {
    WorkloadQuery {
        id,
        dataset,
        sql: sql.to_string(),
        description,
        expect_fallback,
    }
}

/// The TPC-H-style workload (`tq-*`).
pub fn tpch_queries() -> Vec<WorkloadQuery> {
    vec![
        q("tq-1", Dataset::Tpch, "pricing summary report (Q1)", false,
          "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
                  sum(l_extendedprice) AS sum_base_price, \
                  sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, \
                  avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price, \
                  avg(l_discount) AS avg_disc, count(*) AS count_order \
           FROM lineitem WHERE l_shipdate <= 2450 \
           GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"),
        q("tq-3", Dataset::Tpch, "shipping priority (high-cardinality group-by, expected exact fallback)", true,
          "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue \
           FROM lineitem INNER JOIN tpch_orders ON l_orderkey = o_orderkey \
           WHERE o_orderdate < 1800 GROUP BY l_orderkey ORDER BY revenue DESC LIMIT 10"),
        q("tq-5", Dataset::Tpch, "local supplier volume (3-way join grouped by nation)", false,
          "SELECT c_nationkey, sum(l_extendedprice * (1 - l_discount)) AS revenue \
           FROM lineitem INNER JOIN tpch_orders ON l_orderkey = o_orderkey \
           INNER JOIN customer ON o_custkey = c_custkey \
           WHERE o_orderdate BETWEEN 365 AND 1095 \
           GROUP BY c_nationkey ORDER BY revenue DESC"),
        q("tq-6", Dataset::Tpch, "forecasting revenue change (selective scan aggregate)", false,
          "SELECT sum(l_extendedprice * l_discount) AS revenue \
           FROM lineitem \
           WHERE l_shipdate BETWEEN 365 AND 730 AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24"),
        q("tq-7", Dataset::Tpch, "volume shipping grouped by nation", false,
          "SELECT c_nationkey, sum(l_extendedprice * (1 - l_discount)) AS revenue, count(*) AS n \
           FROM lineitem INNER JOIN tpch_orders ON l_orderkey = o_orderkey \
           INNER JOIN customer ON o_custkey = c_custkey \
           WHERE l_shipdate BETWEEN 730 AND 1460 GROUP BY c_nationkey"),
        q("tq-8", Dataset::Tpch, "market share (grouped by order key, expected exact fallback)", true,
          "SELECT o_orderkey, avg(l_extendedprice * (1 - l_discount)) AS avg_rev \
           FROM lineitem INNER JOIN tpch_orders ON l_orderkey = o_orderkey \
           GROUP BY o_orderkey ORDER BY avg_rev DESC LIMIT 10"),
        q("tq-9", Dataset::Tpch, "product type profit measure", false,
          "SELECT s_nationkey, sum(l_extendedprice * (1 - l_discount)) AS profit \
           FROM lineitem INNER JOIN supplier ON l_suppkey = s_suppkey \
           GROUP BY s_nationkey ORDER BY profit DESC"),
        q("tq-10", Dataset::Tpch, "returned item reporting (per customer, expected exact fallback)", true,
          "SELECT o_custkey, sum(l_extendedprice * (1 - l_discount)) AS revenue \
           FROM lineitem INNER JOIN tpch_orders ON l_orderkey = o_orderkey \
           WHERE l_returnflag = 'R' GROUP BY o_custkey ORDER BY revenue DESC LIMIT 20"),
        q("tq-11", Dataset::Tpch, "important stock identification by brand", false,
          "SELECT p_brand, sum(l_extendedprice) AS value, count(*) AS n \
           FROM lineitem INNER JOIN part ON l_partkey = p_partkey \
           GROUP BY p_brand ORDER BY value DESC"),
        q("tq-12", Dataset::Tpch, "shipping modes and order priority", false,
          "SELECT l_shipmode, \
                  sum(CASE WHEN o_orderpriority = '1-PRIORITY' THEN 1 ELSE 0 END) AS high_line_count, \
                  sum(CASE WHEN o_orderpriority <> '1-PRIORITY' THEN 1 ELSE 0 END) AS low_line_count \
           FROM tpch_orders INNER JOIN lineitem ON o_orderkey = l_orderkey \
           WHERE l_shipdate BETWEEN 365 AND 1095 GROUP BY l_shipmode ORDER BY l_shipmode"),
        q("tq-13", Dataset::Tpch, "customer distribution by market segment", false,
          "SELECT c_mktsegment, count(*) AS custdist, avg(o_totalprice) AS avg_price \
           FROM tpch_orders INNER JOIN customer ON o_custkey = c_custkey \
           GROUP BY c_mktsegment ORDER BY custdist DESC"),
        q("tq-14", Dataset::Tpch, "promotion effect (ratio of conditional sums)", false,
          "SELECT 100 * sum(CASE WHEN p_type = 'PROMO' THEN l_extendedprice * (1 - l_discount) ELSE 0 END) \
                  / sum(l_extendedprice * (1 - l_discount)) AS promo_revenue \
           FROM lineitem INNER JOIN part ON l_partkey = p_partkey \
           WHERE l_shipdate BETWEEN 1095 AND 1125"),
        q("tq-15", Dataset::Tpch, "top supplier revenue", false,
          "SELECT l_suppkey, sum(l_extendedprice * (1 - l_discount)) AS total_revenue \
           FROM lineitem WHERE l_shipdate BETWEEN 1400 AND 1490 \
           GROUP BY l_suppkey ORDER BY total_revenue DESC LIMIT 10"),
        q("tq-16", Dataset::Tpch, "supplier count per brand (count-distinct)", false,
          "SELECT p_brand, count(DISTINCT l_suppkey) AS supplier_cnt \
           FROM lineitem INNER JOIN part ON l_partkey = p_partkey \
           WHERE p_size >= 10 GROUP BY p_brand ORDER BY supplier_cnt DESC"),
        q("tq-17", Dataset::Tpch, "small-quantity-order revenue", false,
          "SELECT avg(l_extendedprice) AS avg_yearly FROM lineitem \
           INNER JOIN part ON l_partkey = p_partkey \
           WHERE p_container = 'MED BAG' AND l_quantity < 5"),
        q("tq-18", Dataset::Tpch, "large volume customers by priority", false,
          "SELECT o_orderpriority, sum(l_quantity) AS total_qty, count(*) AS n \
           FROM tpch_orders INNER JOIN lineitem ON o_orderkey = l_orderkey \
           WHERE o_totalprice > 100000 GROUP BY o_orderpriority ORDER BY o_orderpriority"),
        q("tq-19", Dataset::Tpch, "discounted revenue with IN/LIKE predicates", false,
          "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue \
           FROM lineitem INNER JOIN part ON l_partkey = p_partkey \
           WHERE l_shipmode IN ('AIR', 'AIR REG') AND p_type LIKE '%PROMO%' AND l_quantity BETWEEN 1 AND 30"),
        q("tq-20", Dataset::Tpch, "potential part promotion (quantile)", false,
          "SELECT p_brand, quantile(l_quantity, 0.5) AS median_qty, sum(l_quantity) AS total_qty \
           FROM lineitem INNER JOIN part ON l_partkey = p_partkey \
           WHERE l_shipdate BETWEEN 0 AND 1460 GROUP BY p_brand ORDER BY p_brand"),
    ]
}

/// The Instacart micro-benchmark workload (`iq-*`).
pub fn instacart_queries() -> Vec<WorkloadQuery> {
    vec![
        q(
            "iq-1",
            Dataset::Instacart,
            "total line-item count",
            false,
            "SELECT count(*) AS cnt FROM order_products",
        ),
        q(
            "iq-2",
            Dataset::Instacart,
            "average item price",
            false,
            "SELECT avg(price) AS avg_price FROM order_products",
        ),
        q(
            "iq-3",
            Dataset::Instacart,
            "total revenue",
            false,
            "SELECT sum(price * quantity) AS revenue FROM order_products",
        ),
        q(
            "iq-4",
            Dataset::Instacart,
            "orders and revenue per city (join)",
            false,
            "SELECT city, count(*) AS n, sum(p.price) AS revenue \
           FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
           GROUP BY city ORDER BY revenue DESC",
        ),
        q(
            "iq-5",
            Dataset::Instacart,
            "order count per day of week",
            false,
            "SELECT order_dow, count(*) AS n FROM orders GROUP BY order_dow ORDER BY order_dow",
        ),
        q(
            "iq-6",
            Dataset::Instacart,
            "average price per department (join to dimension)",
            false,
            "SELECT department_id, avg(p.price) AS avg_price \
           FROM order_products p INNER JOIN products pr ON p.product_id = pr.product_id \
           GROUP BY department_id ORDER BY department_id",
        ),
        q(
            "iq-7",
            Dataset::Instacart,
            "revenue per city and day of week",
            false,
            "SELECT city, order_dow, sum(p.price * p.quantity) AS revenue \
           FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
           GROUP BY city, order_dow",
        ),
        q(
            "iq-8",
            Dataset::Instacart,
            "median item price",
            false,
            "SELECT median(price) AS median_price FROM order_products",
        ),
        q(
            "iq-9",
            Dataset::Instacart,
            "price dispersion",
            false,
            "SELECT stddev(price) AS sd_price, variance(price) AS var_price FROM order_products",
        ),
        q(
            "iq-10",
            Dataset::Instacart,
            "selective count per city",
            false,
            "SELECT city, count(*) AS n \
           FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
           WHERE p.price > 10 AND p.reordered = 1 GROUP BY city",
        ),
        q(
            "iq-11",
            Dataset::Instacart,
            "distinct buyers",
            false,
            "SELECT count(DISTINCT user_id) AS buyers FROM orders",
        ),
        q(
            "iq-12",
            Dataset::Instacart,
            "distinct products sold per department",
            false,
            "SELECT department_id, count(DISTINCT p.product_id) AS product_cnt \
           FROM order_products p INNER JOIN products pr ON p.product_id = pr.product_id \
           GROUP BY department_id ORDER BY department_id",
        ),
        q(
            "iq-13",
            Dataset::Instacart,
            "average basket value per city (ratio of sums)",
            false,
            "SELECT city, sum(p.price * p.quantity) / count(*) AS avg_line_value \
           FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
           GROUP BY city ORDER BY city",
        ),
        q(
            "iq-14",
            Dataset::Instacart,
            "fact-fact join of two sampled relations (universe join)",
            false,
            "SELECT count(*) AS joined_lines, avg(p.price) AS avg_price \
           FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
           WHERE o.order_dow <= 5",
        ),
        q(
            "iq-15",
            Dataset::Instacart,
            "three-way join grouped by department",
            false,
            "SELECT department_id, count(*) AS n, avg(p.price) AS avg_price \
           FROM orders o INNER JOIN order_products p ON o.order_id = p.order_id \
           INNER JOIN products pr ON p.product_id = pr.product_id \
           WHERE o.order_hour BETWEEN 8 AND 20 GROUP BY department_id",
        ),
    ]
}

/// All 33+ workload queries (TPC-H style first, then Instacart).
pub fn all_queries() -> Vec<WorkloadQuery> {
    let mut v = tpch_queries();
    v.extend(instacart_queries());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sizes_match_the_paper() {
        assert_eq!(instacart_queries().len(), 15);
        assert!(tpch_queries().len() >= 18);
        assert!(all_queries().len() >= 33);
    }

    #[test]
    fn all_queries_parse() {
        for q in all_queries() {
            verdict_sql::parse_statement(&q.sql)
                .unwrap_or_else(|e| panic!("query {} does not parse: {e}", q.id));
        }
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<&str> = all_queries().iter().map(|q| q.id).collect();
        let before = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn fallback_queries_are_marked() {
        let fallbacks: Vec<&str> = all_queries()
            .iter()
            .filter(|q| q.expect_fallback)
            .map(|q| q.id)
            .collect();
        assert_eq!(fallbacks, vec!["tq-3", "tq-8", "tq-10"]);
    }
}
