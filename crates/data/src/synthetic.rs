//! Synthetic dataset with controlled statistical properties (§6.5).
//!
//! The paper's accuracy experiments use a synthetic table whose attribute
//! values have mean 10.0 and standard deviation 10.0, a uniform selectivity
//! column, and a configurable group cardinality.  This generator reproduces
//! exactly that, so the error-estimation experiments (Figures 8, 12–14) can
//! compare estimated errors to analytically known groundtruth errors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verdict_engine::{Engine, Table, TableBuilder};

/// Deterministic generator for the controlled synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    /// Number of rows to generate.
    pub rows: usize,
    /// Mean of the `value` column.
    pub mean: f64,
    /// Standard deviation of the `value` column.
    pub stddev: f64,
    /// Number of distinct groups in the `grp` column.
    pub groups: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticGenerator {
    /// The paper's configuration: mean 10.0, standard deviation 10.0.
    pub fn paper_default(rows: usize) -> SyntheticGenerator {
        SyntheticGenerator {
            rows,
            mean: 10.0,
            stddev: 10.0,
            groups: 10,
            seed: 0x5a5a,
        }
    }

    /// Draws one approximately normal value via the Irwin–Hall construction.
    fn normal(&self, rng: &mut StdRng) -> f64 {
        let z: f64 = (0..12).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() - 6.0;
        self.mean + self.stddev * z
    }

    /// Generates the table with columns `id`, `value`, `selector` (uniform in
    /// [0, 1), for selectivity-controlled predicates) and `grp`.
    pub fn table(&self) -> Table {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut id = Vec::with_capacity(self.rows);
        let mut value = Vec::with_capacity(self.rows);
        let mut selector = Vec::with_capacity(self.rows);
        let mut grp = Vec::with_capacity(self.rows);
        for i in 0..self.rows {
            id.push(i as i64);
            value.push(self.normal(&mut rng));
            selector.push(rng.gen_range(0.0f64..1.0));
            grp.push((i % self.groups.max(1)) as i64);
        }
        TableBuilder::new()
            .int_column("id", id)
            .float_column("value", value)
            .float_column("selector", selector)
            .int_column("grp", grp)
            .build()
            .expect("consistent synthetic table")
    }

    /// The raw `value` column as a vector (for the array-based estimators).
    pub fn values(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.rows)
            .map(|_| {
                let v = self.normal(&mut rng);
                // keep the stream aligned with `table()` by consuming the
                // selector draw as well
                let _: f64 = rng.gen_range(0.0..1.0);
                v
            })
            .collect()
    }

    /// Registers the table under the name `synthetic`.
    pub fn register(&self, engine: &Engine) {
        engine.register_table("synthetic", self.table());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_moments_match_configuration() {
        let g = SyntheticGenerator::paper_default(50_000);
        let values = g.values();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
        assert!((var.sqrt() - 10.0).abs() < 0.2, "stddev {}", var.sqrt());
    }

    #[test]
    fn selector_gives_controllable_selectivity() {
        let g = SyntheticGenerator::paper_default(20_000);
        let engine = Engine::with_seed(1);
        g.register(&engine);
        let r = engine
            .execute_sql("SELECT count(*) FROM synthetic WHERE selector < 0.3")
            .unwrap();
        let frac = r.table.value(0, 0).as_i64().unwrap() as f64 / 20_000.0;
        assert!((frac - 0.3).abs() < 0.02, "selectivity {frac}");
    }

    #[test]
    fn values_and_table_agree() {
        let g = SyntheticGenerator::paper_default(1_000);
        let values = g.values();
        let table = g.table();
        let col = table.column_by_name("value").unwrap();
        for (a, b) in values.iter().zip(col.iter()) {
            assert!((a - b.as_f64().unwrap()).abs() < 1e-12);
        }
    }
}
