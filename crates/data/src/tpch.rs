//! TPC-H-like decision-support dataset.
//!
//! The paper's second workload is a 500 GB TPC-H database.  This generator
//! reproduces the TPC-H schema (lineitem, orders, customer, part, supplier,
//! nation, region) with the value distributions the benchmark queries touch —
//! return flags, ship modes, discounts, quantities, market segments, brands —
//! at a laptop scale controlled by a scale factor.  Dates are stored as
//! integer day offsets from 1992-01-01, so date-range predicates become plain
//! integer comparisons.

use crate::instacart::zipf_like;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use verdict_engine::{Engine, Table, TableBuilder};

/// Deterministic TPC-H-like generator.
#[derive(Debug, Clone)]
pub struct TpchGenerator {
    /// Scale factor: 1.0 produces ~240K lineitem rows.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

/// TPC-H return flags.
pub const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
/// TPC-H line statuses.
pub const LINE_STATUS: [&str; 2] = ["O", "F"];
/// TPC-H ship modes.
pub const SHIP_MODES: [&str; 7] = ["AIR", "AIR REG", "FOB", "MAIL", "RAIL", "SHIP", "TRUCK"];
/// TPC-H market segments.
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
/// Nations (subset, enough for grouping).
pub const NATIONS: [&str; 10] = [
    "ALGERIA",
    "ARGENTINA",
    "BRAZIL",
    "CANADA",
    "EGYPT",
    "ETHIOPIA",
    "FRANCE",
    "GERMANY",
    "INDIA",
    "JAPAN",
];
/// Number of days covered by the order/ship dates (7 years).
pub const DATE_RANGE_DAYS: i64 = 2556;

impl TpchGenerator {
    /// Creates a generator at the given scale factor.
    pub fn new(scale: f64) -> TpchGenerator {
        TpchGenerator {
            scale,
            seed: 0x7bc8,
        }
    }

    /// Row counts per table at this scale.
    pub fn num_orders(&self) -> usize {
        ((60_000.0 * self.scale) as usize).max(200)
    }
    /// Number of customers.
    pub fn num_customers(&self) -> usize {
        (self.num_orders() / 10).max(50)
    }
    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        ((8_000.0 * self.scale) as usize).clamp(100, 200_000)
    }
    /// Number of suppliers.
    pub fn num_suppliers(&self) -> usize {
        (self.num_parts() / 16).max(20)
    }

    /// Generates the `lineitem` fact table (~4 line items per order).
    pub fn lineitem(&self) -> Table {
        let n_orders = self.num_orders();
        let n_parts = self.num_parts();
        let n_supp = self.num_suppliers();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut orderkey = Vec::new();
        let mut partkey = Vec::new();
        let mut suppkey = Vec::new();
        let mut quantity = Vec::new();
        let mut extendedprice = Vec::new();
        let mut discount = Vec::new();
        let mut tax = Vec::new();
        let mut returnflag = Vec::new();
        let mut linestatus = Vec::new();
        let mut shipdate = Vec::new();
        let mut shipmode = Vec::new();
        for o in 0..n_orders {
            let lines = 1 + rng.gen_range(0..7usize);
            for _ in 0..lines {
                orderkey.push(o as i64 + 1);
                let p = zipf_like(&mut rng, n_parts, 1.02);
                partkey.push(p as i64 + 1);
                suppkey.push(rng.gen_range(1..=n_supp as i64));
                let qty = rng.gen_range(1..=50i64);
                quantity.push(qty);
                let unit = 900.0 + (p % 1000) as f64;
                extendedprice.push(unit * qty as f64 / 10.0);
                discount.push((rng.gen_range(0..=10) as f64) / 100.0);
                tax.push((rng.gen_range(0..=8) as f64) / 100.0);
                let rf = match rng.gen_range(0..100) {
                    0..=24 => "A",
                    25..=49 => "R",
                    _ => "N",
                };
                returnflag.push(rf.to_string());
                linestatus.push(LINE_STATUS[rng.gen_range(0..LINE_STATUS.len())].to_string());
                shipdate.push(rng.gen_range(0..DATE_RANGE_DAYS));
                shipmode.push(SHIP_MODES[rng.gen_range(0..SHIP_MODES.len())].to_string());
            }
        }
        TableBuilder::new()
            .int_column("l_orderkey", orderkey)
            .int_column("l_partkey", partkey)
            .int_column("l_suppkey", suppkey)
            .int_column("l_quantity", quantity)
            .float_column("l_extendedprice", extendedprice)
            .float_column("l_discount", discount)
            .float_column("l_tax", tax)
            .str_column("l_returnflag", returnflag)
            .str_column("l_linestatus", linestatus)
            .int_column("l_shipdate", shipdate)
            .str_column("l_shipmode", shipmode)
            .build()
            .expect("consistent lineitem table")
    }

    /// Generates the `orders` table (named `tpch_orders` to avoid clashing
    /// with the Instacart `orders` table when both datasets are loaded).
    pub fn orders(&self) -> Table {
        let n = self.num_orders();
        let n_cust = self.num_customers();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x1111);
        let mut orderkey = Vec::with_capacity(n);
        let mut custkey = Vec::with_capacity(n);
        let mut status = Vec::with_capacity(n);
        let mut totalprice = Vec::with_capacity(n);
        let mut orderdate = Vec::with_capacity(n);
        let mut priority = Vec::with_capacity(n);
        for i in 0..n {
            orderkey.push(i as i64 + 1);
            custkey.push(rng.gen_range(1..=n_cust as i64));
            status.push(["O", "F", "P"][rng.gen_range(0..3usize)].to_string());
            totalprice.push(rng.gen_range(1_000.0..400_000.0));
            orderdate.push(rng.gen_range(0..DATE_RANGE_DAYS));
            priority.push(format!("{}-PRIORITY", rng.gen_range(1..=5)));
        }
        TableBuilder::new()
            .int_column("o_orderkey", orderkey)
            .int_column("o_custkey", custkey)
            .str_column("o_orderstatus", status)
            .float_column("o_totalprice", totalprice)
            .int_column("o_orderdate", orderdate)
            .str_column("o_orderpriority", priority)
            .build()
            .expect("consistent orders table")
    }

    /// Generates the `customer` table.
    pub fn customer(&self) -> Table {
        let n = self.num_customers();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x2222);
        let mut custkey = Vec::with_capacity(n);
        let mut segment = Vec::with_capacity(n);
        let mut nation = Vec::with_capacity(n);
        let mut acctbal = Vec::with_capacity(n);
        for i in 0..n {
            custkey.push(i as i64 + 1);
            segment.push(SEGMENTS[rng.gen_range(0..SEGMENTS.len())].to_string());
            nation.push(rng.gen_range(0..NATIONS.len() as i64));
            acctbal.push(rng.gen_range(-999.0..10_000.0));
        }
        TableBuilder::new()
            .int_column("c_custkey", custkey)
            .str_column("c_mktsegment", segment)
            .int_column("c_nationkey", nation)
            .float_column("c_acctbal", acctbal)
            .build()
            .expect("consistent customer table")
    }

    /// Generates the `part` table.
    pub fn part(&self) -> Table {
        let n = self.num_parts();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x3333);
        let mut partkey = Vec::with_capacity(n);
        let mut brand = Vec::with_capacity(n);
        let mut ptype = Vec::with_capacity(n);
        let mut size = Vec::with_capacity(n);
        let mut container = Vec::with_capacity(n);
        for i in 0..n {
            partkey.push(i as i64 + 1);
            brand.push(format!(
                "Brand#{}{}",
                rng.gen_range(1..=5),
                rng.gen_range(1..=5)
            ));
            ptype.push(
                ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
                    [rng.gen_range(0..6usize)]
                .to_string(),
            );
            size.push(rng.gen_range(1..=50i64));
            container.push(
                ["SM CASE", "SM BOX", "MED BAG", "LG BOX", "JUMBO PKG"][rng.gen_range(0..5usize)]
                    .to_string(),
            );
        }
        TableBuilder::new()
            .int_column("p_partkey", partkey)
            .str_column("p_brand", brand)
            .str_column("p_type", ptype)
            .int_column("p_size", size)
            .str_column("p_container", container)
            .build()
            .expect("consistent part table")
    }

    /// Generates the `supplier` table.
    pub fn supplier(&self) -> Table {
        let n = self.num_suppliers();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x4444);
        let mut suppkey = Vec::with_capacity(n);
        let mut nation = Vec::with_capacity(n);
        for i in 0..n {
            suppkey.push(i as i64 + 1);
            nation.push(rng.gen_range(0..NATIONS.len() as i64));
        }
        TableBuilder::new()
            .int_column("s_suppkey", suppkey)
            .int_column("s_nationkey", nation)
            .build()
            .expect("consistent supplier table")
    }

    /// Generates the `nation` dimension.
    pub fn nation(&self) -> Table {
        TableBuilder::new()
            .int_column("n_nationkey", (0..NATIONS.len() as i64).collect())
            .str_column("n_name", NATIONS.iter().map(|s| s.to_string()).collect())
            .int_column(
                "n_regionkey",
                (0..NATIONS.len() as i64).map(|i| i % 5).collect(),
            )
            .build()
            .expect("consistent nation table")
    }

    /// Registers every TPC-H table in the engine catalog.
    pub fn register(&self, engine: &Engine) {
        engine.register_table("lineitem", self.lineitem());
        engine.register_table("tpch_orders", self.orders());
        engine.register_table("customer", self.customer());
        engine.register_table("part", self.part());
        engine.register_table("supplier", self.supplier());
        engine.register_table("nation", self.nation());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_controls_row_counts() {
        let small = TpchGenerator::new(0.01);
        let larger = TpchGenerator::new(0.05);
        assert!(larger.lineitem().num_rows() > small.lineitem().num_rows());
        assert_eq!(small.nation().num_rows(), NATIONS.len());
    }

    #[test]
    fn lineitem_values_are_within_tpch_domains() {
        let g = TpchGenerator::new(0.01);
        let li = g.lineitem();
        let disc = li.column_by_name("l_discount").unwrap();
        assert!(disc.iter().all(|v| {
            let d = v.as_f64().unwrap();
            (0.0..=0.10001).contains(&d)
        }));
        let flag = li.column_by_name("l_returnflag").unwrap();
        assert!(flag
            .iter()
            .all(|v| RETURN_FLAGS.contains(&v.as_str_lossy().unwrap().as_str())));
    }

    #[test]
    fn registration_makes_tables_queryable() {
        let engine = Engine::with_seed(1);
        TpchGenerator::new(0.01).register(&engine);
        let r = engine
            .execute_sql("SELECT count(*) FROM lineitem WHERE l_shipdate < 1000")
            .unwrap();
        assert!(r.table.value(0, 0).as_i64().unwrap() > 0);
    }
}
