//! Native approximate-aggregate sketches.
//!
//! Commercial engines offer sketch-based approximations (`ndv` /
//! `approx_count_distinct` in Impala, `approx_median` / `percentile_disc` in
//! Redshift).  Table 2 of the paper compares VerdictDB's sampling-based
//! approximations against these *full-scan* sketches, so the engine provides
//! a HyperLogLog distinct-count sketch here as that baseline.

use crate::functions::fnv1a_hash_value;
use crate::value::Value;

/// Number of registers = 2^P. P=12 gives a standard error of about 1.6%.
const P: u32 = 12;
const M: usize = 1 << P;

/// A HyperLogLog cardinality sketch (Flajolet et al., the algorithm the paper
/// cites for count-distinct domain partitioning baselines).
#[derive(Debug, Clone)]
pub struct HyperLogLog {
    registers: Vec<u8>,
}

impl Default for HyperLogLog {
    fn default() -> Self {
        Self::new()
    }
}

impl HyperLogLog {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        HyperLogLog {
            registers: vec![0u8; M],
        }
    }

    /// Adds one value to the sketch.
    pub fn add(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        self.add_raw_hash(fnv1a_hash_value(v));
    }

    /// Adds a value by its precomputed FNV-1a hash (the typed-column fast
    /// path; must match what [`crate::functions::fnv1a_hash_value`] returns).
    pub fn add_raw_hash(&mut self, raw: u64) {
        let hash = fmix64(raw);
        let idx = (hash >> (64 - P)) as usize;
        let rest = hash << P;
        // rank = position of the leftmost 1-bit in the remaining bits (1-based)
        let rank = if rest == 0 {
            (64 - P + 1) as u8
        } else {
            rest.leading_zeros() as u8 + 1
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Merges another sketch into this one (register-wise max).
    pub fn merge(&mut self, other: &HyperLogLog) {
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Estimates the number of distinct values added so far.
    pub fn estimate(&self) -> f64 {
        let m = M as f64;
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut sum = 0.0;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += 2f64.powi(-(r as i32));
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        if raw <= 2.5 * m && zeros > 0 {
            // small-range correction (linear counting)
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }
}

/// MurmurHash3's 64-bit finalizer: improves the avalanche behaviour of the
/// FNV hash so all 64 bits are usable for register selection and rank.
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51afd7ed558ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ceb9fe1a85ec53);
    h ^= h >> 33;
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_small_cardinalities_exactly_enough() {
        let mut hll = HyperLogLog::new();
        for i in 0..100 {
            hll.add(&Value::Int(i));
            hll.add(&Value::Int(i)); // duplicates should not matter
        }
        let est = hll.estimate();
        assert!((est - 100.0).abs() < 5.0, "estimate {est} too far from 100");
    }

    #[test]
    fn estimates_large_cardinalities_within_a_few_percent() {
        let mut hll = HyperLogLog::new();
        let n = 200_000;
        for i in 0..n {
            hll.add(&Value::Int(i));
        }
        let est = hll.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 0.05, "relative error {rel} too large");
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new();
        let mut b = HyperLogLog::new();
        for i in 0..5000 {
            a.add(&Value::Int(i));
        }
        for i in 2500..7500 {
            b.add(&Value::Int(i));
        }
        a.merge(&b);
        let est = a.estimate();
        let rel = (est - 7500.0).abs() / 7500.0;
        assert!(rel < 0.05, "relative error {rel} too large after merge");
    }

    #[test]
    fn nulls_are_ignored() {
        let mut hll = HyperLogLog::new();
        hll.add(&Value::Null);
        assert!(hll.estimate() < 1.0);
    }
}
