//! The table catalog: a thread-safe registry of named in-memory tables.
//!
//! VerdictDB stores everything — base tables, sample tables, and its own
//! metadata — inside the underlying database (§2.1), so the catalog supports
//! dotted names such as `verdict_meta.samples` in addition to plain names.
//!
//! A catalog may optionally be backed by an on-disk store (see
//! [`Catalog::set_store`]).  Persisted tables load lazily on first access,
//! and every mutation of a persisted table writes through to the store, so
//! `CREATE SCRAMBLE` results, `REFRESH SCRAMBLE` append batches, and drops
//! survive restarts.  Which tables are persisted is decided by whoever calls
//! [`StoreHandle::save`] first (the middleware persists scrambles and its
//! metadata, never base tables); the catalog only keeps already-persisted
//! tables in sync.

use crate::error::{EngineError, EngineResult};
use crate::persist::{ScanSource, StoreHandle, TableSource};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registry of named tables.
///
/// Every mutation (register, create, drop, append) bumps a per-table **data
/// version** counter that survives drops and re-creations, so cache layers
/// can detect that a table's contents may have changed by comparing the
/// version they recorded at insert time against [`Catalog::data_version`].
/// With a store attached, versions of persisted tables also survive process
/// restarts (they reload from the store and keep counting from there).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    /// Monotonic per-table mutation counters, keyed like `tables`.  Kept in a
    /// separate map (rather than alongside each table) so a drop + re-create
    /// still advances the counter instead of resetting it.
    versions: RwLock<BTreeMap<String, u64>>,
    /// Optional on-disk backing store for persisted tables.
    store: RwLock<Option<Arc<dyn StoreHandle>>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Attaches an on-disk store.  Tables it already holds become visible
    /// immediately (lazily materialised on first access), and subsequent
    /// mutations of persisted tables write through to it.
    pub fn set_store(&self, store: Arc<dyn StoreHandle>) {
        *self.store.write() = Some(store);
    }

    fn store(&self) -> Option<Arc<dyn StoreHandle>> {
        self.store.read().clone()
    }

    /// The store's persisted version for a key (0 when untracked), used to
    /// seed in-memory version counters so they continue monotonically across
    /// restarts instead of restarting at zero.
    fn stored_version(&self, key: &str) -> u64 {
        self.store()
            .and_then(|s| s.version(key))
            .unwrap_or_default()
    }

    fn bump_version(&self, key: &str) -> u64 {
        let mut versions = self.versions.write();
        let entry = versions
            .entry(key.to_string())
            .or_insert_with(|| self.stored_version(key));
        *entry += 1;
        *entry
    }

    /// The table's monotonic data version: 0 for a name that has never been
    /// touched, incremented by every register / create / append / drop.
    pub fn data_version(&self, name: &str) -> u64 {
        let key = Self::key(name);
        if let Some(v) = self.versions.read().get(&key) {
            return *v;
        }
        self.stored_version(&key)
    }

    /// Write-through: pushes a full replacement image to the store when the
    /// store already tracks this key.
    fn store_save(&self, key: &str, table: &Table, version: u64) -> EngineResult<()> {
        if let Some(store) = self.store() {
            if store.contains(key) {
                store.save(key, table, version)?;
            }
        }
        Ok(())
    }

    /// Registers (or replaces) a table under the given name.
    pub fn register(&self, name: &str, table: Table) {
        let key = Self::key(name);
        let table = Arc::new(table);
        self.tables.write().insert(key.clone(), Arc::clone(&table));
        let version = self.bump_version(&key);
        // register is infallible by contract (data generators use it for
        // in-memory base tables); a failed write-through would mean the
        // store already tracks the name, which register's callers never do.
        let _ = self.store_save(&key, &table, version);
    }

    /// Creates a new table; errors if it already exists and `or_replace` is false.
    pub fn create(&self, name: &str, table: Table, or_replace: bool) -> EngineResult<()> {
        let key = Self::key(name);
        let table = Arc::new(table);
        {
            let mut guard = self.tables.write();
            if !or_replace && (guard.contains_key(&key) || self.store_contains(&key)) {
                return Err(EngineError::TableAlreadyExists(name.to_string()));
            }
            guard.insert(key.clone(), Arc::clone(&table));
        }
        let version = self.bump_version(&key);
        self.store_save(&key, &table, version)
    }

    fn store_contains(&self, key: &str) -> bool {
        self.store().is_some_and(|s| s.contains(key))
    }

    /// Fetches a table by name, materialising it from the store on a miss.
    pub fn get(&self, name: &str) -> EngineResult<Arc<Table>> {
        let key = Self::key(name);
        if let Some(t) = self.tables.read().get(&key) {
            return Ok(Arc::clone(t));
        }
        if let Some(store) = self.store() {
            if store.contains(&key) {
                let (table, version) = store.load(&key)?;
                let mut guard = self.tables.write();
                // Another thread may have loaded (or written) the table while
                // we were decoding; keep whatever is in the map.
                let arc = Arc::clone(guard.entry(key.clone()).or_insert_with(|| Arc::new(table)));
                drop(guard);
                self.versions.write().entry(key).or_insert(version);
                return Ok(arc);
            }
        }
        Err(EngineError::TableNotFound(name.to_string()))
    }

    /// True if a table with this name exists (in memory or persisted).
    pub fn exists(&self, name: &str) -> bool {
        let key = Self::key(name);
        self.tables.read().contains_key(&key) || self.store_contains(&key)
    }

    /// Drops a table; errors when missing unless `if_exists`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> EngineResult<()> {
        let key = Self::key(name);
        let removed_mem = self.tables.write().remove(&key).is_some();
        let mut removed_store = false;
        if let Some(store) = self.store() {
            if store.contains(&key) {
                store.remove(&key)?;
                removed_store = true;
            }
        }
        if !removed_mem && !removed_store {
            if if_exists {
                return Ok(());
            }
            return Err(EngineError::TableNotFound(name.to_string()));
        }
        self.bump_version(&key);
        Ok(())
    }

    /// Appends rows to an existing table.
    pub fn append(&self, name: &str, rows: &Table) -> EngineResult<()> {
        let key = Self::key(name);
        // Materialise persisted tables first so the in-memory image exists.
        let loaded = self.get(&key)?;
        let mut guard = self.tables.write();
        // Re-read under the write lock: a writer may have raced our load.
        let existing = guard.get(&key).cloned().unwrap_or(loaded);
        let mut new_table = (*existing).clone();
        new_table.append(rows)?;
        guard.insert(key.clone(), Arc::new(new_table));
        drop(guard);
        let version = self.bump_version(&key);
        if let Some(store) = self.store() {
            if store.contains(&key) {
                store.append(&key, rows, version)?;
            }
        }
        Ok(())
    }

    /// Names of all registered tables (in memory or persisted), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        if let Some(store) = self.store() {
            for name in store.table_names() {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
            names.sort();
        }
        names
    }

    /// Number of rows in the named table (0 if missing).  Persisted tables
    /// answer from their stored header without being materialised.
    pub fn row_count(&self, name: &str) -> usize {
        let key = Self::key(name);
        if let Some(t) = self.tables.read().get(&key) {
            return t.num_rows();
        }
        self.store()
            .and_then(|s| s.row_count(&key))
            .unwrap_or_default() as usize
    }

    /// Opens a positional row source for progressive scans: an `Arc`-pinned
    /// snapshot for in-memory tables, or a block-granular disk reader for
    /// persisted tables that have not been materialised (a cold-start
    /// `STREAM` therefore never loads the whole scramble).
    pub fn scan_source(&self, name: &str) -> EngineResult<Arc<dyn ScanSource>> {
        let key = Self::key(name);
        if let Some(t) = self.tables.read().get(&key) {
            return Ok(Arc::new(TableSource::new(Arc::clone(t))));
        }
        if let Some(store) = self.store() {
            if store.contains(&key) {
                return store.open_scan(&key);
            }
        }
        Err(EngineError::TableNotFound(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn small() -> Table {
        TableBuilder::new()
            .int_column("x", vec![1, 2, 3])
            .build()
            .unwrap()
    }

    #[test]
    fn create_get_drop_roundtrip() {
        let c = Catalog::new();
        c.create("orders", small(), false).unwrap();
        assert!(c.exists("ORDERS"));
        assert_eq!(c.get("orders").unwrap().num_rows(), 3);
        assert!(c.create("orders", small(), false).is_err());
        c.create("orders", small(), true).unwrap();
        c.drop_table("orders", false).unwrap();
        assert!(!c.exists("orders"));
        assert!(c.drop_table("orders", false).is_err());
        c.drop_table("orders", true).unwrap();
    }

    #[test]
    fn append_grows_table() {
        let c = Catalog::new();
        c.create("t", small(), false).unwrap();
        c.append("t", &small()).unwrap();
        assert_eq!(c.row_count("t"), 6);
    }

    #[test]
    fn data_versions_track_every_mutation_and_survive_drops() {
        let c = Catalog::new();
        assert_eq!(c.data_version("t"), 0);
        c.create("t", small(), false).unwrap();
        assert_eq!(c.data_version("T"), 1);
        c.append("t", &small()).unwrap();
        assert_eq!(c.data_version("t"), 2);
        c.drop_table("t", false).unwrap();
        assert_eq!(c.data_version("t"), 3);
        // Re-creating continues the counter instead of resetting it.
        c.create("t", small(), false).unwrap();
        assert_eq!(c.data_version("t"), 4);
        // Dropping a missing table with IF EXISTS does not bump.
        c.drop_table("nope", true).unwrap();
        assert_eq!(c.data_version("nope"), 0);
        // Reads never bump.
        let _ = c.get("t").unwrap();
        assert_eq!(c.data_version("t"), 4);
    }

    #[test]
    fn schema_qualified_names_are_supported() {
        let c = Catalog::new();
        c.register("verdict_meta.samples", small());
        assert!(c.exists("Verdict_Meta.Samples"));
        assert_eq!(c.table_names(), vec!["verdict_meta.samples".to_string()]);
    }

    #[test]
    fn scan_source_over_in_memory_table_pins_a_snapshot() {
        let c = Catalog::new();
        c.create("t", small(), false).unwrap();
        let src = c.scan_source("t").unwrap();
        c.append("t", &small()).unwrap();
        // The source still sees the snapshot it was opened on.
        assert_eq!(src.num_rows(), 3);
        assert_eq!(c.row_count("t"), 6);
    }
}
