//! The table catalog: a thread-safe registry of named in-memory tables.
//!
//! VerdictDB stores everything — base tables, sample tables, and its own
//! metadata — inside the underlying database (§2.1), so the catalog supports
//! dotted names such as `verdict_meta.samples` in addition to plain names.

use crate::error::{EngineError, EngineResult};
use crate::table::Table;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A registry of named tables.
///
/// Every mutation (register, create, drop, append) bumps a per-table **data
/// version** counter that survives drops and re-creations, so cache layers
/// can detect that a table's contents may have changed by comparing the
/// version they recorded at insert time against [`Catalog::data_version`].
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<BTreeMap<String, Arc<Table>>>,
    /// Monotonic per-table mutation counters, keyed like `tables`.  Kept in a
    /// separate map (rather than alongside each table) so a drop + re-create
    /// still advances the counter instead of resetting it.
    versions: RwLock<BTreeMap<String, u64>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    fn bump_version(&self, key: &str) {
        *self.versions.write().entry(key.to_string()).or_insert(0) += 1;
    }

    /// The table's monotonic data version: 0 for a name that has never been
    /// touched, incremented by every register / create / append / drop.
    pub fn data_version(&self, name: &str) -> u64 {
        self.versions
            .read()
            .get(&Self::key(name))
            .copied()
            .unwrap_or(0)
    }

    /// Registers (or replaces) a table under the given name.
    pub fn register(&self, name: &str, table: Table) {
        let key = Self::key(name);
        self.tables.write().insert(key.clone(), Arc::new(table));
        self.bump_version(&key);
    }

    /// Creates a new table; errors if it already exists and `or_replace` is false.
    pub fn create(&self, name: &str, table: Table, or_replace: bool) -> EngineResult<()> {
        let key = Self::key(name);
        let mut guard = self.tables.write();
        if guard.contains_key(&key) && !or_replace {
            return Err(EngineError::TableAlreadyExists(name.to_string()));
        }
        guard.insert(key.clone(), Arc::new(table));
        drop(guard);
        self.bump_version(&key);
        Ok(())
    }

    /// Fetches a table by name.
    pub fn get(&self, name: &str) -> EngineResult<Arc<Table>> {
        self.tables
            .read()
            .get(&Self::key(name))
            .cloned()
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))
    }

    /// True if a table with this name exists.
    pub fn exists(&self, name: &str) -> bool {
        self.tables.read().contains_key(&Self::key(name))
    }

    /// Drops a table; errors when missing unless `if_exists`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> EngineResult<()> {
        let key = Self::key(name);
        let removed = self.tables.write().remove(&key);
        if removed.is_none() && !if_exists {
            return Err(EngineError::TableNotFound(name.to_string()));
        }
        if removed.is_some() {
            self.bump_version(&key);
        }
        Ok(())
    }

    /// Appends rows to an existing table.
    pub fn append(&self, name: &str, rows: &Table) -> EngineResult<()> {
        let key = Self::key(name);
        let mut guard = self.tables.write();
        let existing = guard
            .get(&key)
            .ok_or_else(|| EngineError::TableNotFound(name.to_string()))?;
        let mut new_table = (**existing).clone();
        new_table.append(rows)?;
        guard.insert(key.clone(), Arc::new(new_table));
        drop(guard);
        self.bump_version(&key);
        Ok(())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Number of rows in the named table (0 if missing).
    pub fn row_count(&self, name: &str) -> usize {
        self.get(name).map(|t| t.num_rows()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn small() -> Table {
        TableBuilder::new()
            .int_column("x", vec![1, 2, 3])
            .build()
            .unwrap()
    }

    #[test]
    fn create_get_drop_roundtrip() {
        let c = Catalog::new();
        c.create("orders", small(), false).unwrap();
        assert!(c.exists("ORDERS"));
        assert_eq!(c.get("orders").unwrap().num_rows(), 3);
        assert!(c.create("orders", small(), false).is_err());
        c.create("orders", small(), true).unwrap();
        c.drop_table("orders", false).unwrap();
        assert!(!c.exists("orders"));
        assert!(c.drop_table("orders", false).is_err());
        c.drop_table("orders", true).unwrap();
    }

    #[test]
    fn append_grows_table() {
        let c = Catalog::new();
        c.create("t", small(), false).unwrap();
        c.append("t", &small()).unwrap();
        assert_eq!(c.row_count("t"), 6);
    }

    #[test]
    fn data_versions_track_every_mutation_and_survive_drops() {
        let c = Catalog::new();
        assert_eq!(c.data_version("t"), 0);
        c.create("t", small(), false).unwrap();
        assert_eq!(c.data_version("T"), 1);
        c.append("t", &small()).unwrap();
        assert_eq!(c.data_version("t"), 2);
        c.drop_table("t", false).unwrap();
        assert_eq!(c.data_version("t"), 3);
        // Re-creating continues the counter instead of resetting it.
        c.create("t", small(), false).unwrap();
        assert_eq!(c.data_version("t"), 4);
        // Dropping a missing table with IF EXISTS does not bump.
        c.drop_table("nope", true).unwrap();
        assert_eq!(c.data_version("nope"), 0);
        // Reads never bump.
        let _ = c.get("t").unwrap();
        assert_eq!(c.data_version("t"), 4);
    }

    #[test]
    fn schema_qualified_names_are_supported() {
        let c = Catalog::new();
        c.register("verdict_meta.samples", small());
        assert!(c.exists("Verdict_Meta.Samples"));
        assert_eq!(c.table_names(), vec!["verdict_meta.samples".to_string()]);
    }
}
