//! Typed columnar storage: the fundamental data representation every engine
//! operator consumes and produces.
//!
//! A [`Column`] is a typed vector ([`ColumnData`]) paired with an optional
//! validity bitmap ([`Bitmap`], bit set = value present).  Compared to the
//! previous `Vec<Value>` representation this removes the per-cell enum
//! dispatch and heap boxing from the scan/filter/aggregate hot path: kernels
//! match on the column type **once** and then run tight loops over `&[i64]` /
//! `&[f64]` slices.
//!
//! A [`Value`]-based accessor surface ([`Column::value_at`], [`Column::iter`],
//! [`Column::from_values`]) is kept as a compatibility shim for the
//! planner/rewriter layers, tests, and cold paths.

use crate::selvec::SelVec;
use crate::value::{DataType, Value};
use std::cmp::Ordering;

/// A packed validity bitmap: bit set means the slot holds a value, bit clear
/// means SQL NULL.
#[derive(Debug, Clone, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// Creates a bitmap of `len` bits, all set (all valid).
    pub fn new_valid(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Creates a bitmap of `len` bits, all clear (all null).
    pub fn new_null(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// The packed words (64 bits each, LSB-first), for word-wise combination
    /// with selection vectors.  Bits past `len` in the last word are clear.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// True when the bitmap covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when bit `i` is set (the slot is valid / non-null).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i` (marks the slot valid).
    #[inline]
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i` (marks the slot null).
    #[inline]
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Pushes one bit at the end.
    pub fn push(&mut self, valid: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if valid {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Number of set (valid) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when every bit is set.
    pub fn all_valid(&self) -> bool {
        self.count_valid() == self.len
    }

    /// Word-wise AND of two equal-length bitmaps.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        debug_assert_eq!(self.len, other.len);
        Bitmap {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Gathers bits at `indices` into a new bitmap; `usize::MAX` yields null.
    pub fn take_opt(&self, indices: &[usize]) -> Bitmap {
        let mut out = Bitmap::new_null(indices.len());
        for (pos, &i) in indices.iter().enumerate() {
            if i != usize::MAX && self.get(i) {
                out.set(pos);
            }
        }
        out
    }

    /// Copies the bit range `[start, start + len)` into a new bitmap,
    /// word-wise: whole words when `start` is word-aligned, otherwise each
    /// output word is stitched from two adjacent input words.  This is the
    /// validity half of [`Column::slice`]'s memcpy fast path.
    pub fn slice(&self, start: usize, len: usize) -> Bitmap {
        debug_assert!(start + len <= self.len);
        let first = start / 64;
        let shift = start % 64;
        let nwords = len.div_ceil(64);
        let mut words = Vec::with_capacity(nwords);
        if shift == 0 {
            words.extend_from_slice(&self.words[first..first + nwords]);
        } else {
            for k in 0..nwords {
                let lo = self.words[first + k] >> shift;
                let hi = self
                    .words
                    .get(first + k + 1)
                    .map_or(0, |w| w << (64 - shift));
                words.push(lo | hi);
            }
        }
        let mut out = Bitmap { words, len };
        out.mask_tail();
        out
    }
}

/// Intersects two optional validity bitmaps (`None` = all valid).
pub fn combine_validity(a: Option<&Bitmap>, b: Option<&Bitmap>) -> Option<Bitmap> {
    match (a, b) {
        (None, None) => None,
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (Some(x), Some(y)) => Some(x.and(y)),
    }
}

/// The typed value vectors a column can hold.  Null slots hold an arbitrary
/// placeholder (`0`, `0.0`, `""`, `false`) and are masked by the bitmap.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit signed integers.
    Int64(Vec<i64>),
    /// 64-bit IEEE-754 floats.
    Float64(Vec<f64>),
    /// UTF-8 strings.
    Utf8(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// True when the vector has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The engine-level data type of the vector.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int,
            ColumnData::Float64(_) => DataType::Float,
            ColumnData::Utf8(_) => DataType::Str,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    fn new_empty(dt: DataType) -> ColumnData {
        match dt {
            DataType::Int => ColumnData::Int64(Vec::new()),
            DataType::Float => ColumnData::Float64(Vec::new()),
            DataType::Str => ColumnData::Utf8(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }
}

/// A typed column with an optional null bitmap (`None` = no nulls).
#[derive(Debug, Clone)]
pub struct Column {
    data: ColumnData,
    validity: Option<Bitmap>,
}

impl Column {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Builds a column from raw parts, normalising an all-valid bitmap away.
    pub fn from_parts(data: ColumnData, validity: Option<Bitmap>) -> Column {
        let validity = match validity {
            Some(v) if v.all_valid() => None,
            other => other,
        };
        debug_assert!(validity.as_ref().is_none_or(|v| v.len() == data.len()));
        Column { data, validity }
    }

    /// An empty column of the given type.
    pub fn new_empty(dt: DataType) -> Column {
        Column {
            data: ColumnData::new_empty(dt),
            validity: None,
        }
    }

    /// A non-null `i64` column.
    pub fn from_i64(values: Vec<i64>) -> Column {
        Column {
            data: ColumnData::Int64(values),
            validity: None,
        }
    }

    /// A non-null `f64` column.
    pub fn from_f64(values: Vec<f64>) -> Column {
        Column {
            data: ColumnData::Float64(values),
            validity: None,
        }
    }

    /// A non-null string column.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(values: Vec<String>) -> Column {
        Column {
            data: ColumnData::Utf8(values),
            validity: None,
        }
    }

    /// A non-null boolean column.
    pub fn from_bool(values: Vec<bool>) -> Column {
        Column {
            data: ColumnData::Bool(values),
            validity: None,
        }
    }

    /// A nullable `i64` column.
    pub fn from_opt_i64(values: Vec<Option<i64>>) -> Column {
        let mut validity = Bitmap::new_null(values.len());
        let data = values
            .iter()
            .enumerate()
            .map(|(i, v)| match v {
                Some(x) => {
                    validity.set(i);
                    *x
                }
                None => 0,
            })
            .collect();
        Column::from_parts(ColumnData::Int64(data), Some(validity))
    }

    /// A nullable `f64` column.
    pub fn from_opt_f64(values: Vec<Option<f64>>) -> Column {
        let mut validity = Bitmap::new_null(values.len());
        let data = values
            .iter()
            .enumerate()
            .map(|(i, v)| match v {
                Some(x) => {
                    validity.set(i);
                    *x
                }
                None => 0.0,
            })
            .collect();
        Column::from_parts(ColumnData::Float64(data), Some(validity))
    }

    /// A nullable boolean column.
    pub fn from_opt_bool(values: Vec<Option<bool>>) -> Column {
        let mut validity = Bitmap::new_null(values.len());
        let data = values
            .iter()
            .enumerate()
            .map(|(i, v)| match v {
                Some(x) => {
                    validity.set(i);
                    *x
                }
                None => false,
            })
            .collect();
        Column::from_parts(ColumnData::Bool(data), Some(validity))
    }

    /// A nullable string column.
    pub fn from_opt_str(values: Vec<Option<String>>) -> Column {
        let mut validity = Bitmap::new_null(values.len());
        let data = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| match v {
                Some(x) => {
                    validity.set(i);
                    x
                }
                None => String::new(),
            })
            .collect();
        Column::from_parts(ColumnData::Utf8(data), Some(validity))
    }

    /// An all-null column of `n` rows (stored as a masked `f64` vector; the
    /// physical type never surfaces because every slot is null).
    pub fn nulls(n: usize) -> Column {
        Column {
            data: ColumnData::Float64(vec![0.0; n]),
            validity: Some(Bitmap::new_null(n)),
        }
    }

    /// A column holding `n` copies of one value.
    pub fn repeat(value: &Value, n: usize) -> Column {
        match value {
            Value::Null => Column::nulls(n),
            Value::Int(i) => Column::from_i64(vec![*i; n]),
            Value::Float(f) => Column::from_f64(vec![*f; n]),
            Value::Str(s) => Column::from_str(vec![s.clone(); n]),
            Value::Bool(b) => Column::from_bool(vec![*b; n]),
        }
    }

    /// Builds a column from dynamically-typed values, inferring the narrowest
    /// common type: all-int → `Int64`, numeric mix → `Float64`, all-bool →
    /// `Bool`, anything else → `Utf8` (matching [`DataType::unify`]).
    pub fn from_values(values: &[Value]) -> Column {
        let mut ty: Option<DataType> = None;
        for v in values {
            if let Some(dt) = v.data_type() {
                ty = Some(match ty {
                    None => dt,
                    Some(prev) => prev.unify(dt),
                });
            }
        }
        match ty {
            None => Column::nulls(values.len()),
            Some(dt) => Column::from_values_typed(dt, values),
        }
    }

    /// Builds a column of a specific type from dynamically-typed values,
    /// coercing where possible and nulling out values that do not coerce.
    pub fn from_values_typed(dt: DataType, values: &[Value]) -> Column {
        let mut validity = Bitmap::new_null(values.len());
        let data = match dt {
            DataType::Int => ColumnData::Int64(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match v.as_i64() {
                        Some(x) => {
                            validity.set(i);
                            x
                        }
                        None => 0,
                    })
                    .collect(),
            ),
            DataType::Float => ColumnData::Float64(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match v.as_f64() {
                        Some(x) => {
                            validity.set(i);
                            x
                        }
                        None => 0.0,
                    })
                    .collect(),
            ),
            DataType::Bool => ColumnData::Bool(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match v.as_bool() {
                        Some(x) => {
                            validity.set(i);
                            x
                        }
                        None => false,
                    })
                    .collect(),
            ),
            DataType::Str => ColumnData::Utf8(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| match v.as_str_lossy() {
                        Some(x) => {
                            validity.set(i);
                            x
                        }
                        None => String::new(),
                    })
                    .collect(),
            ),
        };
        Column::from_parts(data, Some(validity))
    }

    // ------------------------------------------------------------------
    // Shape and typed access
    // ------------------------------------------------------------------

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The column's engine-level type.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// The typed vector.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The validity bitmap (`None` = no nulls).
    pub fn validity(&self) -> Option<&Bitmap> {
        self.validity.as_ref()
    }

    /// True when row `i` is non-null.
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.validity.as_ref().is_none_or(|v| v.get(i))
    }

    /// True when row `i` is SQL NULL.
    #[inline]
    pub fn is_null_at(&self, i: usize) -> bool {
        !self.is_valid(i)
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        match &self.validity {
            None => 0,
            Some(v) => v.len() - v.count_valid(),
        }
    }

    /// The raw `i64` slice when the column is `Int64`-typed.
    pub fn as_i64s(&self) -> Option<&[i64]> {
        match &self.data {
            ColumnData::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw `f64` slice when the column is `Float64`-typed.
    pub fn as_f64s(&self) -> Option<&[f64]> {
        match &self.data {
            ColumnData::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw string slice when the column is `Utf8`-typed.
    pub fn as_strs(&self) -> Option<&[String]> {
        match &self.data {
            ColumnData::Utf8(v) => Some(v),
            _ => None,
        }
    }

    /// The raw bool slice when the column is `Bool`-typed.
    pub fn as_bools(&self) -> Option<&[bool]> {
        match &self.data {
            ColumnData::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view of row `i` (`None` for null or non-numeric types; bools
    /// count as 0/1, matching [`Value::as_f64`]).
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        if !self.is_valid(i) {
            return None;
        }
        match &self.data {
            ColumnData::Int64(v) => Some(v[i] as f64),
            ColumnData::Float64(v) => Some(v[i]),
            ColumnData::Bool(v) => Some(if v[i] { 1.0 } else { 0.0 }),
            ColumnData::Utf8(_) => None,
        }
    }

    /// Boolean view of row `i` (numeric non-zero = true), matching
    /// [`Value::as_bool`].
    #[inline]
    pub fn bool_at(&self, i: usize) -> Option<bool> {
        if !self.is_valid(i) {
            return None;
        }
        match &self.data {
            ColumnData::Bool(v) => Some(v[i]),
            ColumnData::Int64(v) => Some(v[i] != 0),
            ColumnData::Float64(v) => Some(v[i] != 0.0),
            ColumnData::Utf8(_) => None,
        }
    }

    // ------------------------------------------------------------------
    // Value-based compatibility shim
    // ------------------------------------------------------------------

    /// Materialises row `i` as a dynamically-typed [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int64(v) => Value::Int(v[i]),
            ColumnData::Float64(v) => Value::Float(v[i]),
            ColumnData::Utf8(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Iterates the rows as materialised [`Value`]s (compatibility shim; the
    /// hot paths use the typed slices instead).
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value_at(i))
    }

    /// Materialises the whole column as values.
    pub fn to_values(&self) -> Vec<Value> {
        self.iter().collect()
    }

    /// Appends one dynamically-typed value, coercing it to the column's type
    /// (non-coercible values become NULL).
    pub fn push_value(&mut self, v: &Value) {
        let n = self.len();
        let pushed_valid = match (&mut self.data, v) {
            (ColumnData::Int64(d), _) => match v.as_i64() {
                Some(x) => {
                    d.push(x);
                    true
                }
                None => {
                    d.push(0);
                    false
                }
            },
            (ColumnData::Float64(d), _) => match v.as_f64() {
                Some(x) => {
                    d.push(x);
                    true
                }
                None => {
                    d.push(0.0);
                    false
                }
            },
            (ColumnData::Bool(d), _) => match v.as_bool() {
                Some(x) => {
                    d.push(x);
                    true
                }
                None => {
                    d.push(false);
                    false
                }
            },
            (ColumnData::Utf8(d), _) => match v.as_str_lossy() {
                Some(x) => {
                    d.push(x);
                    true
                }
                None => {
                    d.push(String::new());
                    false
                }
            },
        };
        match (&mut self.validity, pushed_valid) {
            (Some(bm), valid) => bm.push(valid),
            (None, true) => {}
            (None, false) => {
                let mut bm = Bitmap::new_valid(n);
                bm.push(false);
                self.validity = Some(bm);
            }
        }
    }

    /// Appends another column's rows, coercing when the types differ.
    ///
    /// A column whose every slot is NULL carries no type information (its
    /// physical type is an arbitrary placeholder), so it adopts the incoming
    /// column's type instead of coercing the incoming values — otherwise an
    /// `INSERT` into a table created from all-NULL output would silently
    /// null out the new rows.
    pub fn append(&mut self, other: &Column) {
        if self.data_type() != other.data_type() && self.null_count() == self.len() {
            let n = self.len();
            let data = match other.data_type() {
                DataType::Int => ColumnData::Int64(vec![0; n]),
                DataType::Float => ColumnData::Float64(vec![0.0; n]),
                DataType::Str => ColumnData::Utf8(vec![String::new(); n]),
                DataType::Bool => ColumnData::Bool(vec![false; n]),
            };
            self.data = data;
            self.validity = Some(Bitmap::new_null(n));
        }
        if self.data_type() == other.data_type() {
            let n = self.len();
            match (&mut self.data, &other.data) {
                (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
                (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
                (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend_from_slice(b),
                (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
                _ => unreachable!("matching data types"),
            }
            if self.validity.is_some() || other.validity.is_some() {
                let mut bm = match self.validity.take() {
                    Some(bm) => bm,
                    None => Bitmap::new_valid(n),
                };
                for i in 0..other.len() {
                    bm.push(other.is_valid(i));
                }
                self.validity = Some(bm);
            }
        } else {
            for i in 0..other.len() {
                self.push_value(&other.value_at(i));
            }
        }
    }

    // ------------------------------------------------------------------
    // Selection kernels
    // ------------------------------------------------------------------

    /// Keeps the rows selected by the packed `mask`: a gather over the set
    /// bits, walked with the selection-vector iterator so sparse masks touch
    /// only the surviving rows.
    pub fn filter(&self, mask: &SelVec) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        let kept = mask.count();
        fn keep<T: Clone>(v: &[T], mask: &SelVec, kept: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(kept);
            mask.for_each_index(|i| out.push(v[i].clone()));
            out
        }
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(keep(v, mask, kept)),
            ColumnData::Float64(v) => ColumnData::Float64(keep(v, mask, kept)),
            ColumnData::Utf8(v) => ColumnData::Utf8(keep(v, mask, kept)),
            ColumnData::Bool(v) => ColumnData::Bool(keep(v, mask, kept)),
        };
        Column {
            data,
            validity: self.validity.as_ref().map(|b| {
                let mut out = Bitmap::new_null(kept);
                let mut pos = 0;
                mask.for_each_index(|i| {
                    if b.get(i) {
                        out.set(pos);
                    }
                    pos += 1;
                });
                out
            }),
        }
    }

    /// Copies the contiguous row range `[start, start + len)` — the
    /// straight-memcpy fast path for block scans, equivalent to
    /// `take(&[start, …, start + len - 1])` without materialising the index
    /// vector or gathering per element.
    pub fn slice(&self, start: usize, len: usize) -> Column {
        debug_assert!(start + len <= self.len());
        let end = start + len;
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(v[start..end].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[start..end].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[start..end].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[start..end].to_vec()),
        };
        Column {
            data,
            validity: self.validity.as_ref().map(|b| b.slice(start, len)),
        }
    }

    /// Gathers rows at `indices` (in that order).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(gather(v, indices)),
            ColumnData::Float64(v) => ColumnData::Float64(gather(v, indices)),
            ColumnData::Utf8(v) => ColumnData::Utf8(gather(v, indices)),
            ColumnData::Bool(v) => ColumnData::Bool(gather(v, indices)),
        };
        Column {
            data,
            validity: self.validity.as_ref().map(|b| b.take_opt(indices)),
        }
    }

    /// Gathers rows at `indices`, producing NULL where the index is
    /// `usize::MAX` (used by outer joins for unmatched rows).
    pub fn take_opt(&self, indices: &[usize]) -> Column {
        fn gather_opt<T: Clone + Default>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter()
                .map(|&i| {
                    if i == usize::MAX {
                        T::default()
                    } else {
                        v[i].clone()
                    }
                })
                .collect()
        }
        if !indices.contains(&usize::MAX) {
            return self.take(indices);
        }
        let data = match &self.data {
            ColumnData::Int64(v) => ColumnData::Int64(gather_opt(v, indices)),
            ColumnData::Float64(v) => ColumnData::Float64(gather_opt(v, indices)),
            ColumnData::Utf8(v) => ColumnData::Utf8(gather_opt(v, indices)),
            ColumnData::Bool(v) => ColumnData::Bool(gather_opt(v, indices)),
        };
        let mut bm = Bitmap::new_null(indices.len());
        for (pos, &i) in indices.iter().enumerate() {
            if i != usize::MAX && self.is_valid(i) {
                bm.set(pos);
            }
        }
        Column::from_parts(data, Some(bm))
    }

    // ------------------------------------------------------------------
    // Ordering, equality, hashing (sort / group / join keys)
    // ------------------------------------------------------------------

    /// Total order between two rows of this column, matching
    /// [`Value::total_cmp`]: NULLs sort first, then type-aware comparison.
    pub fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        match (self.is_valid(a), self.is_valid(b)) {
            (false, false) => Ordering::Equal,
            (false, true) => Ordering::Less,
            (true, false) => Ordering::Greater,
            (true, true) => match &self.data {
                ColumnData::Int64(v) => v[a].cmp(&v[b]),
                ColumnData::Float64(v) => v[a].partial_cmp(&v[b]).unwrap_or(Ordering::Equal),
                ColumnData::Utf8(v) => v[a].cmp(&v[b]),
                ColumnData::Bool(v) => v[a].cmp(&v[b]),
            },
        }
    }

    /// Equality between a row of this column and a row of `other` with the
    /// grouping semantics of [`crate::value::KeyValue`]: NULL == NULL, and
    /// integral floats compare equal to the matching integers.
    pub fn loose_eq_rows(&self, i: usize, other: &Column, j: usize) -> bool {
        match (self.is_valid(i), other.is_valid(j)) {
            (false, false) => return true,
            (true, true) => {}
            _ => return false,
        }
        match (&self.data, &other.data) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a[i] == b[j],
            (ColumnData::Float64(a), ColumnData::Float64(b)) => {
                // NaNs group together, matching the KeyValue bit-pattern keys
                a[i] == b[j] || (a[i].is_nan() && b[j].is_nan())
            }
            (ColumnData::Int64(a), ColumnData::Float64(b)) => a[i] as f64 == b[j],
            (ColumnData::Float64(a), ColumnData::Int64(b)) => a[i] == b[j] as f64,
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a[i] == b[j],
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[i] == b[j],
            _ => false,
        }
    }

    /// Mixes a canonical per-row hash of this column into `hashes` (one slot
    /// per row).  The canonical form matches
    /// [`crate::functions::fnv1a_hash_value`]: integral floats hash like the
    /// matching integer, so `loose_eq_rows` equality implies hash equality.
    pub fn hash_into(&self, hashes: &mut [u64]) {
        debug_assert_eq!(hashes.len(), self.len());
        self.hash_range_into(0..self.len(), hashes);
    }

    /// Range-restricted [`Column::hash_into`]: mixes the hashes of rows
    /// `range` into `hashes` (one slot per row of the range).  This is the
    /// morsel-level building block of the parallel hashing kernels.
    pub fn hash_range_into(&self, range: std::ops::Range<usize>, hashes: &mut [u64]) {
        debug_assert_eq!(hashes.len(), range.len());
        debug_assert!(range.end <= self.len());
        const PRIME: u64 = 0x100000001b3;
        const NULL_HASH: u64 = 0x9e3779b97f4a7c15;
        #[inline]
        fn mix(h: u64, elem: u64) -> u64 {
            (h ^ elem).wrapping_mul(PRIME).rotate_left(27)
        }
        #[inline]
        fn f64_canonical(x: f64) -> u64 {
            // integral floats (including ±0.0) hash like the matching integer
            if x.fract() == 0.0 && x.abs() < 9.0e18 {
                hash_i64(x as i64)
            } else {
                hash_u64(x.to_bits())
            }
        }
        #[inline]
        fn hash_u64(x: u64) -> u64 {
            // splitmix-style finalizer for good avalanche on small ints
            let mut z = x.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z ^ (z >> 31)
        }
        #[inline]
        fn hash_i64(x: i64) -> u64 {
            hash_u64(x as u64)
        }
        #[inline]
        fn hash_str(s: &str) -> u64 {
            const OFFSET: u64 = 0xcbf29ce484222325;
            let mut h = OFFSET;
            for b in s.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        match &self.data {
            ColumnData::Int64(v) => {
                for (row, h) in range.zip(hashes.iter_mut()) {
                    let e = if self.is_valid(row) {
                        hash_i64(v[row])
                    } else {
                        NULL_HASH
                    };
                    *h = mix(*h, e);
                }
            }
            ColumnData::Float64(v) => {
                for (row, h) in range.zip(hashes.iter_mut()) {
                    let e = if self.is_valid(row) {
                        f64_canonical(v[row])
                    } else {
                        NULL_HASH
                    };
                    *h = mix(*h, e);
                }
            }
            ColumnData::Utf8(v) => {
                for (row, h) in range.zip(hashes.iter_mut()) {
                    let e = if self.is_valid(row) {
                        hash_str(&v[row])
                    } else {
                        NULL_HASH
                    };
                    *h = mix(*h, e);
                }
            }
            ColumnData::Bool(v) => {
                for (row, h) in range.zip(hashes.iter_mut()) {
                    let e = if self.is_valid(row) {
                        hash_u64(v[row] as u64)
                    } else {
                        NULL_HASH
                    };
                    *h = mix(*h, e);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Column-level aggregate kernels (used by global aggregation and the
    // micro-benchmarks)
    // ------------------------------------------------------------------

    /// Sum and count of the valid numeric rows in one typed pass.
    /// Strings contribute nothing (matching `Value::as_f64`).
    pub fn sum_count_f64(&self) -> (f64, u64) {
        self.sum_count_f64_range(0..self.len())
    }

    /// Range-restricted [`Column::sum_count_f64`]: the morsel-level partial
    /// state of the parallel SUM/COUNT/AVG kernel.
    pub fn sum_count_f64_range(&self, range: std::ops::Range<usize>) -> (f64, u64) {
        debug_assert!(range.end <= self.len());
        match (&self.data, &self.validity) {
            (ColumnData::Float64(v), None) => (v[range.clone()].iter().sum(), range.len() as u64),
            (ColumnData::Float64(v), Some(bm)) => {
                let mut s = 0.0;
                let mut c = 0u64;
                for i in range {
                    if bm.get(i) {
                        s += v[i];
                        c += 1;
                    }
                }
                (s, c)
            }
            (ColumnData::Int64(v), None) => (
                v[range.clone()].iter().map(|&x| x as f64).sum(),
                range.len() as u64,
            ),
            (ColumnData::Int64(v), Some(bm)) => {
                let mut s = 0.0;
                let mut c = 0u64;
                for i in range {
                    if bm.get(i) {
                        s += v[i] as f64;
                        c += 1;
                    }
                }
                (s, c)
            }
            (ColumnData::Bool(v), _) => {
                let mut s = 0.0;
                let mut c = 0u64;
                for i in range {
                    if self.is_valid(i) {
                        s += v[i] as u64 as f64;
                        c += 1;
                    }
                }
                (s, c)
            }
            (ColumnData::Utf8(_), _) => (0.0, 0),
        }
    }

    /// Morsel-parallel sum and count: per-morsel partials from
    /// [`Column::sum_count_f64_range`] merged in morsel order, so the result
    /// is bit-identical at any thread count.
    pub fn par_sum_count_f64(&self, pool: &crate::parallel::ThreadPool) -> (f64, u64) {
        let partials = pool.run_morsels(self.len(), |range| self.sum_count_f64_range(range));
        let mut sum = 0.0;
        let mut count = 0u64;
        for (s, c) in partials {
            sum += s;
            count += c;
        }
        (sum, count)
    }

    /// Approximate heap + inline footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        let bitmap = self
            .validity
            .as_ref()
            .map(|b| b.words.len() * 8)
            .unwrap_or(0);
        bitmap
            + match &self.data {
                ColumnData::Int64(v) => v.len() * 8,
                ColumnData::Float64(v) => v.len() * 8,
                ColumnData::Bool(v) => v.len(),
                ColumnData::Utf8(v) => v.iter().map(|s| 24 + s.len()).sum(),
            }
    }
}

/// Logical equality: rows compare as SQL values (so `Int64[5]` equals
/// `Float64[5.0]`), which mirrors the equality of the previous `Vec<Value>`
/// representation that tests and the data generators rely on.
impl PartialEq for Column {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        if self.data_type() == other.data_type()
            && self.validity == other.validity
            && self.data == other.data
        {
            return true;
        }
        (0..self.len()).all(|i| self.value_at(i) == other.value_at(i))
    }
}

impl FromIterator<Value> for Column {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Column {
        let values: Vec<Value> = iter.into_iter().collect();
        Column::from_values(&values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_push() {
        let mut b = Bitmap::new_valid(70);
        assert!(b.all_valid());
        b.clear(65);
        assert!(!b.get(65));
        assert!(b.get(64));
        assert_eq!(b.count_valid(), 69);
        b.push(false);
        b.push(true);
        assert_eq!(b.len(), 72);
        assert!(!b.get(70));
        assert!(b.get(71));
    }

    #[test]
    fn from_values_infers_types() {
        let c = Column::from_values(&[Value::Int(1), Value::Null, Value::Int(3)]);
        assert_eq!(c.data_type(), DataType::Int);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.value_at(1), Value::Null);
        assert_eq!(c.value_at(2), Value::Int(3));

        let c = Column::from_values(&[Value::Int(1), Value::Float(2.5)]);
        assert_eq!(c.data_type(), DataType::Float);
        assert_eq!(c.value_at(0), Value::Float(1.0));

        let c = Column::from_values(&[Value::Null, Value::Null]);
        assert!(c.value_at(0).is_null() && c.value_at(1).is_null());
    }

    #[test]
    fn filter_take_preserve_nulls() {
        let c = Column::from_opt_i64(vec![Some(1), None, Some(3), Some(4)]);
        let f = c.filter(&SelVec::from_bools(&[true, true, false, true]));
        assert_eq!(
            f.to_values(),
            vec![Value::Int(1), Value::Null, Value::Int(4)]
        );
        let t = c.take(&[3, 1, 0]);
        assert_eq!(
            t.to_values(),
            vec![Value::Int(4), Value::Null, Value::Int(1)]
        );
        let o = c.take_opt(&[0, usize::MAX, 2]);
        assert_eq!(
            o.to_values(),
            vec![Value::Int(1), Value::Null, Value::Int(3)]
        );
    }

    #[test]
    fn loose_equality_and_hashing_agree_across_numeric_types() {
        let ints = Column::from_i64(vec![5, 7, 0]);
        let floats = Column::from_f64(vec![5.0, 7.5, -0.0]);
        assert!(ints.loose_eq_rows(0, &floats, 0));
        assert!(!ints.loose_eq_rows(1, &floats, 1));
        assert!(ints.loose_eq_rows(2, &floats, 2));

        let mut hi = vec![0u64; 3];
        let mut hf = vec![0u64; 3];
        ints.hash_into(&mut hi);
        floats.hash_into(&mut hf);
        assert_eq!(hi[0], hf[0], "Int 5 and Float 5.0 must hash alike");
        assert_eq!(hi[2], hf[2], "Int 0 and Float -0.0 must hash alike");
        assert_ne!(hi[1], hf[1]);
    }

    #[test]
    fn append_coerces_across_types() {
        let mut c = Column::from_i64(vec![1, 2]);
        c.append(&Column::from_opt_i64(vec![Some(3), None]));
        assert_eq!(
            c.to_values(),
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Null]
        );
        let mut c = Column::from_f64(vec![1.0]);
        c.append(&Column::from_i64(vec![2]));
        assert_eq!(c.to_values(), vec![Value::Float(1.0), Value::Float(2.0)]);
    }

    #[test]
    fn append_into_all_null_column_adopts_incoming_type() {
        let mut c = Column::nulls(2);
        c.append(&Column::from_str(vec!["hello".into()]));
        assert_eq!(c.data_type(), DataType::Str);
        assert_eq!(
            c.to_values(),
            vec![Value::Null, Value::Null, Value::Str("hello".into())]
        );
    }

    #[test]
    fn sum_count_skips_nulls() {
        let c = Column::from_opt_f64(vec![Some(1.5), None, Some(2.5)]);
        assert_eq!(c.sum_count_f64(), (4.0, 2));
        let c = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(c.sum_count_f64(), (6.0, 3));
    }

    #[test]
    fn logical_equality_coerces_numerics() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_f64(vec![1.0, 2.0]);
        assert_eq!(a, b);
        let c = Column::from_f64(vec![1.0, 2.5]);
        assert_ne!(a, c);
    }
}
