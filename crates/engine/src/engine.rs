//! The engine facade and the driver-level [`Backend`] trait.
//!
//! VerdictDB talks to the underlying database exclusively through a SQL
//! string interface (JDBC/ODBC in the paper).  [`Backend`] models that
//! interface; [`Engine`] is the in-memory implementation used as the
//! substitute for Impala / Spark SQL / Redshift.  `Connection` remains as
//! a backward-compatible alias for the trait's pre-refactor name.

use crate::catalog::Catalog;
use crate::error::EngineResult;
use crate::exec::progressive::{BlockScan, ProgressiveScan};
use crate::exec::Executor;
use crate::parallel::ThreadPool;
use crate::table::Table;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use verdict_sql::dialect::{Dialect, GenericDialect};

/// Execution statistics for one statement.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecStats {
    /// Number of base-table rows scanned (across all scans in the statement).
    pub rows_scanned: u64,
    /// Wall-clock time spent inside the engine.
    pub elapsed: Duration,
}

/// The result of executing one SQL statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The result rows (empty for DDL/DML).
    pub table: Table,
    /// Execution statistics.
    pub stats: ExecStats,
}

/// The driver-level interface VerdictDB uses to reach the underlying database.
///
/// Three methods are required — `execute`, `table_row_count`,
/// `table_exists` — and everything else is a *capability hook* with a
/// conservative default, so a minimal pass-through JDBC/ODBC-style backend
/// is three methods of glue.  Callers must tolerate every default: no
/// [`data_version`](Backend::data_version) means answers over this backend
/// are uncacheable, no [`open_block_scan`](Backend::open_block_scan) means
/// progressive queries fall back to one-shot execution, and the
/// [`dialect`](Backend::dialect) drives how the planner renders SQL
/// (identifier quoting, `rand()` spelling, rand-in-WHERE workarounds).
pub trait Backend: Send + Sync {
    /// Executes one SQL statement and returns the result set plus statistics.
    fn execute(&self, sql: &str) -> EngineResult<QueryResult>;

    /// Returns the number of rows in a table (used for sample planning and
    /// the default sampling policy), or an error when the table is missing.
    fn table_row_count(&self, table: &str) -> EngineResult<u64>;

    /// True when a table exists.
    fn table_exists(&self, table: &str) -> bool;

    /// A short static name for this backend kind (`"engine"`, `"remote"`).
    fn name(&self) -> &'static str {
        "backend"
    }

    /// A stable identity string distinguishing backend *instances* (for a
    /// remote backend, typically `remote@host:port`).  Answer-cache keys
    /// fold this in so answers computed against one backend are never
    /// replayed against another.
    fn identity(&self) -> String {
        self.name().to_string()
    }

    /// The SQL dialect this backend speaks.  All SQL the middleware
    /// generates — scramble builds, append maintenance, rewritten AQP
    /// queries, bootstrap replicates — is rendered through this dialect.
    fn dialect(&self) -> &dyn Dialect {
        &GenericDialect
    }

    /// Backend-specific observability counters surfaced by `SHOW STATS`
    /// (for example a remote backend's wire round-trips).  Names should be
    /// lowercase snake_case; the default backend has none.
    fn backend_stats(&self) -> Vec<(String, u64)> {
        Vec::new()
    }

    /// Requests that the connection use `threads` workers for query
    /// execution.  Connections without an execution engine of their own (the
    /// real JDBC/ODBC case the paper targets) ignore the hint; the in-memory
    /// [`Engine`] resizes its morsel pool.
    fn set_parallelism(&self, threads: usize) {
        let _ = threads;
    }

    /// Requests a GROUP BY clustering strategy (see
    /// [`crate::parallel::GroupStrategy`]).  Every strategy yields identical
    /// answers, so this is purely a latency hint; connections without a local
    /// execution engine ignore it.
    fn set_group_strategy(&self, strategy: crate::parallel::GroupStrategy) {
        let _ = strategy;
    }

    /// The monotonic data version of a table, advanced by every write
    /// (create, append, drop, replace), or `None` when the connection cannot
    /// track mutations.  Answer caches use this to decide whether a stored
    /// answer is still valid; returning `None` (the default) makes cached
    /// answers for queries over this connection ineligible, which is the
    /// safe behaviour for pass-through JDBC/ODBC-style connections.
    fn data_version(&self, table: &str) -> Option<u64> {
        let _ = table;
        None
    }

    /// Materialises an exact snapshot of a table's current contents, when
    /// this backend can produce one cheaply (the in-process [`Engine`] hands
    /// out its catalog image).  The middleware's persistence layer uses this
    /// to capture a freshly-built scramble — physical row order included —
    /// for its initial write to the on-disk store.  `None` (the default)
    /// means the backend cannot snapshot tables and persistence is
    /// unavailable over it.
    fn table_snapshot(&self, table: &str) -> Option<Table> {
        let _ = table;
        None
    }

    /// Opens a resumable block-scan cursor for a statement, when this
    /// connection can execute it progressively (see
    /// [`crate::exec::progressive::BlockScan`]).  Returns `None` — the
    /// default, and the right answer for pass-through JDBC/ODBC-style
    /// connections — when progressive execution is unavailable or the
    /// statement's shape is outside the progressive class; callers fall back
    /// to one-shot execution.
    fn open_block_scan(&self, sql: &str) -> Option<Box<dyn BlockScan>> {
        let _ = sql;
        None
    }
}

/// Backward-compatible alias for [`Backend`]'s pre-refactor name.
pub use self::Backend as Connection;

/// The in-memory SQL engine: a catalog plus an executor per statement.
#[derive(Clone)]
pub struct Engine {
    catalog: Arc<Catalog>,
    /// Optional deterministic seed for `rand()`; incremented per statement so
    /// repeated sampling statements do not reuse the same randomness.
    seed: Arc<Mutex<Option<u64>>>,
    /// Morsel-parallel worker pool shared by every statement this engine
    /// executes.  Results are bit-identical at any pool size (partial states
    /// merge in morsel order); the size only changes wall-clock time.
    pool: Arc<ThreadPool>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an engine with an empty catalog and nondeterministic `rand()`.
    pub fn new() -> Engine {
        Engine {
            catalog: Arc::new(Catalog::new()),
            seed: Arc::new(Mutex::new(None)),
            pool: Arc::new(ThreadPool::with_default_parallelism()),
        }
    }

    /// Creates an engine whose `rand()` calls are deterministic, for
    /// reproducible experiments and tests.
    pub fn with_seed(seed: u64) -> Engine {
        Engine {
            catalog: Arc::new(Catalog::new()),
            seed: Arc::new(Mutex::new(Some(seed))),
            pool: Arc::new(ThreadPool::with_default_parallelism()),
        }
    }

    /// Creates an engine with an explicit worker-thread count.
    pub fn with_parallelism(threads: usize) -> Engine {
        let engine = Engine::new();
        engine.pool.set_parallelism(threads);
        engine
    }

    /// Creates a deterministic engine with an explicit worker-thread count.
    pub fn with_seed_and_parallelism(seed: u64, threads: usize) -> Engine {
        let engine = Engine::with_seed(seed);
        engine.pool.set_parallelism(threads);
        engine
    }

    /// The current worker-thread count.
    pub fn parallelism(&self) -> usize {
        self.pool.parallelism()
    }

    /// The current GROUP BY clustering strategy.
    pub fn group_strategy(&self) -> crate::parallel::GroupStrategy {
        self.pool.group_strategy()
    }

    /// Access to the underlying catalog (to register generated datasets).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Registers a table directly (bypassing SQL), used by data generators.
    pub fn register_table(&self, name: &str, table: Table) {
        self.catalog.register(name, table);
    }

    fn next_seed(&self) -> Option<u64> {
        let mut guard = self.seed.lock();
        match guard.as_mut() {
            Some(s) => {
                let current = *s;
                *s = s.wrapping_add(1);
                Some(current)
            }
            None => None,
        }
    }

    /// Executes a single SQL statement.
    pub fn execute_sql(&self, sql: &str) -> EngineResult<QueryResult> {
        let stmt = verdict_sql::parse_statement(sql)?;
        let start = Instant::now();
        let mut exec = Executor::with_pool(&self.catalog, self.next_seed(), Arc::clone(&self.pool));
        let table = exec.execute_statement(&stmt)?;
        Ok(QueryResult {
            table,
            stats: ExecStats {
                rows_scanned: exec.rows_scanned,
                elapsed: start.elapsed(),
            },
        })
    }

    /// Executes several semicolon-separated statements, returning the last result.
    pub fn execute_script(&self, sql: &str) -> EngineResult<QueryResult> {
        let stmts = verdict_sql::parse_statements(sql)?;
        let start = Instant::now();
        let mut last = QueryResult {
            table: Table::default(),
            stats: ExecStats::default(),
        };
        let mut scanned = 0u64;
        for stmt in &stmts {
            let mut exec =
                Executor::with_pool(&self.catalog, self.next_seed(), Arc::clone(&self.pool));
            let table = exec.execute_statement(stmt)?;
            scanned += exec.rows_scanned;
            last = QueryResult {
                table,
                stats: ExecStats::default(),
            };
        }
        last.stats = ExecStats {
            rows_scanned: scanned,
            elapsed: start.elapsed(),
        };
        Ok(last)
    }
}

impl Backend for Engine {
    fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        self.execute_sql(sql)
    }

    fn table_row_count(&self, table: &str) -> EngineResult<u64> {
        // Answer from the catalog (or a persisted table's stored header)
        // without materialising store-backed tables.
        if !self.catalog.exists(table) {
            return Err(crate::error::EngineError::TableNotFound(table.to_string()));
        }
        Ok(self.catalog.row_count(table) as u64)
    }

    fn table_exists(&self, table: &str) -> bool {
        self.catalog.exists(table)
    }

    fn name(&self) -> &'static str {
        "engine"
    }

    fn set_parallelism(&self, threads: usize) {
        self.pool.set_parallelism(threads);
    }

    fn set_group_strategy(&self, strategy: crate::parallel::GroupStrategy) {
        self.pool.set_group_strategy(strategy);
    }

    fn data_version(&self, table: &str) -> Option<u64> {
        Some(self.catalog.data_version(table))
    }

    fn table_snapshot(&self, table: &str) -> Option<Table> {
        self.catalog.get(table).ok().map(|t| (*t).clone())
    }

    fn open_block_scan(&self, sql: &str) -> Option<Box<dyn BlockScan>> {
        let stmt = verdict_sql::parse_statement(sql).ok()?;
        let query = match stmt {
            verdict_sql::ast::Statement::Query(q) => q,
            _ => return None,
        };
        ProgressiveScan::try_new(&self.catalog, &query, Arc::clone(&self.pool))
            .ok()
            .map(|scan| Box::new(scan) as Box<dyn BlockScan>)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn engine() -> Engine {
        let e = Engine::with_seed(11);
        let t = TableBuilder::new()
            .int_column("id", (0..1000).collect())
            .float_column("price", (0..1000).map(|i| i as f64).collect())
            .build()
            .unwrap();
        e.register_table("sales", t);
        e
    }

    #[test]
    fn executes_sql_and_reports_stats() {
        let e = engine();
        let r = e
            .execute_sql("SELECT count(*), avg(price) FROM sales WHERE price < 500")
            .unwrap();
        assert_eq!(r.table.value_at(0, 0), Value::Int(500));
        assert_eq!(r.stats.rows_scanned, 1000);
        assert!(r.stats.elapsed.as_nanos() > 0);
    }

    #[test]
    fn connection_trait_methods() {
        let e = engine();
        assert!(e.table_exists("sales"));
        assert!(!e.table_exists("nope"));
        assert_eq!(e.table_row_count("sales").unwrap(), 1000);
    }

    #[test]
    fn script_execution_runs_all_statements() {
        let e = engine();
        let r = e
            .execute_script(
                "CREATE TABLE cheap AS SELECT * FROM sales WHERE price < 10; \
                 SELECT count(*) FROM cheap;",
            )
            .unwrap();
        assert_eq!(r.table.value_at(0, 0), Value::Int(10));
    }

    #[test]
    fn seeded_rand_is_reproducible_across_engines() {
        let run = || {
            let e = engine();
            let r = e
                .execute_sql("SELECT count(*) FROM sales WHERE rand() < 0.1")
                .unwrap();
            r.table.value(0, 0).as_i64().unwrap()
        };
        assert_eq!(run(), run());
    }
}
