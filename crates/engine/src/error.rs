//! Error types for the execution engine.

use std::fmt;

/// An error raised while planning or executing a SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The SQL text could not be parsed.
    Parse(String),
    /// A referenced table does not exist in the catalog.
    TableNotFound(String),
    /// A referenced column could not be resolved, or was ambiguous.
    ColumnNotFound(String),
    /// A table with this name already exists.
    TableAlreadyExists(String),
    /// Two operands or schemas had incompatible types.
    TypeMismatch(String),
    /// The statement uses SQL the engine does not implement.
    Unsupported(String),
    /// Generic execution failure (division by zero handling, bad function args, ...).
    Execution(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::TableNotFound(t) => write!(f, "table not found: {t}"),
            EngineError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            EngineError::TableAlreadyExists(t) => write!(f, "table already exists: {t}"),
            EngineError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EngineError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenient result alias used throughout the engine.
pub type EngineResult<T> = Result<T, EngineError>;

impl From<verdict_sql::ParseError> for EngineError {
    fn from(e: verdict_sql::ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        assert!(EngineError::TableNotFound("orders".into())
            .to_string()
            .contains("orders"));
        assert!(EngineError::Unsupported("EXISTS".into())
            .to_string()
            .contains("EXISTS"));
    }
}
