//! Vectorized hash aggregation.
//!
//! The executor collects the unique aggregate calls appearing in a query and
//! evaluates their argument expressions over the input frame as typed
//! columns.  Rows are clustered into groups with the canonical-hash grouper
//! ([`crate::kernels::group_rows`]); every accumulator then folds the typed
//! argument slices in one pass per aggregate — no per-cell [`Value`] boxing
//! on the SUM/COUNT/AVG/MIN/MAX hot path that VerdictDB's rewrites lean on.
//!
//! The resulting "aggregated frame" exposes the group keys under their
//! original column names (so later projection expressions still resolve) and
//! each aggregate under a synthetic `__aggN` column; [`replace_exprs`] swaps
//! the original aggregate calls for references to those columns.

use crate::approx::HyperLogLog;
use crate::column::{Column, ColumnData};
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval_expr, infer_type, EvalContext};
use crate::kernels::group_rows_with;
use crate::parallel::ThreadPool;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, KeyValue, Value};
use std::collections::HashMap;
use std::collections::HashSet;
use std::ops::Range;
use verdict_sql::ast::{Expr, FunctionCall, Literal};
use verdict_sql::dialect::GenericDialect;
use verdict_sql::printer::print_expr;

/// The aggregate functions supported by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `count(*)` — counts rows including NULLs.
    CountStar,
    /// `count(expr)` — counts non-NULL values.
    Count,
    /// `count(DISTINCT expr)` — counts distinct non-NULL values.
    CountDistinct,
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)`.
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// Sample variance.
    Variance,
    /// Sample standard deviation.
    Stddev,
    /// Exact median over the group's values.
    Median,
    /// Exact quantile at the given fraction (0..1).
    Quantile(f64),
    /// HyperLogLog-based approximate distinct count (full scan, Table 2 baseline).
    ApproxCountDistinct,
    /// Approximate median (full collect; models Redshift `approx_median`).
    ApproxMedian,
}

impl AggFunc {
    /// Maps a parsed function call to an aggregate kind, when it is an aggregate.
    pub fn from_call(call: &FunctionCall) -> EngineResult<Option<AggFunc>> {
        if !verdict_sql::ast::is_aggregate_function(&call.name) {
            return Ok(None);
        }
        let func = match call.name.as_str() {
            "count" => {
                if call.distinct {
                    AggFunc::CountDistinct
                } else if call.args.len() == 1 && matches!(call.args[0], Expr::Wildcard) {
                    AggFunc::CountStar
                } else {
                    AggFunc::Count
                }
            }
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "variance" | "var_samp" => AggFunc::Variance,
            "stddev" | "stddev_samp" => AggFunc::Stddev,
            "median" => AggFunc::Median,
            "quantile" | "percentile" => {
                let q = call
                    .args
                    .get(1)
                    .and_then(|e| match e {
                        Expr::Literal(Literal::Float(f)) => Some(*f),
                        Expr::Literal(Literal::Integer(i)) => Some(*i as f64),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        EngineError::Execution(
                            "quantile/percentile requires a literal fraction as second argument"
                                .into(),
                        )
                    })?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(EngineError::Execution(format!(
                        "quantile fraction {q} out of [0, 1]"
                    )));
                }
                AggFunc::Quantile(q)
            }
            "approx_count_distinct" | "ndv" => AggFunc::ApproxCountDistinct,
            "approx_median" => AggFunc::ApproxMedian,
            other => return Err(EngineError::Unsupported(format!("aggregate {other}"))),
        };
        Ok(Some(func))
    }

    /// Result type of the aggregate.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggFunc::CountStar
            | AggFunc::Count
            | AggFunc::CountDistinct
            | AggFunc::ApproxCountDistinct => DataType::Int,
            AggFunc::Min | AggFunc::Max => input,
            AggFunc::Sum => {
                if input == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
            _ => DataType::Float,
        }
    }
}

/// Per-group accumulator vectors for one aggregate, folded over the typed
/// argument column in a single pass.
enum GroupAcc {
    Count(Vec<i64>),
    Sum {
        sums: Vec<f64>,
        seen: Vec<bool>,
        integral: bool,
    },
    Avg {
        sums: Vec<f64>,
        counts: Vec<i64>,
    },
    MinMaxI64 {
        best: Vec<i64>,
        has: Vec<bool>,
        is_min: bool,
    },
    MinMaxF64 {
        best: Vec<f64>,
        has: Vec<bool>,
        is_min: bool,
    },
    MinMaxVal {
        best: Vec<Option<Value>>,
        is_min: bool,
    },
    Moments {
        n: Vec<f64>,
        mean: Vec<f64>,
        m2: Vec<f64>,
    },
    Values(Vec<Vec<f64>>),
    Distinct(Vec<HashSet<KeyValue>>),
    Hll(Vec<HyperLogLog>),
}

impl GroupAcc {
    fn new(func: &AggFunc, arg: Option<&Column>, groups: usize) -> GroupAcc {
        match func {
            AggFunc::CountStar | AggFunc::Count => GroupAcc::Count(vec![0; groups]),
            AggFunc::CountDistinct => GroupAcc::Distinct(vec![HashSet::new(); groups]),
            AggFunc::Sum => GroupAcc::Sum {
                sums: vec![0.0; groups],
                seen: vec![false; groups],
                // a typed column is homogeneous, so "did we see a float?"
                // reduces to the column type (bools and ints stay integral)
                integral: !matches!(arg.map(|c| c.data_type()), Some(DataType::Float)),
            },
            AggFunc::Avg => GroupAcc::Avg {
                sums: vec![0.0; groups],
                counts: vec![0; groups],
            },
            AggFunc::Min | AggFunc::Max => {
                let is_min = matches!(func, AggFunc::Min);
                match arg.map(|c| c.data_type()) {
                    Some(DataType::Int) => GroupAcc::MinMaxI64 {
                        best: vec![0; groups],
                        has: vec![false; groups],
                        is_min,
                    },
                    Some(DataType::Float) => GroupAcc::MinMaxF64 {
                        best: vec![0.0; groups],
                        has: vec![false; groups],
                        is_min,
                    },
                    _ => GroupAcc::MinMaxVal {
                        best: vec![None; groups],
                        is_min,
                    },
                }
            }
            AggFunc::Variance | AggFunc::Stddev => GroupAcc::Moments {
                n: vec![0.0; groups],
                mean: vec![0.0; groups],
                m2: vec![0.0; groups],
            },
            AggFunc::Median | AggFunc::Quantile(_) | AggFunc::ApproxMedian => {
                GroupAcc::Values(vec![Vec::new(); groups])
            }
            AggFunc::ApproxCountDistinct => GroupAcc::Hll(vec![HyperLogLog::new(); groups]),
        }
    }

    /// True when this accumulator kind supports morsel-partial evaluation
    /// followed by [`GroupAcc::merge`].  The HLL sketch stays on the serial
    /// path because its update recomputes a whole-column hash vector.
    fn mergeable(func: &AggFunc) -> bool {
        !matches!(func, AggFunc::ApproxCountDistinct)
    }

    /// Folds the rows of `range` (or, for `count(*)`, just their group ids)
    /// into the per-group states.  Calling this once with `0..n` is the
    /// serial path; calling it per morsel and merging the partial states in
    /// morsel order is the parallel path, and the two agree exactly.
    fn update_range(&mut self, arg: Option<&Column>, gids: &[usize], range: Range<usize>) {
        match self {
            GroupAcc::Count(counts) => match arg {
                None => {
                    for i in range {
                        counts[gids[i]] += 1;
                    }
                }
                Some(col) => {
                    for i in range {
                        if col.is_valid(i) {
                            counts[gids[i]] += 1;
                        }
                    }
                }
            },
            GroupAcc::Sum { sums, seen, .. } => {
                let col = arg.expect("sum requires an argument");
                numeric_fold_range(col, gids, range, |g, x| {
                    sums[g] += x;
                    seen[g] = true;
                });
            }
            GroupAcc::Avg { sums, counts } => {
                let col = arg.expect("avg requires an argument");
                numeric_fold_range(col, gids, range, |g, x| {
                    sums[g] += x;
                    counts[g] += 1;
                });
            }
            GroupAcc::MinMaxI64 { best, has, is_min } => {
                let col = arg.expect("min/max requires an argument");
                let v = col.as_i64s().expect("Int64 accumulator for Int64 column");
                let is_min = *is_min;
                for i in range {
                    if !col.is_valid(i) {
                        continue;
                    }
                    let (x, g) = (v[i], gids[i]);
                    if !has[g] || (is_min && x < best[g]) || (!is_min && x > best[g]) {
                        best[g] = x;
                        has[g] = true;
                    }
                }
            }
            GroupAcc::MinMaxF64 { best, has, is_min } => {
                let col = arg.expect("min/max requires an argument");
                let v = col
                    .as_f64s()
                    .expect("Float64 accumulator for Float64 column");
                let is_min = *is_min;
                for i in range {
                    if !col.is_valid(i) {
                        continue;
                    }
                    let (x, g) = (v[i], gids[i]);
                    if !has[g] || (is_min && x < best[g]) || (!is_min && x > best[g]) {
                        best[g] = x;
                        has[g] = true;
                    }
                }
            }
            GroupAcc::MinMaxVal { best, is_min } => {
                let col = arg.expect("min/max requires an argument");
                let is_min = *is_min;
                for i in range {
                    let v = col.value_at(i);
                    if v.is_null() {
                        continue;
                    }
                    let g = gids[i];
                    if minmax_val_replaces(&best[g], &v, is_min) {
                        best[g] = Some(v);
                    }
                }
            }
            GroupAcc::Moments { n, mean, m2 } => {
                let col = arg.expect("variance requires an argument");
                numeric_fold_range(col, gids, range, |g, x| {
                    // Welford's online algorithm
                    n[g] += 1.0;
                    let delta = x - mean[g];
                    mean[g] += delta / n[g];
                    m2[g] += delta * (x - mean[g]);
                });
            }
            GroupAcc::Values(per_group) => {
                let col = arg.expect("median/quantile requires an argument");
                numeric_fold_range(col, gids, range, |g, x| per_group[g].push(x));
            }
            GroupAcc::Distinct(sets) => {
                let col = arg.expect("count distinct requires an argument");
                for i in range {
                    let v = col.value_at(i);
                    if !v.is_null() {
                        sets[gids[i]].insert(KeyValue::from_value(&v));
                    }
                }
            }
            GroupAcc::Hll(sketches) => {
                let col = arg.expect("ndv requires an argument");
                let hashes = crate::functions::fnv_hash_column_raw(col);
                for i in range {
                    if let Some(h) = hashes[i] {
                        sketches[gids[i]].add_raw_hash(h);
                    }
                }
            }
        }
    }

    /// Merges a later morsel's partial state into this one.  Merge order is
    /// always morsel order, which makes the combined state deterministic and
    /// independent of the thread count.
    fn merge(&mut self, other: GroupAcc) {
        match (self, other) {
            (GroupAcc::Count(a), GroupAcc::Count(b)) => {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
            }
            (
                GroupAcc::Sum { sums, seen, .. },
                GroupAcc::Sum {
                    sums: os, seen: ok, ..
                },
            ) => {
                for g in 0..sums.len() {
                    if ok[g] {
                        sums[g] += os[g];
                        seen[g] = true;
                    }
                }
            }
            (
                GroupAcc::Avg { sums, counts },
                GroupAcc::Avg {
                    sums: os,
                    counts: oc,
                },
            ) => {
                for g in 0..sums.len() {
                    sums[g] += os[g];
                    counts[g] += oc[g];
                }
            }
            (
                GroupAcc::MinMaxI64 { best, has, is_min },
                GroupAcc::MinMaxI64 {
                    best: ob, has: oh, ..
                },
            ) => {
                let is_min = *is_min;
                for g in 0..best.len() {
                    if !oh[g] {
                        continue;
                    }
                    let x = ob[g];
                    if !has[g] || (is_min && x < best[g]) || (!is_min && x > best[g]) {
                        best[g] = x;
                        has[g] = true;
                    }
                }
            }
            (
                GroupAcc::MinMaxF64 { best, has, is_min },
                GroupAcc::MinMaxF64 {
                    best: ob, has: oh, ..
                },
            ) => {
                let is_min = *is_min;
                for g in 0..best.len() {
                    if !oh[g] {
                        continue;
                    }
                    let x = ob[g];
                    if !has[g] || (is_min && x < best[g]) || (!is_min && x > best[g]) {
                        best[g] = x;
                        has[g] = true;
                    }
                }
            }
            (GroupAcc::MinMaxVal { best, is_min }, GroupAcc::MinMaxVal { best: ob, .. }) => {
                let is_min = *is_min;
                for (slot, incoming) in best.iter_mut().zip(ob) {
                    if let Some(v) = incoming {
                        if minmax_val_replaces(slot, &v, is_min) {
                            *slot = Some(v);
                        }
                    }
                }
            }
            (
                GroupAcc::Moments { n, mean, m2 },
                GroupAcc::Moments {
                    n: on,
                    mean: om,
                    m2: om2,
                },
            ) => {
                // Chan et al. pairwise combination of (count, mean, M2).
                for g in 0..n.len() {
                    if on[g] == 0.0 {
                        continue;
                    }
                    if n[g] == 0.0 {
                        n[g] = on[g];
                        mean[g] = om[g];
                        m2[g] = om2[g];
                        continue;
                    }
                    let total = n[g] + on[g];
                    let delta = om[g] - mean[g];
                    m2[g] += om2[g] + delta * delta * n[g] * on[g] / total;
                    mean[g] += delta * on[g] / total;
                    n[g] = total;
                }
            }
            (GroupAcc::Values(a), GroupAcc::Values(b)) => {
                // morsel order == row order, so concatenation preserves the
                // serial value order within every group
                for (dst, mut src) in a.iter_mut().zip(b) {
                    dst.append(&mut src);
                }
            }
            (GroupAcc::Distinct(a), GroupAcc::Distinct(b)) => {
                for (dst, src) in a.iter_mut().zip(b) {
                    dst.extend(src);
                }
            }
            (GroupAcc::Hll(a), GroupAcc::Hll(b)) => {
                for (dst, src) in a.iter_mut().zip(b) {
                    dst.merge(&src);
                }
            }
            _ => unreachable!("partial states of one aggregate share a variant"),
        }
    }

    /// Finalises one output column (one slot per group).
    fn finish(self, func: &AggFunc) -> Column {
        match self {
            GroupAcc::Count(counts) => Column::from_i64(counts),
            GroupAcc::Sum {
                sums,
                seen,
                integral,
            } => {
                if integral {
                    Column::from_opt_i64(
                        sums.iter()
                            .zip(seen.iter())
                            .map(|(&s, &ok)| ok.then_some(s as i64))
                            .collect(),
                    )
                } else {
                    Column::from_opt_f64(
                        sums.iter()
                            .zip(seen.iter())
                            .map(|(&s, &ok)| ok.then_some(s))
                            .collect(),
                    )
                }
            }
            GroupAcc::Avg { sums, counts } => Column::from_opt_f64(
                sums.iter()
                    .zip(counts.iter())
                    .map(|(&s, &c)| (c > 0).then(|| s / c as f64))
                    .collect(),
            ),
            GroupAcc::MinMaxI64 { best, has, .. } => Column::from_opt_i64(
                best.iter()
                    .zip(has.iter())
                    .map(|(&b, &ok)| ok.then_some(b))
                    .collect(),
            ),
            GroupAcc::MinMaxF64 { best, has, .. } => Column::from_opt_f64(
                best.iter()
                    .zip(has.iter())
                    .map(|(&b, &ok)| ok.then_some(b))
                    .collect(),
            ),
            GroupAcc::MinMaxVal { best, .. } => {
                let values: Vec<Value> =
                    best.into_iter().map(|b| b.unwrap_or(Value::Null)).collect();
                Column::from_values(&values)
            }
            GroupAcc::Moments { n, m2, .. } => {
                let sd = matches!(func, AggFunc::Stddev);
                Column::from_opt_f64(
                    n.iter()
                        .zip(m2.iter())
                        .map(|(&n, &m2)| {
                            (n >= 2.0).then(|| {
                                let var = m2 / (n - 1.0);
                                if sd {
                                    var.sqrt()
                                } else {
                                    var
                                }
                            })
                        })
                        .collect(),
                )
            }
            GroupAcc::Values(per_group) => {
                let q = match func {
                    AggFunc::Quantile(q) => *q,
                    _ => 0.5,
                };
                Column::from_opt_f64(
                    per_group
                        .into_iter()
                        .map(|v| quantile_of_opt(v, q))
                        .collect(),
                )
            }
            GroupAcc::Distinct(sets) => {
                Column::from_i64(sets.iter().map(|s| s.len() as i64).collect())
            }
            GroupAcc::Hll(sketches) => Column::from_i64(
                sketches
                    .iter()
                    .map(|h| h.estimate().round() as i64)
                    .collect(),
            ),
        }
    }
}

/// True when `incoming` should replace the current best of a dynamically
/// typed MIN/MAX slot.
fn minmax_val_replaces(current: &Option<Value>, incoming: &Value, is_min: bool) -> bool {
    match current {
        None => true,
        Some(b) => match incoming.sql_cmp(b) {
            Some(std::cmp::Ordering::Less) => is_min,
            Some(std::cmp::Ordering::Greater) => !is_min,
            _ => false,
        },
    }
}

/// Folds the valid numeric slots of rows `range` into `f(gid, x)`,
/// dispatching on the column type once.  String columns contribute nothing
/// (matching `Value::as_f64`).
fn numeric_fold_range(
    col: &Column,
    gids: &[usize],
    range: Range<usize>,
    mut f: impl FnMut(usize, f64),
) {
    match (col.data(), col.validity()) {
        (ColumnData::Float64(v), None) => {
            for i in range {
                f(gids[i], v[i]);
            }
        }
        (ColumnData::Float64(v), Some(bm)) => {
            for i in range {
                if bm.get(i) {
                    f(gids[i], v[i]);
                }
            }
        }
        (ColumnData::Int64(v), None) => {
            for i in range {
                f(gids[i], v[i] as f64);
            }
        }
        (ColumnData::Int64(v), Some(bm)) => {
            for i in range {
                if bm.get(i) {
                    f(gids[i], v[i] as f64);
                }
            }
        }
        (ColumnData::Bool(v), _) => {
            for i in range {
                if col.is_valid(i) {
                    f(gids[i], v[i] as u64 as f64);
                }
            }
        }
        (ColumnData::Utf8(_), _) => {}
    }
}

fn quantile_of_opt(mut values: Vec<f64>, q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (values.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    let frac = pos - lower as f64;
    Some(values[lower] * (1.0 - frac) + values[upper] * frac)
}

/// Exact interpolated quantile of a set of values (used by median/quantile
/// aggregates and exposed for tests).
pub fn quantile_of(values: Vec<f64>, q: f64) -> Value {
    match quantile_of_opt(values, q) {
        Some(v) => Value::Float(v),
        None => Value::Null,
    }
}

/// One aggregate call to compute, tracked together with the printed form of
/// the original expression so replacement can find it again.
#[derive(Debug, Clone)]
pub struct AggregateItem {
    /// The original function call as parsed.
    pub call: FunctionCall,
    /// The resolved aggregate function.
    pub func: AggFunc,
    /// Name the computed column is exposed under in the aggregated frame.
    pub output_name: String,
}

/// Collects the unique aggregate calls (outside window specifications)
/// appearing in the given expressions, in first-appearance order.
pub fn collect_aggregate_calls(exprs: &[&Expr]) -> EngineResult<Vec<AggregateItem>> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut items: Vec<AggregateItem> = Vec::new();
    for expr in exprs {
        let mut err: Option<EngineError> = None;
        verdict_sql::visitor::walk_expr(expr, &mut |e| {
            if err.is_some() {
                return;
            }
            if let Some(call) = e.as_aggregate() {
                let key = print_expr(e, &GenericDialect);
                if let std::collections::hash_map::Entry::Vacant(entry) = seen.entry(key) {
                    match AggFunc::from_call(call) {
                        Ok(Some(func)) => {
                            let idx = items.len();
                            entry.insert(idx);
                            items.push(AggregateItem {
                                call: call.clone(),
                                func,
                                output_name: format!("__agg{idx}"),
                            });
                        }
                        Ok(None) => {}
                        Err(e) => err = Some(e),
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(items)
}

/// Output of the aggregation stage.
pub struct AggregatedFrame {
    /// The aggregated table: group-key columns followed by aggregate columns.
    pub table: Table,
    /// Replacement pairs: original expression -> column reference in `table`.
    pub replacements: Vec<(Expr, Expr)>,
}

/// Executes hash aggregation of `input` grouped by `group_exprs`, computing
/// `aggs`, on the calling thread.
pub fn execute_aggregation(
    input: &Table,
    group_exprs: &[Expr],
    aggs: &[AggregateItem],
    rng: &mut dyn FnMut() -> f64,
) -> EngineResult<AggregatedFrame> {
    execute_aggregation_with(input, group_exprs, aggs, rng, &ThreadPool::serial())
}

/// Morsel-parallel hash aggregation: grouping and the per-aggregate folds run
/// one partial state per morsel across the pool; partial states merge in
/// morsel order, so the result is bit-identical at any thread count.
pub fn execute_aggregation_with(
    input: &Table,
    group_exprs: &[Expr],
    aggs: &[AggregateItem],
    rng: &mut dyn FnMut() -> f64,
    pool: &ThreadPool,
) -> EngineResult<AggregatedFrame> {
    // Evaluate group keys and aggregate arguments over the input frame.
    let mut key_cols: Vec<Column> = Vec::with_capacity(group_exprs.len());
    for g in group_exprs {
        let mut ctx = EvalContext { table: input, rng };
        key_cols.push(eval_expr(g, &mut ctx)?);
    }
    let mut arg_cols: Vec<Option<Column>> = Vec::with_capacity(aggs.len());
    for item in aggs {
        if matches!(item.func, AggFunc::CountStar) {
            arg_cols.push(None);
        } else {
            let arg = item.call.args.first().ok_or_else(|| {
                EngineError::Execution(format!("aggregate {} requires an argument", item.call.name))
            })?;
            let mut ctx = EvalContext { table: input, rng };
            arg_cols.push(Some(eval_expr(arg, &mut ctx)?));
        }
    }
    aggregate_evaluated(
        &key_cols,
        &arg_cols,
        group_exprs,
        aggs,
        &input.schema,
        input.num_rows(),
        pool,
    )
}

/// The aggregation core over **pre-evaluated** group-key and argument
/// columns: canonical-hash grouping, one accumulator fold per aggregate, and
/// output-frame assembly.
///
/// This is the single numeric path shared by the one-shot executor
/// ([`execute_aggregation_with`], which evaluates the expressions itself) and
/// the progressive block-scan executor
/// ([`crate::exec::progressive::ProgressiveScan`], which buffers
/// block-evaluated columns and snapshots the prefix).  Sharing it is what
/// makes a progressive run's final frame bit-identical to the one-shot
/// answer: identical input columns take identical morsel decompositions,
/// accumulator folds, and morsel-order merges, at any pool size.
///
/// `input_schema` is the schema the group/argument expressions were
/// evaluated against (used only for output-type inference); `n` is the row
/// count of every evaluated column.
pub fn aggregate_evaluated(
    key_cols: &[Column],
    arg_cols: &[Option<Column>],
    group_exprs: &[Expr],
    aggs: &[AggregateItem],
    input_schema: &crate::schema::Schema,
    n: usize,
    pool: &ThreadPool,
) -> EngineResult<AggregatedFrame> {
    let grouping = group_rows_with(key_cols, n, pool);
    // A global aggregation over zero rows still produces one output row.
    let global_empty = group_exprs.is_empty() && grouping.num_groups() == 0;
    let num_groups = if global_empty {
        1
    } else {
        grouping.num_groups()
    };

    // Fold each aggregate over its typed argument column, one partial state
    // per morsel, merged in morsel order.  High-cardinality groupings fall
    // back to a single fold: replicating num_groups-sized accumulators per
    // morsel would cost more memory than the fold saves in time.  Both
    // conditions depend only on the data, never on the thread count, so a
    // given query always takes the same numeric path.
    let morsel_count = ThreadPool::morsels(n).len();
    let low_cardinality = num_groups.saturating_mul(morsel_count) <= 4 * n.max(1);
    let mut agg_columns: Vec<Column> = Vec::with_capacity(aggs.len());
    for (item, arg) in aggs.iter().zip(arg_cols.iter()) {
        let acc = if morsel_count > 1 && low_cardinality && GroupAcc::mergeable(&item.func) {
            let partials = pool.run_morsels(n, |range| {
                let mut partial = GroupAcc::new(&item.func, arg.as_ref(), num_groups);
                partial.update_range(arg.as_ref(), &grouping.gids, range);
                partial
            });
            partials
                .into_iter()
                .reduce(|mut merged, partial| {
                    merged.merge(partial);
                    merged
                })
                .unwrap_or_else(|| GroupAcc::new(&item.func, arg.as_ref(), num_groups))
        } else {
            let mut acc = GroupAcc::new(&item.func, arg.as_ref(), num_groups);
            acc.update_range(arg.as_ref(), &grouping.gids, 0..n);
            acc
        };
        agg_columns.push(acc.finish(&item.func));
    }

    // Build the output schema and columns.
    let mut fields: Vec<Field> = Vec::new();
    let mut replacements: Vec<(Expr, Expr)> = Vec::new();
    for (i, g) in group_exprs.iter().enumerate() {
        let (field, reference) = match g {
            Expr::Column { table, name } => (
                Field {
                    qualifier: table.as_ref().map(|t| t.to_ascii_lowercase()),
                    name: name.to_ascii_lowercase(),
                    data_type: infer_type(g, input_schema),
                },
                Expr::Column {
                    table: table.clone(),
                    name: name.clone(),
                },
            ),
            other => {
                let name = format!("__gk{i}");
                (
                    Field::new(&name, infer_type(other, input_schema)),
                    Expr::col(name.clone()),
                )
            }
        };
        fields.push(field);
        replacements.push((g.clone(), reference));
    }
    for item in aggs {
        let input_type = item
            .call
            .args
            .first()
            .map(|a| infer_type(a, input_schema))
            .unwrap_or(DataType::Int);
        fields.push(Field::new(
            &item.output_name,
            item.func.output_type(input_type),
        ));
        replacements.push((
            Expr::Function(item.call.clone()),
            Expr::col(item.output_name.clone()),
        ));
    }

    // Group-key columns are a typed gather of one representative row per group.
    let mut columns: Vec<Column> = key_cols
        .iter()
        .map(|c| c.take(&grouping.representatives))
        .collect();
    columns.extend(agg_columns);

    Ok(AggregatedFrame {
        table: Table::new(Schema::new(fields), columns)?,
        replacements,
    })
}

/// Replaces, top-down, any sub-expression structurally equal to a replacement
/// key with the corresponding reference expression.
pub fn replace_exprs(expr: &Expr, replacements: &[(Expr, Expr)]) -> Expr {
    for (from, to) in replacements {
        if expr == from {
            return to.clone();
        }
    }
    // No match at this node: rebuild children.
    use verdict_sql::ast::Expr as E;
    match expr {
        E::BinaryOp { left, op, right } => E::BinaryOp {
            left: Box::new(replace_exprs(left, replacements)),
            op: *op,
            right: Box::new(replace_exprs(right, replacements)),
        },
        E::UnaryOp { op, expr } => E::UnaryOp {
            op: *op,
            expr: Box::new(replace_exprs(expr, replacements)),
        },
        E::Function(f) => {
            let mut f = f.clone();
            f.args = f
                .args
                .iter()
                .map(|a| replace_exprs(a, replacements))
                .collect();
            if let Some(w) = &mut f.over {
                w.partition_by = w
                    .partition_by
                    .iter()
                    .map(|p| replace_exprs(p, replacements))
                    .collect();
                for o in &mut w.order_by {
                    o.expr = replace_exprs(&o.expr, replacements);
                }
            }
            E::Function(f)
        }
        E::Case {
            operand,
            when_then,
            else_expr,
        } => E::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(replace_exprs(o, replacements))),
            when_then: when_then
                .iter()
                .map(|(w, t)| {
                    (
                        replace_exprs(w, replacements),
                        replace_exprs(t, replacements),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(replace_exprs(e, replacements))),
        },
        E::IsNull { expr, negated } => E::IsNull {
            expr: Box::new(replace_exprs(expr, replacements)),
            negated: *negated,
        },
        E::InList {
            expr,
            list,
            negated,
        } => E::InList {
            expr: Box::new(replace_exprs(expr, replacements)),
            list: list
                .iter()
                .map(|e| replace_exprs(e, replacements))
                .collect(),
            negated: *negated,
        },
        E::Between {
            expr,
            low,
            high,
            negated,
        } => E::Between {
            expr: Box::new(replace_exprs(expr, replacements)),
            low: Box::new(replace_exprs(low, replacements)),
            high: Box::new(replace_exprs(high, replacements)),
            negated: *negated,
        },
        E::Like {
            expr,
            pattern,
            negated,
        } => E::Like {
            expr: Box::new(replace_exprs(expr, replacements)),
            pattern: Box::new(replace_exprs(pattern, replacements)),
            negated: *negated,
        },
        E::Cast { expr, data_type } => E::Cast {
            expr: Box::new(replace_exprs(expr, replacements)),
            data_type: *data_type,
        },
        E::Nested(e) => E::Nested(Box::new(replace_exprs(e, replacements))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::seeded_uniform;
    use crate::table::TableBuilder;
    use verdict_sql::parse_expression;

    fn input() -> Table {
        TableBuilder::new()
            .str_column(
                "city",
                vec!["a", "a", "b", "b", "b"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
            )
            .float_column("price", vec![10.0, 20.0, 5.0, 15.0, 10.0])
            .int_column("qty", vec![1, 2, 3, 4, 5])
            .build()
            .unwrap()
    }

    fn run_agg(group: &[&str], aggs: &[&str]) -> Table {
        run_agg_on(input(), group, aggs)
    }

    fn run_agg_on(t: Table, group: &[&str], aggs: &[&str]) -> Table {
        let group_exprs: Vec<Expr> = group.iter().map(|g| parse_expression(g).unwrap()).collect();
        let agg_exprs: Vec<Expr> = aggs.iter().map(|a| parse_expression(a).unwrap()).collect();
        let refs: Vec<&Expr> = agg_exprs.iter().collect();
        let items = collect_aggregate_calls(&refs).unwrap();
        let mut rng = seeded_uniform(1);
        execute_aggregation(&t, &group_exprs, &items, &mut rng)
            .unwrap()
            .table
    }

    #[test]
    fn grouped_sum_and_count() {
        let out = run_agg(&["city"], &["count(*)", "sum(price)"]);
        assert_eq!(out.num_rows(), 2);
        let city_idx = out.schema.index_of("city").unwrap();
        let cnt_idx = out.schema.index_of("__agg0").unwrap();
        let sum_idx = out.schema.index_of("__agg1").unwrap();
        for r in 0..2 {
            match out.value_at(r, city_idx) {
                Value::Str(s) if s == "a" => {
                    assert_eq!(out.value_at(r, cnt_idx), Value::Int(2));
                    assert_eq!(out.value_at(r, sum_idx), Value::Float(30.0));
                }
                Value::Str(s) if s == "b" => {
                    assert_eq!(out.value_at(r, cnt_idx), Value::Int(3));
                    assert_eq!(out.value_at(r, sum_idx), Value::Float(30.0));
                }
                other => panic!("unexpected group {other:?}"),
            }
        }
    }

    #[test]
    fn global_aggregation_produces_one_row() {
        let out = run_agg(
            &[],
            &["avg(price)", "min(qty)", "max(qty)", "stddev(price)"],
        );
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value_at(0, 0), Value::Float(12.0));
        assert_eq!(out.value_at(0, 1), Value::Int(1));
        assert_eq!(out.value_at(0, 2), Value::Int(5));
        let sd = out.value_at(0, 3).as_f64().unwrap();
        assert!((sd - 5.700877).abs() < 1e-4);
    }

    #[test]
    fn global_aggregation_over_zero_rows_still_yields_a_row() {
        let empty = TableBuilder::new().int_column("x", vec![]).build().unwrap();
        let out = run_agg_on(empty, &[], &["count(*)", "sum(x)", "min(x)"]);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value_at(0, 0), Value::Int(0));
        assert!(out.value_at(0, 1).is_null());
        assert!(out.value_at(0, 2).is_null());
    }

    #[test]
    fn aggregates_skip_nulls() {
        let t = TableBuilder::new()
            .opt_float_column("v", vec![Some(1.0), None, Some(3.0), None])
            .build()
            .unwrap();
        let out = run_agg_on(
            t,
            &[],
            &["count(v)", "sum(v)", "avg(v)", "min(v)", "max(v)"],
        );
        assert_eq!(out.value_at(0, 0), Value::Int(2));
        assert_eq!(out.value_at(0, 1), Value::Float(4.0));
        assert_eq!(out.value_at(0, 2), Value::Float(2.0));
        assert_eq!(out.value_at(0, 3), Value::Float(1.0));
        assert_eq!(out.value_at(0, 4), Value::Float(3.0));
    }

    #[test]
    fn count_distinct_and_median() {
        let out = run_agg(&[], &["count(distinct city)", "median(price)"]);
        assert_eq!(out.value_at(0, 0), Value::Int(2));
        assert_eq!(out.value_at(0, 1), Value::Float(10.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = quantile_of(vec![1.0, 2.0, 3.0, 4.0], 0.5);
        assert_eq!(v, Value::Float(2.5));
        let v = quantile_of(vec![1.0, 2.0, 3.0, 4.0, 5.0], 0.25);
        assert_eq!(v, Value::Float(2.0));
    }

    #[test]
    fn replacement_rewrites_aggregates_to_column_refs() {
        let proj = parse_expression("sum(price) / count(*)").unwrap();
        let refs = [&proj];
        let items = collect_aggregate_calls(&refs).unwrap();
        assert_eq!(items.len(), 2);
        let replacements: Vec<(Expr, Expr)> = items
            .iter()
            .map(|i| {
                (
                    Expr::Function(i.call.clone()),
                    Expr::col(i.output_name.clone()),
                )
            })
            .collect();
        let replaced = replace_exprs(&proj, &replacements);
        let printed = print_expr(&replaced, &GenericDialect);
        assert_eq!(printed, "__agg0 / __agg1");
    }

    #[test]
    fn approximate_count_distinct_close_to_exact() {
        let n = 20_000;
        let t = TableBuilder::new()
            .int_column("k", (0..n).map(|i| i % 5000).collect())
            .build()
            .unwrap();
        let e = parse_expression("ndv(k)").unwrap();
        let items = collect_aggregate_calls(&[&e]).unwrap();
        let mut rng = seeded_uniform(1);
        let out = execute_aggregation(&t, &[], &items, &mut rng)
            .unwrap()
            .table;
        let est = out.value_at(0, 0).as_i64().unwrap() as f64;
        assert!((est - 5000.0).abs() / 5000.0 < 0.05);
    }

    #[test]
    fn integer_sum_stays_integer_and_float_sum_stays_float() {
        let out = run_agg(&[], &["sum(qty)", "sum(price)"]);
        assert_eq!(out.value_at(0, 0), Value::Int(15));
        assert_eq!(out.value_at(0, 1), Value::Float(60.0));
    }

    #[test]
    fn parallel_aggregation_is_bit_identical_across_thread_counts() {
        use crate::parallel::{ThreadPool, MORSEL_ROWS};
        // Multi-morsel nullable input exercising every mergeable accumulator.
        let n = MORSEL_ROWS * 2 + 999;
        let t = TableBuilder::new()
            .int_column("k", (0..n as i64).map(|i| i % 7).collect())
            .opt_float_column(
                "v",
                (0..n)
                    .map(|i| (i % 11 != 0).then(|| (i as f64 * 0.37).sin() * 100.0))
                    .collect(),
            )
            .build()
            .unwrap();
        let run_with = |threads: usize| {
            let group = parse_expression("k").unwrap();
            let agg_exprs: Vec<Expr> = [
                "count(*)",
                "count(v)",
                "sum(v)",
                "avg(v)",
                "min(v)",
                "max(v)",
                "stddev(v)",
                "median(v)",
            ]
            .iter()
            .map(|a| parse_expression(a).unwrap())
            .collect();
            let refs: Vec<&Expr> = agg_exprs.iter().collect();
            let items = collect_aggregate_calls(&refs).unwrap();
            let mut rng = seeded_uniform(1);
            let pool = ThreadPool::new(threads);
            execute_aggregation_with(&t, std::slice::from_ref(&group), &items, &mut rng, &pool)
                .unwrap()
                .table
        };
        let serial = run_with(1);
        let parallel = run_with(4);
        assert_eq!(serial.num_rows(), parallel.num_rows());
        for r in 0..serial.num_rows() {
            for c in 0..serial.num_columns() {
                let (a, b) = (serial.value_at(r, c), parallel.value_at(r, c));
                match (&a, &b) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "({r},{c}): {x} vs {y}")
                    }
                    _ => assert_eq!(a, b, "({r},{c})"),
                }
            }
        }
    }
}
