//! Hash aggregation.
//!
//! The executor collects the unique aggregate calls appearing in a query,
//! evaluates their argument expressions over the input frame, and folds each
//! group through an [`AggState`] accumulator.  The resulting "aggregated
//! frame" exposes the group keys under their original column names (so later
//! projection expressions still resolve) and each aggregate under a synthetic
//! `__aggN` column; [`replace_exprs`] swaps the original aggregate calls for
//! references to those columns.

use crate::approx::HyperLogLog;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval_expr, infer_type, EvalContext};
use crate::schema::{Field, Schema};
use crate::table::{Column, Table};
use crate::value::{DataType, KeyValue, Value};
use std::collections::HashMap;
use std::collections::HashSet;
use verdict_sql::ast::{Expr, FunctionCall, Literal};
use verdict_sql::dialect::GenericDialect;
use verdict_sql::printer::print_expr;

/// The aggregate functions supported by the engine.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    CountStar,
    Count,
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample variance.
    Variance,
    /// Sample standard deviation.
    Stddev,
    /// Exact median over the group's values.
    Median,
    /// Exact quantile at the given fraction (0..1).
    Quantile(f64),
    /// HyperLogLog-based approximate distinct count (full scan, Table 2 baseline).
    ApproxCountDistinct,
    /// Approximate median (full collect; models Redshift `approx_median`).
    ApproxMedian,
}

impl AggFunc {
    /// Maps a parsed function call to an aggregate kind, when it is an aggregate.
    pub fn from_call(call: &FunctionCall) -> EngineResult<Option<AggFunc>> {
        if !verdict_sql::ast::is_aggregate_function(&call.name) {
            return Ok(None);
        }
        let func = match call.name.as_str() {
            "count" => {
                if call.distinct {
                    AggFunc::CountDistinct
                } else if call.args.len() == 1 && matches!(call.args[0], Expr::Wildcard) {
                    AggFunc::CountStar
                } else {
                    AggFunc::Count
                }
            }
            "sum" => AggFunc::Sum,
            "avg" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "variance" | "var_samp" => AggFunc::Variance,
            "stddev" | "stddev_samp" => AggFunc::Stddev,
            "median" => AggFunc::Median,
            "quantile" | "percentile" => {
                let q = call
                    .args
                    .get(1)
                    .and_then(|e| match e {
                        Expr::Literal(Literal::Float(f)) => Some(*f),
                        Expr::Literal(Literal::Integer(i)) => Some(*i as f64),
                        _ => None,
                    })
                    .ok_or_else(|| {
                        EngineError::Execution(
                            "quantile/percentile requires a literal fraction as second argument"
                                .into(),
                        )
                    })?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(EngineError::Execution(format!(
                        "quantile fraction {q} out of [0, 1]"
                    )));
                }
                AggFunc::Quantile(q)
            }
            "approx_count_distinct" | "ndv" => AggFunc::ApproxCountDistinct,
            "approx_median" => AggFunc::ApproxMedian,
            other => return Err(EngineError::Unsupported(format!("aggregate {other}"))),
        };
        Ok(Some(func))
    }

    /// Result type of the aggregate.
    pub fn output_type(&self, input: DataType) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::CountDistinct | AggFunc::ApproxCountDistinct => {
                DataType::Int
            }
            AggFunc::Min | AggFunc::Max => input,
            AggFunc::Sum => {
                if input == DataType::Int {
                    DataType::Int
                } else {
                    DataType::Float
                }
            }
            _ => DataType::Float,
        }
    }
}

/// Accumulator state for one (group, aggregate) pair.
#[derive(Debug, Clone)]
enum AggState {
    Count(i64),
    Distinct(HashSet<KeyValue>),
    Sum { sum: f64, seen: bool, integral: bool },
    Avg { sum: f64, count: i64 },
    MinMax { best: Option<Value>, is_min: bool },
    Moments { n: f64, mean: f64, m2: f64 },
    Values(Vec<f64>),
    Hll(HyperLogLog),
}

impl AggState {
    fn new(func: &AggFunc) -> AggState {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggState::Count(0),
            AggFunc::CountDistinct => AggState::Distinct(HashSet::new()),
            AggFunc::Sum => AggState::Sum { sum: 0.0, seen: false, integral: true },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => AggState::MinMax { best: None, is_min: true },
            AggFunc::Max => AggState::MinMax { best: None, is_min: false },
            AggFunc::Variance | AggFunc::Stddev => AggState::Moments { n: 0.0, mean: 0.0, m2: 0.0 },
            AggFunc::Median | AggFunc::Quantile(_) | AggFunc::ApproxMedian => AggState::Values(Vec::new()),
            AggFunc::ApproxCountDistinct => AggState::Hll(HyperLogLog::new()),
        }
    }

    fn update(&mut self, value: &Value) {
        match self {
            AggState::Count(c) => {
                if !value.is_null() {
                    *c += 1;
                }
            }
            AggState::Distinct(set) => {
                if !value.is_null() {
                    set.insert(KeyValue::from_value(value));
                }
            }
            AggState::Sum { sum, seen, integral } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *seen = true;
                    if matches!(value, Value::Float(_)) {
                        *integral = false;
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(x) = value.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            AggState::MinMax { best, is_min } => {
                if value.is_null() {
                    return;
                }
                let replace = match best {
                    None => true,
                    Some(b) => match value.sql_cmp(b) {
                        Some(std::cmp::Ordering::Less) => *is_min,
                        Some(std::cmp::Ordering::Greater) => !*is_min,
                        _ => false,
                    },
                };
                if replace {
                    *best = Some(value.clone());
                }
            }
            AggState::Moments { n, mean, m2 } => {
                if let Some(x) = value.as_f64() {
                    // Welford's online algorithm
                    *n += 1.0;
                    let delta = x - *mean;
                    *mean += delta / *n;
                    *m2 += delta * (x - *mean);
                }
            }
            AggState::Values(v) => {
                if let Some(x) = value.as_f64() {
                    v.push(x);
                }
            }
            AggState::Hll(h) => h.add(value),
        }
    }

    /// Increments a `count(*)` accumulator (no argument to inspect).
    fn update_count_star(&mut self) {
        if let AggState::Count(c) = self {
            *c += 1;
        }
    }

    fn finish(self, func: &AggFunc) -> Value {
        match (func, self) {
            (AggFunc::CountStar | AggFunc::Count, AggState::Count(c)) => Value::Int(c),
            (AggFunc::CountDistinct, AggState::Distinct(set)) => Value::Int(set.len() as i64),
            (AggFunc::Sum, AggState::Sum { sum, seen, integral }) => {
                if !seen {
                    Value::Null
                } else if integral {
                    Value::Int(sum as i64)
                } else {
                    Value::Float(sum)
                }
            }
            (AggFunc::Avg, AggState::Avg { sum, count }) => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            (AggFunc::Min | AggFunc::Max, AggState::MinMax { best, .. }) => {
                best.unwrap_or(Value::Null)
            }
            (AggFunc::Variance, AggState::Moments { n, m2, .. }) => {
                if n < 2.0 {
                    Value::Null
                } else {
                    Value::Float(m2 / (n - 1.0))
                }
            }
            (AggFunc::Stddev, AggState::Moments { n, m2, .. }) => {
                if n < 2.0 {
                    Value::Null
                } else {
                    Value::Float((m2 / (n - 1.0)).sqrt())
                }
            }
            (AggFunc::Median | AggFunc::ApproxMedian, AggState::Values(v)) => quantile_of(v, 0.5),
            (AggFunc::Quantile(q), AggState::Values(v)) => quantile_of(v, *q),
            (AggFunc::ApproxCountDistinct, AggState::Hll(h)) => Value::Int(h.estimate().round() as i64),
            _ => Value::Null,
        }
    }
}

fn quantile_of(mut values: Vec<f64>, q: f64) -> Value {
    if values.is_empty() {
        return Value::Null;
    }
    values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q * (values.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    let frac = pos - lower as f64;
    let v = values[lower] * (1.0 - frac) + values[upper] * frac;
    Value::Float(v)
}

/// One aggregate call to compute, tracked together with the printed form of
/// the original expression so replacement can find it again.
#[derive(Debug, Clone)]
pub struct AggregateItem {
    pub call: FunctionCall,
    pub func: AggFunc,
    pub output_name: String,
}

/// Collects the unique aggregate calls (outside window specifications)
/// appearing in the given expressions, in first-appearance order.
pub fn collect_aggregate_calls(exprs: &[&Expr]) -> EngineResult<Vec<AggregateItem>> {
    let mut seen: HashMap<String, usize> = HashMap::new();
    let mut items: Vec<AggregateItem> = Vec::new();
    for expr in exprs {
        let mut err: Option<EngineError> = None;
        verdict_sql::visitor::walk_expr(expr, &mut |e| {
            if err.is_some() {
                return;
            }
            if let Some(call) = e.as_aggregate() {
                let key = print_expr(e, &GenericDialect);
                if !seen.contains_key(&key) {
                    match AggFunc::from_call(call) {
                        Ok(Some(func)) => {
                            let idx = items.len();
                            seen.insert(key, idx);
                            items.push(AggregateItem {
                                call: call.clone(),
                                func,
                                output_name: format!("__agg{idx}"),
                            });
                        }
                        Ok(None) => {}
                        Err(e) => err = Some(e),
                    }
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(items)
}

/// Output of the aggregation stage.
pub struct AggregatedFrame {
    /// The aggregated table: group-key columns followed by aggregate columns.
    pub table: Table,
    /// Replacement pairs: original expression -> column reference in `table`.
    pub replacements: Vec<(Expr, Expr)>,
}

/// Executes hash aggregation of `input` grouped by `group_exprs`, computing `aggs`.
pub fn execute_aggregation(
    input: &Table,
    group_exprs: &[Expr],
    aggs: &[AggregateItem],
    rng: &mut dyn FnMut() -> f64,
) -> EngineResult<AggregatedFrame> {
    // Evaluate group keys and aggregate arguments over the input frame.
    let mut key_cols: Vec<Column> = Vec::with_capacity(group_exprs.len());
    for g in group_exprs {
        let mut ctx = EvalContext { table: input, rng };
        key_cols.push(eval_expr(g, &mut ctx)?);
    }
    let mut arg_cols: Vec<Option<Column>> = Vec::with_capacity(aggs.len());
    for item in aggs {
        if matches!(item.func, AggFunc::CountStar) {
            arg_cols.push(None);
        } else {
            let arg = item.call.args.first().ok_or_else(|| {
                EngineError::Execution(format!("aggregate {} requires an argument", item.call.name))
            })?;
            let mut ctx = EvalContext { table: input, rng };
            arg_cols.push(Some(eval_expr(arg, &mut ctx)?));
        }
    }

    let n = input.num_rows();
    let mut groups: HashMap<Vec<KeyValue>, usize> = HashMap::new();
    let mut group_keys: Vec<Vec<KeyValue>> = Vec::new();
    let mut states: Vec<Vec<AggState>> = Vec::new();

    for row in 0..n {
        let key: Vec<KeyValue> = key_cols.iter().map(|c| KeyValue::from_value(&c[row])).collect();
        let gid = match groups.get(&key) {
            Some(&g) => g,
            None => {
                let g = group_keys.len();
                groups.insert(key.clone(), g);
                group_keys.push(key);
                states.push(aggs.iter().map(|a| AggState::new(&a.func)).collect());
                g
            }
        };
        for i in 0..aggs.len() {
            match &arg_cols[i] {
                None => states[gid][i].update_count_star(),
                Some(col) => states[gid][i].update(&col[row]),
            }
        }
    }

    // A global aggregation over zero rows still produces one output row.
    if group_exprs.is_empty() && group_keys.is_empty() {
        group_keys.push(Vec::new());
        states.push(aggs.iter().map(|a| AggState::new(&a.func)).collect());
    }

    // Build the output schema and columns.
    let mut fields: Vec<Field> = Vec::new();
    let mut replacements: Vec<(Expr, Expr)> = Vec::new();
    for (i, g) in group_exprs.iter().enumerate() {
        let (field, reference) = match g {
            Expr::Column { table, name } => (
                Field {
                    qualifier: table.as_ref().map(|t| t.to_ascii_lowercase()),
                    name: name.to_ascii_lowercase(),
                    data_type: infer_type(g, &input.schema),
                },
                Expr::Column { table: table.clone(), name: name.clone() },
            ),
            other => {
                let name = format!("__gk{i}");
                (
                    Field::new(&name, infer_type(other, &input.schema)),
                    Expr::col(name.clone()),
                )
            }
        };
        fields.push(field);
        replacements.push((g.clone(), reference));
    }
    for (i, item) in aggs.iter().enumerate() {
        let input_type = item
            .call
            .args
            .first()
            .map(|a| infer_type(a, &input.schema))
            .unwrap_or(DataType::Int);
        fields.push(Field::new(&item.output_name, item.func.output_type(input_type)));
        replacements.push((Expr::Function(item.call.clone()), Expr::col(item.output_name.clone())));
        let _ = i;
    }

    let num_groups = group_keys.len();
    let mut columns: Vec<Column> = vec![Vec::with_capacity(num_groups); fields.len()];
    for (gid, key) in group_keys.iter().enumerate() {
        for (k, kv) in key.iter().enumerate() {
            columns[k].push(kv.to_value());
        }
        for (a, state) in states[gid].clone().into_iter().enumerate() {
            columns[group_exprs.len() + a].push(state.finish(&aggs[a].func));
        }
    }

    Ok(AggregatedFrame {
        table: Table::new(Schema::new(fields), columns)?,
        replacements,
    })
}

/// Replaces, top-down, any sub-expression structurally equal to a replacement
/// key with the corresponding reference expression.
pub fn replace_exprs(expr: &Expr, replacements: &[(Expr, Expr)]) -> Expr {
    for (from, to) in replacements {
        if expr == from {
            return to.clone();
        }
    }
    // No match at this node: rebuild children.
    use verdict_sql::ast::Expr as E;
    match expr {
        E::BinaryOp { left, op, right } => E::BinaryOp {
            left: Box::new(replace_exprs(left, replacements)),
            op: *op,
            right: Box::new(replace_exprs(right, replacements)),
        },
        E::UnaryOp { op, expr } => E::UnaryOp { op: *op, expr: Box::new(replace_exprs(expr, replacements)) },
        E::Function(f) => {
            let mut f = f.clone();
            f.args = f.args.iter().map(|a| replace_exprs(a, replacements)).collect();
            if let Some(w) = &mut f.over {
                w.partition_by = w.partition_by.iter().map(|p| replace_exprs(p, replacements)).collect();
                for o in &mut w.order_by {
                    o.expr = replace_exprs(&o.expr, replacements);
                }
            }
            E::Function(f)
        }
        E::Case { operand, when_then, else_expr } => E::Case {
            operand: operand.as_ref().map(|o| Box::new(replace_exprs(o, replacements))),
            when_then: when_then
                .iter()
                .map(|(w, t)| (replace_exprs(w, replacements), replace_exprs(t, replacements)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(replace_exprs(e, replacements))),
        },
        E::IsNull { expr, negated } => E::IsNull {
            expr: Box::new(replace_exprs(expr, replacements)),
            negated: *negated,
        },
        E::InList { expr, list, negated } => E::InList {
            expr: Box::new(replace_exprs(expr, replacements)),
            list: list.iter().map(|e| replace_exprs(e, replacements)).collect(),
            negated: *negated,
        },
        E::Between { expr, low, high, negated } => E::Between {
            expr: Box::new(replace_exprs(expr, replacements)),
            low: Box::new(replace_exprs(low, replacements)),
            high: Box::new(replace_exprs(high, replacements)),
            negated: *negated,
        },
        E::Like { expr, pattern, negated } => E::Like {
            expr: Box::new(replace_exprs(expr, replacements)),
            pattern: Box::new(replace_exprs(pattern, replacements)),
            negated: *negated,
        },
        E::Cast { expr, data_type } => E::Cast {
            expr: Box::new(replace_exprs(expr, replacements)),
            data_type: *data_type,
        },
        E::Nested(e) => E::Nested(Box::new(replace_exprs(e, replacements))),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::seeded_uniform;
    use crate::table::TableBuilder;
    use verdict_sql::parse_expression;

    fn input() -> Table {
        TableBuilder::new()
            .str_column(
                "city",
                vec!["a", "a", "b", "b", "b"].into_iter().map(String::from).collect(),
            )
            .float_column("price", vec![10.0, 20.0, 5.0, 15.0, 10.0])
            .int_column("qty", vec![1, 2, 3, 4, 5])
            .build()
            .unwrap()
    }

    fn run_agg(group: &[&str], aggs: &[&str]) -> Table {
        let t = input();
        let group_exprs: Vec<Expr> = group.iter().map(|g| parse_expression(g).unwrap()).collect();
        let agg_exprs: Vec<Expr> = aggs.iter().map(|a| parse_expression(a).unwrap()).collect();
        let refs: Vec<&Expr> = agg_exprs.iter().collect();
        let items = collect_aggregate_calls(&refs).unwrap();
        let mut rng = seeded_uniform(1);
        execute_aggregation(&t, &group_exprs, &items, &mut rng).unwrap().table
    }

    #[test]
    fn grouped_sum_and_count() {
        let out = run_agg(&["city"], &["count(*)", "sum(price)"]);
        assert_eq!(out.num_rows(), 2);
        let city_idx = out.schema.index_of("city").unwrap();
        let cnt_idx = out.schema.index_of("__agg0").unwrap();
        let sum_idx = out.schema.index_of("__agg1").unwrap();
        for r in 0..2 {
            match out.value(r, city_idx) {
                Value::Str(s) if s == "a" => {
                    assert_eq!(out.value(r, cnt_idx), &Value::Int(2));
                    assert_eq!(out.value(r, sum_idx), &Value::Float(30.0));
                }
                Value::Str(s) if s == "b" => {
                    assert_eq!(out.value(r, cnt_idx), &Value::Int(3));
                    assert_eq!(out.value(r, sum_idx), &Value::Float(30.0));
                }
                other => panic!("unexpected group {other:?}"),
            }
        }
    }

    #[test]
    fn global_aggregation_produces_one_row() {
        let out = run_agg(&[], &["avg(price)", "min(qty)", "max(qty)", "stddev(price)"]);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value(0, 0), &Value::Float(12.0));
        assert_eq!(out.value(0, 1), &Value::Int(1));
        assert_eq!(out.value(0, 2), &Value::Int(5));
        let sd = out.value(0, 3).as_f64().unwrap();
        assert!((sd - 5.700877).abs() < 1e-4);
    }

    #[test]
    fn count_distinct_and_median() {
        let out = run_agg(&[], &["count(distinct city)", "median(price)"]);
        assert_eq!(out.value(0, 0), &Value::Int(2));
        assert_eq!(out.value(0, 1), &Value::Float(10.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = quantile_of(vec![1.0, 2.0, 3.0, 4.0], 0.5);
        assert_eq!(v, Value::Float(2.5));
        let v = quantile_of(vec![1.0, 2.0, 3.0, 4.0, 5.0], 0.25);
        assert_eq!(v, Value::Float(2.0));
    }

    #[test]
    fn replacement_rewrites_aggregates_to_column_refs() {
        let proj = parse_expression("sum(price) / count(*)").unwrap();
        let refs = [&proj];
        let items = collect_aggregate_calls(&refs).unwrap();
        assert_eq!(items.len(), 2);
        let replacements: Vec<(Expr, Expr)> = items
            .iter()
            .map(|i| (Expr::Function(i.call.clone()), Expr::col(i.output_name.clone())))
            .collect();
        let replaced = replace_exprs(&proj, &replacements);
        let printed = print_expr(&replaced, &GenericDialect);
        assert_eq!(printed, "__agg0 / __agg1");
    }

    #[test]
    fn approximate_count_distinct_close_to_exact() {
        let n = 20_000;
        let t = TableBuilder::new()
            .int_column("k", (0..n).map(|i| i % 5000).collect())
            .build()
            .unwrap();
        let e = parse_expression("ndv(k)").unwrap();
        let items = collect_aggregate_calls(&[&e]).unwrap();
        let mut rng = seeded_uniform(1);
        let out = execute_aggregation(&t, &[], &items, &mut rng).unwrap().table;
        let est = out.value(0, 0).as_i64().unwrap() as f64;
        assert!((est - 5000.0).abs() / 5000.0 < 0.05);
    }
}
