//! FROM-clause evaluation: base-table scans, derived tables, and joins.
//!
//! Joins are executed as hash joins on the equi-join keys extracted from the
//! `ON` condition; residual (non-equi) predicates are applied as a filter on
//! the joined result.  This mirrors how the paper's underlying engines
//! evaluate the equi-joins that VerdictDB emits.
//!
//! Join keys are hashed directly from the typed columns
//! ([`crate::kernels::RowIndex`]) — no per-row `KeyValue` materialisation or
//! string cloning on the build/probe path — and the joined table is
//! assembled with typed column gathers.

use crate::column::Column;
use crate::error::EngineResult;
use crate::expr::{eval_expr, EvalContext};
use crate::kernels::{par_column_to_mask, par_hash_rows, RowIndex};
use crate::parallel::ThreadPool;
use crate::schema::Schema;
use crate::table::Table;
use verdict_sql::ast::{BinaryOp, Expr, JoinType};

/// Splits a predicate into its AND-ed conjuncts.
pub fn split_conjuncts(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::BinaryOp {
            left,
            op: BinaryOp::And,
            right,
        } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        Expr::Nested(e) => split_conjuncts(e),
        other => vec![other.clone()],
    }
}

/// Recombines conjuncts into a single AND expression.
pub fn combine_conjuncts(conjuncts: Vec<Expr>) -> Option<Expr> {
    conjuncts
        .into_iter()
        .reduce(|a, b| Expr::binary(a, BinaryOp::And, b))
}

fn resolves_in(expr: &Expr, schema: &Schema) -> bool {
    let mut ok = true;
    verdict_sql::visitor::walk_expr(expr, &mut |e| {
        if let Expr::Column { table, name } = e {
            if schema.resolve(table.as_deref(), name).is_err() {
                ok = false;
            }
        }
    });
    ok
}

/// An extracted equi-join key pair: `left_expr = right_expr` with each side
/// resolvable against the corresponding input.
#[derive(Debug, Clone)]
pub struct EquiPair {
    /// Key expression resolvable against the left input.
    pub left: Expr,
    /// Key expression resolvable against the right input.
    pub right: Expr,
}

/// Splits a join constraint into equi pairs and residual predicates.
pub fn extract_equi_pairs(
    constraint: &Expr,
    left_schema: &Schema,
    right_schema: &Schema,
) -> (Vec<EquiPair>, Vec<Expr>) {
    let mut pairs = Vec::new();
    let mut residual = Vec::new();
    for conj in split_conjuncts(constraint) {
        if let Expr::BinaryOp {
            left,
            op: BinaryOp::Eq,
            right,
        } = &conj
        {
            if resolves_in(left, left_schema) && resolves_in(right, right_schema) {
                pairs.push(EquiPair {
                    left: (**left).clone(),
                    right: (**right).clone(),
                });
                continue;
            }
            if resolves_in(right, left_schema) && resolves_in(left, right_schema) {
                pairs.push(EquiPair {
                    left: (**right).clone(),
                    right: (**left).clone(),
                });
                continue;
            }
        }
        residual.push(conj);
    }
    (pairs, residual)
}

/// Performs a hash join between two frames.
///
/// `join_type` may be Inner, Left, or Right; Right joins are executed as the
/// mirrored Left join.  Cross joins take the nested-loop path with no keys.
/// The build side is indexed and the output gathered morsel-parallel over
/// `pool`; probing stays sequential so match order (and thus output order)
/// is identical at any thread count.
pub fn hash_join(
    left: &Table,
    right: &Table,
    pairs: &[EquiPair],
    residual: &[Expr],
    join_type: JoinType,
    rng: &mut dyn FnMut() -> f64,
    pool: &ThreadPool,
) -> EngineResult<Table> {
    if join_type == JoinType::Right {
        let mirrored: Vec<EquiPair> = pairs
            .iter()
            .map(|p| EquiPair {
                left: p.right.clone(),
                right: p.left.clone(),
            })
            .collect();
        let joined = hash_join(right, left, &mirrored, &[], JoinType::Left, rng, pool)?;
        // reorder columns back to (left, right) order
        let left_width = left.num_columns();
        let right_width = right.num_columns();
        let mut fields = Vec::with_capacity(left_width + right_width);
        let mut columns = Vec::with_capacity(left_width + right_width);
        for i in 0..left_width {
            fields.push(joined.schema.fields[right_width + i].clone());
            columns.push(joined.columns[right_width + i].clone());
        }
        for i in 0..right_width {
            fields.push(joined.schema.fields[i].clone());
            columns.push(joined.columns[i].clone());
        }
        let reordered = Table::new(Schema::new(fields), columns)?;
        return apply_residual(reordered, residual, rng, pool);
    }

    let out_schema = left.schema.join(&right.schema);
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = if pairs.is_empty() {
        // cross join / no equi keys: nested loop
        let mut li = Vec::new();
        let mut ri = Vec::new();
        for l in 0..left.num_rows() {
            for r in 0..right.num_rows() {
                li.push(l);
                ri.push(r);
            }
        }
        (li, ri)
    } else {
        // evaluate typed key columns on both sides
        let mut left_keys: Vec<Column> = Vec::with_capacity(pairs.len());
        let mut right_keys: Vec<Column> = Vec::with_capacity(pairs.len());
        for p in pairs {
            let mut lctx = EvalContext { table: left, rng };
            left_keys.push(eval_expr(&p.left, &mut lctx)?);
            let mut rctx = EvalContext { table: right, rng };
            right_keys.push(eval_expr(&p.right, &mut rctx)?);
        }
        // build on the right (morsel-parallel), probe with the left
        let index = RowIndex::build_with(&right_keys, right.num_rows(), pool);
        let probe_hashes = par_hash_rows(&left_keys, left.num_rows(), pool);
        let mut li = Vec::new();
        let mut ri = Vec::new();
        for l in 0..left.num_rows() {
            let mut matched = false;
            index.probe_each(&left_keys, probe_hashes[l], l, |r| {
                li.push(l);
                ri.push(r);
                matched = true;
            });
            if !matched && join_type == JoinType::Left {
                li.push(l);
                ri.push(usize::MAX); // marker for null row
            }
        }
        (li, ri)
    };

    // assemble the joined frame with per-column typed gathers, fanned out
    // over the pool (columns are independent, so order is preserved); small
    // outputs stay serial — thread spawn would dwarf the gather itself
    let left_width = left.num_columns();
    let gather = |i: usize| {
        if i < left_width {
            left.columns[i].take(&left_idx)
        } else {
            right.columns[i - left_width].take_opt(&right_idx)
        }
    };
    let total = left_width + right.num_columns();
    let columns: Vec<Column> =
        if pool.parallelism() <= 1 || left_idx.len() <= crate::parallel::MORSEL_ROWS {
            (0..total).map(gather).collect()
        } else {
            pool.run(total, gather)
        };
    let joined = Table::new(out_schema, columns)?;
    apply_residual(joined, residual, rng, pool)
}

fn apply_residual(
    table: Table,
    residual: &[Expr],
    rng: &mut dyn FnMut() -> f64,
    pool: &ThreadPool,
) -> EngineResult<Table> {
    if residual.is_empty() {
        return Ok(table);
    }
    let pred = combine_conjuncts(residual.to_vec()).expect("nonempty residual");
    let mask = {
        let mut ctx = EvalContext { table: &table, rng };
        par_column_to_mask(&eval_expr(&pred, &mut ctx)?, pool)
    };
    Ok(table.filter_with(&mask, pool))
}

/// Cartesian product of two frames (used for comma-separated FROM items).
pub fn cross_join(
    left: &Table,
    right: &Table,
    rng: &mut dyn FnMut() -> f64,
    pool: &ThreadPool,
) -> EngineResult<Table> {
    hash_join(left, right, &[], &[], JoinType::Cross, rng, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::seeded_uniform;
    use crate::table::TableBuilder;
    use verdict_sql::parse_expression;

    fn orders() -> Table {
        let t = TableBuilder::new()
            .int_column("order_id", vec![1, 2, 3])
            .str_column(
                "city",
                vec!["a", "b", "a"].into_iter().map(String::from).collect(),
            )
            .build()
            .unwrap();
        Table {
            schema: t.schema.with_qualifier("o"),
            columns: t.columns,
        }
    }

    fn items() -> Table {
        let t = TableBuilder::new()
            .int_column("order_id", vec![1, 1, 2, 4])
            .float_column("price", vec![10.0, 20.0, 30.0, 40.0])
            .build()
            .unwrap();
        Table {
            schema: t.schema.with_qualifier("i"),
            columns: t.columns,
        }
    }

    #[test]
    fn inner_hash_join_matches_expected_pairs() {
        let l = orders();
        let r = items();
        let constraint = parse_expression("o.order_id = i.order_id").unwrap();
        let (pairs, residual) = extract_equi_pairs(&constraint, &l.schema, &r.schema);
        assert_eq!(pairs.len(), 1);
        assert!(residual.is_empty());
        let mut rng = seeded_uniform(1);
        let out = hash_join(
            &l,
            &r,
            &pairs,
            &residual,
            JoinType::Inner,
            &mut rng,
            &ThreadPool::serial(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3); // order 1 matches twice, order 2 once
    }

    #[test]
    fn left_join_keeps_unmatched_rows_with_nulls() {
        let l = orders();
        let r = items();
        let constraint = parse_expression("o.order_id = i.order_id").unwrap();
        let (pairs, residual) = extract_equi_pairs(&constraint, &l.schema, &r.schema);
        let mut rng = seeded_uniform(1);
        let out = hash_join(
            &l,
            &r,
            &pairs,
            &residual,
            JoinType::Left,
            &mut rng,
            &ThreadPool::serial(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 4); // order 3 kept with nulls
        let price_idx = out.schema.resolve(Some("i"), "price").unwrap();
        assert!(out.columns[price_idx].null_count() > 0);
    }

    #[test]
    fn right_join_mirrors_left_join() {
        let l = orders();
        let r = items();
        let constraint = parse_expression("o.order_id = i.order_id").unwrap();
        let (pairs, residual) = extract_equi_pairs(&constraint, &l.schema, &r.schema);
        let mut rng = seeded_uniform(1);
        let out = hash_join(
            &l,
            &r,
            &pairs,
            &residual,
            JoinType::Right,
            &mut rng,
            &ThreadPool::serial(),
        )
        .unwrap();
        // orders 1 (×2), 2, and the unmatched item with order_id 4
        assert_eq!(out.num_rows(), 4);
        let city_idx = out.schema.resolve(Some("o"), "city").unwrap();
        assert!(out.columns[city_idx].null_count() > 0);
    }

    #[test]
    fn join_keys_match_across_numeric_types() {
        let l = orders();
        let t = TableBuilder::new()
            .float_column("order_id", vec![1.0, 3.0])
            .build()
            .unwrap();
        let r = Table {
            schema: t.schema.with_qualifier("f"),
            columns: t.columns,
        };
        let constraint = parse_expression("o.order_id = f.order_id").unwrap();
        let (pairs, residual) = extract_equi_pairs(&constraint, &l.schema, &r.schema);
        let mut rng = seeded_uniform(1);
        let out = hash_join(
            &l,
            &r,
            &pairs,
            &residual,
            JoinType::Inner,
            &mut rng,
            &ThreadPool::serial(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2, "Int 1/3 must join with Float 1.0/3.0");
    }

    #[test]
    fn null_keys_never_match() {
        let lt = TableBuilder::new()
            .opt_int_column("k", vec![Some(1), None])
            .build()
            .unwrap();
        let l = Table {
            schema: lt.schema.with_qualifier("l"),
            columns: lt.columns,
        };
        let rt = TableBuilder::new()
            .opt_int_column("k", vec![Some(1), None])
            .build()
            .unwrap();
        let r = Table {
            schema: rt.schema.with_qualifier("r"),
            columns: rt.columns,
        };
        let constraint = parse_expression("l.k = r.k").unwrap();
        let (pairs, residual) = extract_equi_pairs(&constraint, &l.schema, &r.schema);
        let mut rng = seeded_uniform(1);
        let out = hash_join(
            &l,
            &r,
            &pairs,
            &residual,
            JoinType::Inner,
            &mut rng,
            &ThreadPool::serial(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1, "NULL = NULL must not match in a join");
    }

    #[test]
    fn residual_predicates_filter_joined_rows() {
        let l = orders();
        let r = items();
        let constraint = parse_expression("o.order_id = i.order_id AND i.price > 15").unwrap();
        let (pairs, residual) = extract_equi_pairs(&constraint, &l.schema, &r.schema);
        assert_eq!(pairs.len(), 1);
        assert_eq!(residual.len(), 1);
        let mut rng = seeded_uniform(1);
        let out = hash_join(
            &l,
            &r,
            &pairs,
            &residual,
            JoinType::Inner,
            &mut rng,
            &ThreadPool::serial(),
        )
        .unwrap();
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn cross_join_produces_cartesian_product() {
        let l = orders();
        let r = items();
        let mut rng = seeded_uniform(1);
        let out = cross_join(&l, &r, &mut rng, &ThreadPool::serial()).unwrap();
        assert_eq!(out.num_rows(), 12);
    }

    #[test]
    fn conjunct_splitting_roundtrips() {
        let e = parse_expression("a = 1 AND b = 2 AND c > 3").unwrap();
        let conjuncts = split_conjuncts(&e);
        assert_eq!(conjuncts.len(), 3);
        let combined = combine_conjuncts(conjuncts).unwrap();
        let again = split_conjuncts(&combined);
        assert_eq!(again.len(), 3);
    }
}
