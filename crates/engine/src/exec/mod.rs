//! The query executor: turns a parsed [`Statement`] into a result [`Table`].
//!
//! Execution pipeline for a `SELECT`:
//!
//! 1. resolve uncorrelated scalar / `IN` subqueries to literals,
//! 2. build the input frame from the FROM clause (scans, derived tables, hash joins),
//! 3. apply the WHERE filter,
//! 4. hash-aggregate when the query groups or aggregates,
//! 5. evaluate window functions over the (aggregated) frame,
//! 6. apply HAVING, project, de-duplicate for DISTINCT, sort, and limit.

pub mod aggregate;
pub mod from_clause;
pub mod progressive;
pub mod window;

use crate::catalog::Catalog;
use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval_expr, infer_type, EvalContext};
use crate::kernels::{group_rows_with, par_column_to_mask, par_filter_mask};
use crate::parallel::ThreadPool;
use crate::schema::{Field, Schema};
use crate::table::Table;
use crate::value::{DataType, Value};
use aggregate::{collect_aggregate_calls, execute_aggregation_with, replace_exprs};
use from_clause::{cross_join, extract_equi_pairs, hash_join};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use verdict_sql::ast::*;
use window::{collect_window_calls, eval_window};

/// Executes statements against a [`Catalog`].
pub struct Executor<'a> {
    catalog: &'a Catalog,
    rng: StdRng,
    /// Morsel-parallel worker pool shared with the owning engine.
    pool: Arc<ThreadPool>,
    /// Total number of base-table rows scanned while executing (used by the
    /// engine latency profiles to model per-engine cost).
    pub rows_scanned: u64,
}

impl<'a> Executor<'a> {
    /// Creates an executor with a default-sized pool; `seed` makes `rand()`
    /// deterministic when given.
    pub fn new(catalog: &'a Catalog, seed: Option<u64>) -> Executor<'a> {
        Self::with_pool(
            catalog,
            seed,
            Arc::new(ThreadPool::with_default_parallelism()),
        )
    }

    /// Creates an executor sharing an existing worker pool (the engine passes
    /// its own pool here so the `parallelism` knob applies to every statement).
    pub fn with_pool(
        catalog: &'a Catalog,
        seed: Option<u64>,
        pool: Arc<ThreadPool>,
    ) -> Executor<'a> {
        let rng = match seed {
            Some(s) => StdRng::seed_from_u64(s),
            None => StdRng::from_entropy(),
        };
        Executor {
            catalog,
            rng,
            pool,
            rows_scanned: 0,
        }
    }

    /// Executes any supported statement.  DDL/DML return an empty result table.
    pub fn execute_statement(&mut self, stmt: &Statement) -> EngineResult<Table> {
        match stmt {
            Statement::Query(q) => self.execute_query(q),
            Statement::CreateTableAs {
                name,
                query,
                if_not_exists,
            } => {
                if self.catalog.exists(&name.key()) {
                    if *if_not_exists {
                        return Ok(Table::default());
                    }
                    return Err(EngineError::TableAlreadyExists(name.to_string()));
                }
                let result = self.execute_query(query)?;
                let stored = Table {
                    schema: result.schema.without_qualifiers(),
                    columns: result.columns,
                };
                self.catalog.create(&name.key(), stored, false)?;
                Ok(Table::default())
            }
            Statement::DropTable { name, if_exists } => {
                self.catalog.drop_table(&name.key(), *if_exists)?;
                Ok(Table::default())
            }
            Statement::InsertIntoSelect { table, query } => {
                let rows = self.execute_query(query)?;
                let stripped = Table {
                    schema: rows.schema.without_qualifiers(),
                    columns: rows.columns,
                };
                self.catalog.append(&table.key(), &stripped)?;
                Ok(Table::default())
            }
            // VerdictDB control statements (CREATE SCRAMBLE, SET, BYPASS, …)
            // are interpreted by the middleware session layer and must never
            // reach the underlying database.
            other => Err(EngineError::Unsupported(format!(
                "control statement cannot be executed by the engine: {other:?}"
            ))),
        }
    }

    /// Executes a `SELECT` query and returns its result table.
    pub fn execute_query(&mut self, query: &Query) -> EngineResult<Table> {
        let mut query = query.clone();
        // 1. Resolve uncorrelated subqueries in WHERE / HAVING.
        if let Some(sel) = query.selection.take() {
            query.selection = Some(self.resolve_subqueries(sel)?);
        }
        if let Some(h) = query.having.take() {
            query.having = Some(self.resolve_subqueries(h)?);
        }

        // 2. FROM clause.
        let mut frame = self.build_from(&query.from)?;

        // 3. WHERE.
        if let Some(pred) = &query.selection {
            let mask = self.predicate_mask(pred, &frame)?;
            frame = frame.filter_with(&mask, &self.pool);
        }

        // Gather all output-side expressions.
        let mut projection = query.projection.clone();
        let mut having = query.having.clone();
        let mut order_by = query.order_by.clone();

        let mut out_exprs: Vec<&Expr> = Vec::new();
        for item in &projection {
            if let Some(e) = item.expr() {
                out_exprs.push(e);
            }
        }
        if let Some(h) = &having {
            out_exprs.push(h);
        }
        for o in &order_by {
            out_exprs.push(&o.expr);
        }

        // 4. Aggregation.
        let agg_items = collect_aggregate_calls(&out_exprs)?;
        let needs_agg = !query.group_by.is_empty() || !agg_items.is_empty();
        if needs_agg {
            let agg_frame = {
                let rng = &mut self.rng;
                let mut rng_fn = move || rng.gen::<f64>();
                execute_aggregation_with(
                    &frame,
                    &query.group_by,
                    &agg_items,
                    &mut rng_fn,
                    &self.pool,
                )?
            };
            let replacements = agg_frame.replacements;
            frame = agg_frame.table;
            projection = replace_in_projection(projection, &replacements);
            having = having.map(|h| replace_exprs(&h, &replacements));
            order_by = order_by
                .into_iter()
                .map(|o| OrderByItem {
                    expr: replace_exprs(&o.expr, &replacements),
                    asc: o.asc,
                })
                .collect();
        }

        // 5. Window functions (evaluated over the aggregated frame).
        let mut win_exprs: Vec<&Expr> = Vec::new();
        for item in &projection {
            if let Some(e) = item.expr() {
                win_exprs.push(e);
            }
        }
        if let Some(h) = &having {
            win_exprs.push(h);
        }
        for o in &order_by {
            win_exprs.push(&o.expr);
        }
        let window_calls = collect_window_calls(&win_exprs);
        if !window_calls.is_empty() {
            let mut replacements: Vec<(Expr, Expr)> = Vec::new();
            for (i, call) in window_calls.iter().enumerate() {
                let col = {
                    let rng = &mut self.rng;
                    let mut rng_fn = move || rng.gen::<f64>();
                    eval_window(call, &frame, &mut rng_fn)?
                };
                let name = format!("__win{i}");
                let dt = if col.null_count() == col.len() {
                    DataType::Float
                } else {
                    col.data_type()
                };
                frame.schema.fields.push(Field::new(&name, dt));
                frame.columns.push(col);
                replacements.push((Expr::Function(call.clone()), Expr::col(name)));
            }
            projection = replace_in_projection(projection, &replacements);
            having = having.map(|h| replace_exprs(&h, &replacements));
            order_by = order_by
                .into_iter()
                .map(|o| OrderByItem {
                    expr: replace_exprs(&o.expr, &replacements),
                    asc: o.asc,
                })
                .collect();
        }

        // 6. HAVING.
        if let Some(h) = &having {
            let mask = self.predicate_mask(h, &frame)?;
            frame = frame.filter_with(&mask, &self.pool);
        }

        // 7. Projection.
        let mut output = self.project(&frame, &projection)?;

        // 8. ORDER BY (keys evaluated against the pre-projection frame, falling
        //    back to output aliases), then DISTINCT, then LIMIT.
        if !order_by.is_empty() && output.num_rows() > 1 {
            let mut keys: Vec<Column> = Vec::with_capacity(order_by.len());
            for o in &order_by {
                let col = self.order_key(&o.expr, &frame, &output)?;
                keys.push(col);
            }
            let mut indices: Vec<usize> = (0..output.num_rows()).collect();
            indices.sort_by(|&a, &b| {
                for (k, o) in keys.iter().zip(order_by.iter()) {
                    let ord = k.cmp_rows(a, b);
                    let ord = if o.asc { ord } else { ord.reverse() };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            output = output.take(&indices);
        }

        if query.distinct {
            output = distinct_rows(&output, &self.pool);
        }
        if let Some(limit) = query.limit {
            output = output.limit(limit as usize);
        }
        Ok(output)
    }

    /// Evaluates a predicate over the frame into a selection mask (see
    /// [`predicate_mask_with`]).
    fn predicate_mask(
        &mut self,
        pred: &Expr,
        frame: &Table,
    ) -> EngineResult<crate::selvec::SelVec> {
        let rng = &mut self.rng;
        let mut rng_fn = move || rng.gen::<f64>();
        predicate_mask_with(pred, frame, &mut rng_fn, &self.pool)
    }

    fn order_key(&mut self, expr: &Expr, frame: &Table, output: &Table) -> EngineResult<Column> {
        // Try the output table first when the key is a bare column (an alias),
        // provided the row counts line up.
        if let Expr::Column { table: None, name } = expr {
            if output.num_rows() == frame.num_rows() {
                if let Some(idx) = output.schema.index_of(name) {
                    return Ok(output.columns[idx].clone());
                }
            }
        }
        let rng = &mut self.rng;
        let mut rng_fn = move || rng.gen::<f64>();
        let mut ctx = EvalContext {
            table: frame,
            rng: &mut rng_fn,
        };
        eval_expr(expr, &mut ctx)
    }

    fn project(&mut self, frame: &Table, projection: &[SelectItem]) -> EngineResult<Table> {
        let rng = &mut self.rng;
        let mut rng_fn = move || rng.gen::<f64>();
        project_items(frame, projection, &mut rng_fn)
    }

    fn build_from(&mut self, from: &[TableWithJoins]) -> EngineResult<Table> {
        if from.is_empty() {
            // table-less SELECT: a single anonymous row
            return Table::new(
                Schema::new(vec![Field::new("__dummy", DataType::Int)]),
                vec![Column::from_i64(vec![0])],
            );
        }
        let mut frame: Option<Table> = None;
        for twj in from {
            let mut current = self.build_factor(&twj.relation)?;
            for join in &twj.joins {
                let right = self.build_factor(&join.relation)?;
                current = match join.join_type {
                    JoinType::Cross => {
                        let rng = &mut self.rng;
                        let mut rng_fn = move || rng.gen::<f64>();
                        cross_join(&current, &right, &mut rng_fn, &self.pool)?
                    }
                    jt => {
                        let constraint = join.constraint.as_ref().ok_or_else(|| {
                            EngineError::Unsupported("JOIN without ON condition".into())
                        })?;
                        let constraint = self.resolve_subqueries(constraint.clone())?;
                        let (pairs, residual) =
                            extract_equi_pairs(&constraint, &current.schema, &right.schema);
                        let rng = &mut self.rng;
                        let mut rng_fn = move || rng.gen::<f64>();
                        hash_join(
                            &current,
                            &right,
                            &pairs,
                            &residual,
                            jt,
                            &mut rng_fn,
                            &self.pool,
                        )?
                    }
                };
            }
            frame = Some(match frame {
                None => current,
                Some(existing) => {
                    let rng = &mut self.rng;
                    let mut rng_fn = move || rng.gen::<f64>();
                    cross_join(&existing, &current, &mut rng_fn, &self.pool)?
                }
            });
        }
        Ok(frame.expect("nonempty from"))
    }

    fn build_factor(&mut self, tf: &TableFactor) -> EngineResult<Table> {
        match tf {
            TableFactor::Table { name, alias } => {
                let table = self.catalog.get(&name.key())?;
                self.rows_scanned += table.num_rows() as u64;
                let binding = alias
                    .clone()
                    .unwrap_or_else(|| name.base_name().to_string());
                Ok(Table {
                    schema: table.schema.with_qualifier(&binding),
                    columns: table.columns.clone(),
                })
            }
            TableFactor::Derived { subquery, alias } => {
                let result = self.execute_query(subquery)?;
                let schema = match alias {
                    Some(a) => result.schema.without_qualifiers().with_qualifier(a),
                    None => result.schema.without_qualifiers(),
                };
                Ok(Table {
                    schema,
                    columns: result.columns,
                })
            }
        }
    }

    /// Replaces uncorrelated scalar subqueries and IN-subqueries with literal
    /// values/lists by executing them eagerly.  Correlated subqueries surface
    /// as an `Unsupported` error (VerdictDB flattens them before the engine
    /// ever sees them).
    fn resolve_subqueries(&mut self, expr: Expr) -> EngineResult<Expr> {
        Ok(match expr {
            Expr::ScalarSubquery(q) => {
                let result = self.execute_query(&q).map_err(|e| match e {
                    EngineError::ColumnNotFound(c) => EngineError::Unsupported(format!(
                        "correlated subquery referencing outer column {c}"
                    )),
                    other => other,
                })?;
                let v = if result.num_rows() == 0 || result.num_columns() == 0 {
                    Value::Null
                } else {
                    result.value_at(0, 0)
                };
                Expr::Literal(value_to_literal(&v))
            }
            Expr::InSubquery {
                expr,
                subquery,
                negated,
            } => {
                let inner = self.resolve_subqueries(*expr)?;
                let result = self.execute_query(&subquery).map_err(|e| match e {
                    EngineError::ColumnNotFound(c) => EngineError::Unsupported(format!(
                        "correlated subquery referencing outer column {c}"
                    )),
                    other => other,
                })?;
                let list: Vec<Expr> = if result.num_columns() == 0 {
                    Vec::new()
                } else {
                    result.columns[0]
                        .iter()
                        .map(|v| Expr::Literal(value_to_literal(&v)))
                        .collect()
                };
                Expr::InList {
                    expr: Box::new(inner),
                    list,
                    negated,
                }
            }
            Expr::Exists { .. } => {
                return Err(EngineError::Unsupported("EXISTS subquery".into()));
            }
            Expr::BinaryOp { left, op, right } => Expr::BinaryOp {
                left: Box::new(self.resolve_subqueries(*left)?),
                op,
                right: Box::new(self.resolve_subqueries(*right)?),
            },
            Expr::UnaryOp { op, expr } => Expr::UnaryOp {
                op,
                expr: Box::new(self.resolve_subqueries(*expr)?),
            },
            Expr::Nested(e) => Expr::Nested(Box::new(self.resolve_subqueries(*e)?)),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(self.resolve_subqueries(*expr)?),
                low: Box::new(self.resolve_subqueries(*low)?),
                high: Box::new(self.resolve_subqueries(*high)?),
                negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.resolve_subqueries(*expr)?),
                list: list
                    .into_iter()
                    .map(|e| self.resolve_subqueries(e))
                    .collect::<EngineResult<Vec<_>>>()?,
                negated,
            },
            other => other,
        })
    }
}

/// Evaluates a predicate over a frame into a selection mask.  A top-level
/// comparison takes the fully morsel-parallel filter kernel (operands
/// evaluated first, then compared and masked per morsel); everything else
/// evaluates to a boolean column and folds it to a mask morsel-parallel.
/// Both paths match the serial `column_to_mask(eval_expr(pred))` bit for bit.
///
/// Shared by the one-shot executor and the progressive block-scan executor;
/// the expression evaluation is element-wise, so filtering a frame block by
/// block and concatenating equals filtering the whole frame at once.
pub(crate) fn predicate_mask_with(
    pred: &Expr,
    frame: &Table,
    rng: &mut dyn FnMut() -> f64,
    pool: &ThreadPool,
) -> EngineResult<crate::selvec::SelVec> {
    if let Expr::BinaryOp { left, op, right } = pred {
        if op.is_comparison() {
            let mut ctx = EvalContext { table: frame, rng };
            let l = eval_expr(left, &mut ctx)?;
            let r = eval_expr(right, &mut ctx)?;
            return Ok(par_filter_mask(&l, *op, &r, pool));
        }
    }
    let mut ctx = EvalContext { table: frame, rng };
    let col = eval_expr(pred, &mut ctx)?;
    Ok(par_column_to_mask(&col, pool))
}

/// Evaluates a projection list over a frame into an output table (wildcards
/// expand to the frame's non-helper columns; expressions evaluate per row).
/// Shared by the one-shot executor and the progressive block-scan executor.
pub(crate) fn project_items(
    frame: &Table,
    projection: &[SelectItem],
    rng: &mut dyn FnMut() -> f64,
) -> EngineResult<Table> {
    let mut fields: Vec<Field> = Vec::new();
    let mut columns: Vec<Column> = Vec::new();
    for (i, item) in projection.iter().enumerate() {
        match item {
            SelectItem::Wildcard => {
                for (f, c) in frame.schema.fields.iter().zip(frame.columns.iter()) {
                    // hide internal helper columns from `SELECT *`
                    if f.name.starts_with("__") {
                        continue;
                    }
                    fields.push(f.clone());
                    columns.push(c.clone());
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                for (f, c) in frame.schema.fields.iter().zip(frame.columns.iter()) {
                    if f.qualifier.as_deref() == Some(q.to_ascii_lowercase().as_str()) {
                        fields.push(f.clone());
                        columns.push(c.clone());
                    }
                }
            }
            SelectItem::Expr(e) | SelectItem::ExprWithAlias { expr: e, .. } => {
                let col = {
                    let mut ctx = EvalContext { table: frame, rng };
                    eval_expr(e, &mut ctx)?
                };
                let name = match item.alias() {
                    Some(a) => a.to_string(),
                    None => default_output_name(e, i),
                };
                fields.push(Field::new(&name, infer_type(e, &frame.schema)));
                columns.push(col);
            }
        }
    }
    Table::new(Schema::new(fields), columns)
}

pub(crate) fn replace_in_projection(
    projection: Vec<SelectItem>,
    replacements: &[(Expr, Expr)],
) -> Vec<SelectItem> {
    projection
        .into_iter()
        .map(|item| match item {
            SelectItem::Expr(e) => SelectItem::Expr(replace_exprs(&e, replacements)),
            SelectItem::ExprWithAlias { expr, alias } => SelectItem::ExprWithAlias {
                expr: replace_exprs(&expr, replacements),
                alias,
            },
            other => other,
        })
        .collect()
}

fn default_output_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function(f) => f.name.clone(),
        _ => format!("col_{position}"),
    }
}

fn value_to_literal(v: &Value) -> Literal {
    match v {
        Value::Null => Literal::Null,
        Value::Int(i) => Literal::Integer(*i),
        Value::Float(f) => Literal::Float(*f),
        Value::Str(s) => Literal::String(s.clone()),
        Value::Bool(b) => Literal::Boolean(*b),
    }
}

fn distinct_rows(table: &Table, pool: &ThreadPool) -> Table {
    // the grouper's representatives are exactly the first occurrence of each
    // distinct row, in order
    let grouping = group_rows_with(&table.columns, table.num_rows(), pool);
    table.take(&grouping.representatives)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use verdict_sql::parse_statement;

    fn setup() -> Catalog {
        let catalog = Catalog::new();
        let orders = TableBuilder::new()
            .int_column("order_id", vec![1, 2, 3, 4, 5, 6])
            .str_column(
                "city",
                vec!["aa", "aa", "det", "det", "det", "chi"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
            )
            .float_column("price", vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0])
            .build()
            .unwrap();
        catalog.register("orders", orders);
        let products = TableBuilder::new()
            .int_column("order_id", vec![1, 2, 3, 4, 5, 6])
            .int_column("product_id", vec![100, 100, 200, 200, 300, 300])
            .build()
            .unwrap();
        catalog.register("order_products", products);
        catalog
    }

    fn run(catalog: &Catalog, sql: &str) -> Table {
        let stmt = parse_statement(sql).unwrap();
        let mut exec = Executor::new(catalog, Some(7));
        exec.execute_statement(&stmt)
            .unwrap_or_else(|e| panic!("execution failed for {sql}: {e}"))
    }

    #[test]
    fn simple_select_star_and_filter() {
        let c = setup();
        let out = run(&c, "SELECT * FROM orders WHERE price >= 30");
        assert_eq!(out.num_rows(), 4);
        assert_eq!(out.num_columns(), 3);
    }

    #[test]
    fn group_by_with_aggregates_and_order() {
        let c = setup();
        let out = run(
            &c,
            "SELECT city, count(*) AS cnt, sum(price) AS total FROM orders GROUP BY city ORDER BY total DESC",
        );
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value_at(0, 0), Value::Str("det".into()));
        assert_eq!(out.value_at(0, 1), Value::Int(3));
        assert_eq!(out.value_at(0, 2), Value::Float(120.0));
    }

    #[test]
    fn join_and_group() {
        let c = setup();
        let out = run(
            &c,
            "SELECT p.product_id, avg(o.price) AS avg_price FROM orders o \
             INNER JOIN order_products p ON o.order_id = p.order_id \
             GROUP BY p.product_id ORDER BY p.product_id",
        );
        assert_eq!(out.num_rows(), 3);
        assert_eq!(out.value_at(0, 1), Value::Float(15.0));
        assert_eq!(out.value_at(2, 1), Value::Float(55.0));
    }

    #[test]
    fn derived_table_and_nested_aggregate() {
        let c = setup();
        let out = run(
            &c,
            "SELECT avg(total) AS avg_city_total FROM \
             (SELECT city, sum(price) AS total FROM orders GROUP BY city) AS t",
        );
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value_at(0, 0), Value::Float(70.0));
    }

    #[test]
    fn having_filters_groups() {
        let c = setup();
        let out = run(
            &c,
            "SELECT city, count(*) AS cnt FROM orders GROUP BY city HAVING count(*) > 1 ORDER BY city",
        );
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn scalar_subquery_comparison() {
        let c = setup();
        let out = run(
            &c,
            "SELECT count(*) FROM orders WHERE price > (SELECT avg(price) FROM orders)",
        );
        assert_eq!(out.value_at(0, 0), Value::Int(3));
    }

    #[test]
    fn window_function_over_group() {
        let c = setup();
        let out = run(
            &c,
            "SELECT city, count(*) AS cnt, sum(count(*)) OVER () AS total \
             FROM orders GROUP BY city ORDER BY city",
        );
        assert_eq!(out.num_rows(), 3);
        assert!(out.columns[2]
            .iter()
            .all(|v| v.as_f64().unwrap_or(0.0) == 6.0 || v.as_i64() == Some(6)));
    }

    #[test]
    fn create_table_as_and_insert_and_drop() {
        let c = setup();
        run(
            &c,
            "CREATE TABLE expensive AS SELECT * FROM orders WHERE price > 30",
        );
        assert_eq!(c.row_count("expensive"), 3);
        run(
            &c,
            "INSERT INTO expensive SELECT * FROM orders WHERE price <= 30",
        );
        assert_eq!(c.row_count("expensive"), 6);
        run(&c, "DROP TABLE expensive");
        assert!(!c.exists("expensive"));
    }

    #[test]
    fn select_without_from() {
        let c = setup();
        let out = run(&c, "SELECT 1 AS one, 2.5 AS two");
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.value_at(0, 0), Value::Int(1));
    }

    #[test]
    fn distinct_and_limit() {
        let c = setup();
        let out = run(&c, "SELECT DISTINCT city FROM orders ORDER BY city LIMIT 2");
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn in_subquery_resolved() {
        let c = setup();
        let out = run(
            &c,
            "SELECT count(*) FROM orders WHERE order_id IN (SELECT order_id FROM order_products WHERE product_id = 100)",
        );
        assert_eq!(out.value_at(0, 0), Value::Int(2));
    }

    #[test]
    fn missing_table_is_an_error() {
        let c = setup();
        let stmt = parse_statement("SELECT * FROM nope").unwrap();
        let mut exec = Executor::new(&c, Some(1));
        assert!(matches!(
            exec.execute_statement(&stmt),
            Err(EngineError::TableNotFound(_))
        ));
    }

    #[test]
    fn count_distinct_in_query() {
        let c = setup();
        let out = run(&c, "SELECT count(DISTINCT city) FROM orders");
        assert_eq!(out.value_at(0, 0), Value::Int(3));
    }
}
