//! The resumable block-scan executor behind progressive query execution.
//!
//! A [`ProgressiveScan`] executes a restricted class of aggregate queries —
//! a single base-table scan (optionally wrapped in one row-wise derived
//! table), a WHERE filter, and a grouped aggregation, which is exactly the
//! shape of VerdictDB's rewritten variational-subsampling ("mean") query —
//! **incrementally**: [`BlockScan::advance`] consumes the next block of base
//! rows (scan → derived projection → filter → group-key/argument
//! evaluation, each element-wise and therefore identical to evaluating the
//! whole table at once), and [`BlockScan::snapshot`] folds the buffered
//! prefix through the same morsel-parallel aggregation core the one-shot
//! executor uses ([`crate::exec::aggregate::aggregate_evaluated`]).
//!
//! Two properties are load-bearing:
//!
//! * **prefix exactness** — a snapshot after `k` rows is *the* result the
//!   one-shot executor would produce for a table holding only those `k`
//!   rows: per-row work is element-wise (so block evaluation concatenates
//!   losslessly) and the aggregation core re-folds the buffered prefix on
//!   the same 64K-row morsel grid ([`crate::parallel::MORSEL_ROWS`]) it
//!   would use for that prefix;
//! * **final-frame bit-identity** — after the last block, the buffered
//!   columns equal the one-shot executor's fully-evaluated filtered frame
//!   byte for byte, and the shared aggregation core plus the shared
//!   post-aggregation projection make the snapshot bit-identical to
//!   [`crate::Engine::execute_sql`] on the same statement, at any pool
//!   size.
//!
//! The scan reads rows through a [`ScanSource`]
//! ([`crate::catalog::Catalog::scan_source`]): in-memory tables are
//! **pinned** at construction (`Arc` snapshot), so concurrent writes to the
//! catalog do not shift row ranges mid-stream; store-backed sources decode
//! columnar blocks from disk on demand — a cold-start `STREAM` never
//! materialises the whole scramble — and detect a concurrent rebuild with a
//! typed error instead of silently serving mixed versions.  Either way a
//! stream always answers over one consistent version of the data.
//!
//! Queries containing `rand()` anywhere are rejected (`Unsupported`):
//! replaying random draws across advance/snapshot interleavings cannot be
//! made deterministic.  VerdictDB's rewritten queries are rand-free — the
//! variational subsample id is derived from a uniform draw **stored in the
//! scramble** — so this costs nothing on the AQP path.

use crate::catalog::Catalog;
use crate::column::Column;
use crate::engine::{ExecStats, QueryResult};
use crate::error::{EngineError, EngineResult};
use crate::exec::aggregate::{
    aggregate_evaluated, collect_aggregate_calls, AggFunc, AggregateItem,
};
use crate::exec::{predicate_mask_with, project_items, replace_in_projection};
use crate::expr::{eval_expr, EvalContext};
use crate::parallel::ThreadPool;
use crate::persist::ScanSource;
use crate::schema::Schema;
use crate::table::Table;
use std::sync::Arc;
use std::time::{Duration, Instant};
use verdict_sql::ast::{Expr, Query, SelectItem, TableFactor};

/// A resumable cursor over a progressive aggregate execution.
///
/// Obtained from [`crate::Backend::open_block_scan`]; drive it with
/// [`advance`](Self::advance) and read refined results with
/// [`snapshot`](Self::snapshot).  A snapshot is always the exact answer for
/// the prefix of base rows consumed so far, and the snapshot taken once
/// [`done`](Self::done) is true is bit-identical to executing the statement
/// one-shot.
pub trait BlockScan: Send {
    /// Total base rows the scan will consume (pinned at open time).
    fn total_rows(&self) -> u64;

    /// Base rows consumed so far.
    fn rows_seen(&self) -> u64;

    /// True when every base row has been consumed.
    fn done(&self) -> bool;

    /// Consumes up to `max_rows` further base rows, returning how many were
    /// actually consumed (0 when the scan is done).
    fn advance(&mut self, max_rows: u64) -> EngineResult<u64>;

    /// The exact query result for the prefix consumed so far.  `rows_scanned`
    /// in the returned stats is the prefix size; `elapsed` is the cumulative
    /// time spent inside this scan.
    fn snapshot(&mut self) -> EngineResult<QueryResult>;
}

/// The engine's [`BlockScan`] implementation (see the [module
/// docs](self) for the execution model and its exactness guarantees).
pub struct ProgressiveScan {
    /// The scanned base table: an `Arc`-pinned snapshot for in-memory
    /// tables, or a block-granular disk reader for persisted ones.
    input: Arc<dyn ScanSource>,
    /// `input`'s schema qualified with the inner scan binding.
    scan_schema: Schema,
    /// Row-wise derived-table projection wrapping the scan, if any.
    inner_projection: Option<Vec<SelectItem>>,
    /// WHERE of the derived table, applied before its projection.
    inner_selection: Option<Expr>,
    /// Alias the derived table is bound under in the outer query.
    derived_alias: Option<String>,
    /// Outer WHERE, applied to the (projected) frame.
    selection: Option<Expr>,
    /// Outer GROUP BY expressions.
    group_exprs: Vec<Expr>,
    /// The aggregate calls collected from the outer projection.
    aggs: Vec<AggregateItem>,
    /// Outer projection (over group keys and aggregates).
    projection: Vec<SelectItem>,
    /// Schema of the per-block frame the keys/arguments are evaluated on.
    frame_schema: Schema,
    /// Input-column indices read by the first predicate applied to the raw
    /// scan (the inner WHERE, or the outer WHERE when no derived projection
    /// intervenes).  When set, `block_frame` takes the **late-materialized**
    /// path: the predicate is evaluated over a thin frame holding only these
    /// columns, and full rows are gathered for the survivors alone.  `None`
    /// when there is no such predicate or a reference does not resolve; the
    /// block is then sliced wholesale.
    scan_filter_cols: Option<Vec<usize>>,
    pool: Arc<ThreadPool>,
    /// Next base row to consume.
    pos: usize,
    /// Evaluated group-key columns for the filtered prefix.
    keys_buf: Vec<Column>,
    /// Evaluated aggregate-argument columns, parallel to `aggs`.
    args_buf: Vec<Option<Column>>,
    /// Rows in the buffered (filtered) prefix.
    buffered_rows: usize,
    /// Cumulative wall-clock spent in `advance`/`snapshot`.
    spent: Duration,
}

/// The expression-side validation: no `rand()`, no window functions, no
/// subqueries anywhere in the query.
fn validate_expressions(query: &Query) -> EngineResult<()> {
    let mut offender: Option<&'static str> = None;
    verdict_sql::visitor::walk_query(query, &mut |e| {
        if offender.is_some() {
            return;
        }
        match e {
            Expr::Function(f)
                if f.name.eq_ignore_ascii_case("rand") || f.name.eq_ignore_ascii_case("random") =>
            {
                offender = Some("rand()")
            }
            Expr::Function(f) if f.over.is_some() => offender = Some("window function"),
            Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
                offender = Some("subquery")
            }
            _ => {}
        }
    });
    match offender {
        Some(what) => Err(EngineError::Unsupported(format!(
            "progressive execution cannot replay {what} deterministically"
        ))),
        None => Ok(()),
    }
}

/// A query shape a [`ProgressiveScan`] cannot execute (the caller falls back
/// to one-shot execution).
fn unsupported(what: &str) -> EngineError {
    EngineError::Unsupported(format!("progressive execution does not support {what}"))
}

impl ProgressiveScan {
    /// Validates the query shape and opens a scan over the pinned input.
    /// Returns `Unsupported` for any shape outside the progressive class;
    /// callers treat that as "execute one-shot instead".
    pub fn try_new(
        catalog: &Catalog,
        query: &Query,
        pool: Arc<ThreadPool>,
    ) -> EngineResult<ProgressiveScan> {
        if query.distinct {
            return Err(unsupported("SELECT DISTINCT"));
        }
        if query.having.is_some() {
            return Err(unsupported("HAVING"));
        }
        if !query.order_by.is_empty() || query.limit.is_some() {
            return Err(unsupported("ORDER BY / LIMIT"));
        }
        let [twj] = query.from.as_slice() else {
            return Err(unsupported("multi-relation FROM"));
        };
        if !twj.joins.is_empty() {
            return Err(unsupported("joins"));
        }
        validate_expressions(query)?;

        // Resolve the scanned base table and the optional row-wise derived
        // wrapper around it.
        let (base, scan_binding, inner_projection, inner_selection, derived_alias) =
            match &twj.relation {
                TableFactor::Table { name, alias } => {
                    let binding = alias
                        .clone()
                        .unwrap_or_else(|| name.base_name().to_string());
                    (name.key(), binding, None, None, None)
                }
                TableFactor::Derived { subquery, alias } => {
                    let s = subquery.as_ref();
                    if s.distinct
                        || s.having.is_some()
                        || !s.order_by.is_empty()
                        || s.limit.is_some()
                        || !s.group_by.is_empty()
                    {
                        return Err(unsupported("a non-row-wise derived table"));
                    }
                    let [inner_twj] = s.from.as_slice() else {
                        return Err(unsupported("a derived table over several relations"));
                    };
                    if !inner_twj.joins.is_empty() {
                        return Err(unsupported("a derived table over a join"));
                    }
                    let TableFactor::Table {
                        name,
                        alias: inner_alias,
                    } = &inner_twj.relation
                    else {
                        return Err(unsupported("nested derived tables"));
                    };
                    let exprs: Vec<&Expr> = s.projection.iter().filter_map(|i| i.expr()).collect();
                    if !collect_aggregate_calls(&exprs)?.is_empty() {
                        return Err(unsupported("aggregates inside a derived table"));
                    }
                    let binding = inner_alias
                        .clone()
                        .unwrap_or_else(|| name.base_name().to_string());
                    (
                        name.key(),
                        binding,
                        Some(s.projection.clone()),
                        s.selection.clone(),
                        alias.clone(),
                    )
                }
            };

        // Collect the outer aggregates; a query without any is not an
        // aggregation and takes the one-shot path.
        let mut out_exprs: Vec<&Expr> = Vec::new();
        for item in &query.projection {
            match item {
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => {
                    return Err(unsupported("wildcard projections over an aggregation"));
                }
                _ => {}
            }
            if let Some(e) = item.expr() {
                out_exprs.push(e);
            }
        }
        let aggs = collect_aggregate_calls(&out_exprs)?;
        if aggs.is_empty() {
            return Err(unsupported("queries without aggregate functions"));
        }

        let input = catalog.scan_source(&base)?;
        let scan_schema = input.schema().with_qualifier(&scan_binding);
        let scan_pred = inner_selection.as_ref().or_else(|| {
            if inner_projection.is_none() {
                query.selection.as_ref()
            } else {
                None
            }
        });
        let scan_filter_cols = scan_pred.and_then(|p| scan_filter_columns(p, &scan_schema));
        let mut scan = ProgressiveScan {
            input,
            scan_schema,
            inner_projection,
            inner_selection,
            derived_alias,
            selection: query.selection.clone(),
            group_exprs: query.group_by.clone(),
            aggs,
            projection: query.projection.clone(),
            frame_schema: Schema::new(Vec::new()),
            scan_filter_cols,
            pool,
            pos: 0,
            keys_buf: Vec::new(),
            args_buf: Vec::new(),
            buffered_rows: 0,
            spent: Duration::ZERO,
        };
        // Prime the buffers (and the frame schema) from a zero-row block:
        // column types are decided by expressions and schemas, never by
        // values, so every later block appends type-compatibly.
        let empty = scan.block_frame(0, 0)?;
        scan.frame_schema = empty.schema.clone();
        let (keys, args) = scan.evaluate_block(&empty)?;
        scan.keys_buf = keys;
        scan.args_buf = args;
        Ok(scan)
    }

    /// Builds the evaluated per-block frame for the contiguous base-row
    /// range `[start, start + len)`: scan slice → inner WHERE → inner
    /// projection → alias rebinding → outer WHERE.  Every step is
    /// element-wise, so concatenating block frames equals building the
    /// frame for all rows at once.
    ///
    /// The first predicate over the raw scan takes the late-materialized
    /// path when `scan_filter_cols` is set: only the columns it reads are
    /// sliced before masking, and the remaining columns are gathered for
    /// surviving rows alone.  `take` and `filter` select the same rows in
    /// the same order, so the frame is bit-identical to the wholesale
    /// slice-then-filter path.
    fn block_frame(&self, start: usize, len: usize) -> EngineResult<Table> {
        let mut rng = no_rand();
        let scan_pred = self.inner_selection.as_ref().or_else(|| {
            if self.inner_projection.is_none() {
                self.selection.as_ref()
            } else {
                None
            }
        });
        let mut frame = match (scan_pred, &self.scan_filter_cols) {
            (Some(pred), Some(cols)) => {
                let thin = Table {
                    schema: Schema::new(
                        cols.iter()
                            .map(|&i| self.scan_schema.fields[i].clone())
                            .collect(),
                    ),
                    columns: self.input.read_range(Some(cols), start, len)?,
                };
                let mask = predicate_mask_with(pred, &thin, &mut rng, &self.pool)?;
                let rows: Vec<usize> = mask.indices().iter().map(|&i| start + i).collect();
                Table {
                    schema: self.scan_schema.clone(),
                    columns: self.input.gather(&rows)?,
                }
            }
            (scan_pred, _) => {
                let mut frame = Table {
                    schema: self.scan_schema.clone(),
                    columns: self.input.read_range(None, start, len)?,
                };
                if let Some(pred) = scan_pred {
                    let mask = predicate_mask_with(pred, &frame, &mut rng, &self.pool)?;
                    frame = frame.filter_with(&mask, &self.pool);
                }
                frame
            }
        };
        if let Some(projection) = &self.inner_projection {
            let projected = project_items(&frame, projection, &mut rng)?;
            let schema = match &self.derived_alias {
                Some(a) => projected.schema.without_qualifiers().with_qualifier(a),
                None => projected.schema.without_qualifiers(),
            };
            frame = Table {
                schema,
                columns: projected.columns,
            };
            if let Some(pred) = &self.selection {
                let mask = predicate_mask_with(pred, &frame, &mut rng, &self.pool)?;
                frame = frame.filter_with(&mask, &self.pool);
            }
        }
        Ok(frame)
    }

    /// Evaluates the group-key and aggregate-argument columns over a block
    /// frame.
    fn evaluate_block(&self, frame: &Table) -> EngineResult<(Vec<Column>, Vec<Option<Column>>)> {
        let mut rng = no_rand();
        let mut keys = Vec::with_capacity(self.group_exprs.len());
        for g in &self.group_exprs {
            let mut ctx = EvalContext {
                table: frame,
                rng: &mut rng,
            };
            keys.push(eval_expr(g, &mut ctx)?);
        }
        let mut args = Vec::with_capacity(self.aggs.len());
        for item in &self.aggs {
            if matches!(item.func, AggFunc::CountStar) {
                args.push(None);
                continue;
            }
            let arg = item.call.args.first().ok_or_else(|| {
                EngineError::Execution(format!("aggregate {} requires an argument", item.call.name))
            })?;
            let mut ctx = EvalContext {
                table: frame,
                rng: &mut rng,
            };
            args.push(Some(eval_expr(arg, &mut ctx)?));
        }
        Ok((keys, args))
    }
}

/// Resolves the scan columns a predicate reads, for late materialization.
/// Returns `None` when the predicate reads no scan column or any reference
/// fails to resolve — the caller then slices whole blocks instead.
fn scan_filter_columns(pred: &Expr, scan_schema: &Schema) -> Option<Vec<usize>> {
    let mut cols: Vec<usize> = Vec::new();
    let mut failed = false;
    verdict_sql::visitor::walk_expr(pred, &mut |e| {
        if let Expr::Column { table, name } = e {
            match scan_schema.resolve(table.as_deref(), name) {
                Ok(i) => cols.push(i),
                Err(_) => failed = true,
            }
        }
    });
    if failed || cols.is_empty() {
        return None;
    }
    cols.sort_unstable();
    cols.dedup();
    Some(cols)
}

/// The rng handed to evaluation: validation rejected `rand()`, so any draw
/// is a bug — a fixed value keeps it deterministic even then.
fn no_rand() -> impl FnMut() -> f64 {
    || 0.5
}

impl BlockScan for ProgressiveScan {
    fn total_rows(&self) -> u64 {
        self.input.num_rows() as u64
    }

    fn rows_seen(&self) -> u64 {
        self.pos as u64
    }

    fn done(&self) -> bool {
        self.pos >= self.input.num_rows()
    }

    fn advance(&mut self, max_rows: u64) -> EngineResult<u64> {
        let t0 = Instant::now();
        let total = self.input.num_rows();
        if self.pos >= total {
            return Ok(0);
        }
        let take = (max_rows.max(1)).min((total - self.pos) as u64) as usize;
        let start = self.pos;
        self.pos += take;
        let frame = self.block_frame(start, take)?;
        if frame.num_rows() > 0 {
            let (keys, args) = self.evaluate_block(&frame)?;
            for (dst, src) in self.keys_buf.iter_mut().zip(keys.iter()) {
                dst.append(src);
            }
            for (dst, src) in self.args_buf.iter_mut().zip(args.iter()) {
                if let (Some(dst), Some(src)) = (dst.as_mut(), src.as_ref()) {
                    dst.append(src);
                }
            }
            self.buffered_rows += frame.num_rows();
        }
        self.spent += t0.elapsed();
        Ok(take as u64)
    }

    fn snapshot(&mut self) -> EngineResult<QueryResult> {
        let t0 = Instant::now();
        let aggregated = aggregate_evaluated(
            &self.keys_buf,
            &self.args_buf,
            &self.group_exprs,
            &self.aggs,
            &self.frame_schema,
            self.buffered_rows,
            &self.pool,
        )?;
        let projection = replace_in_projection(self.projection.clone(), &aggregated.replacements);
        let mut rng = no_rand();
        let table = project_items(&aggregated.table, &projection, &mut rng)?;
        self.spent += t0.elapsed();
        Ok(QueryResult {
            table,
            stats: ExecStats {
                rows_scanned: self.pos as u64,
                elapsed: self.spent,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Backend, Engine};
    use crate::parallel::MORSEL_ROWS;
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn engine(rows: usize, seed: u64) -> Engine {
        let e = Engine::with_seed(seed);
        let t = TableBuilder::new()
            .int_column("k", (0..rows as i64).map(|i| i % 5).collect())
            .float_column(
                "price",
                (0..rows).map(|i| ((i * 31) % 997) as f64 / 9.7).collect(),
            )
            .float_column(
                "u",
                (0..rows).map(|i| ((i * 7) % 100) as f64 / 100.0).collect(),
            )
            .build()
            .unwrap();
        e.register_table("sales", t);
        e
    }

    fn assert_tables_bit_identical(a: &Table, b: &Table) {
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.num_columns(), b.num_columns());
        for r in 0..a.num_rows() {
            for c in 0..a.num_columns() {
                match (a.value_at(r, c), b.value_at(r, c)) {
                    (Value::Float(x), Value::Float(y)) => {
                        assert_eq!(x.to_bits(), y.to_bits(), "({r},{c}): {x} vs {y}")
                    }
                    (x, y) => assert_eq!(x, y, "({r},{c})"),
                }
            }
        }
    }

    const QUERY: &str = "SELECT vt.k AS k, 4 * sum((vt.price) / (0.5)) AS est, \
         CAST(1 + floor(vt.u * 4) AS BIGINT) AS sid, count(*) AS sz \
         FROM (SELECT *, price * 2 AS doubled FROM sales) AS vt \
         WHERE vt.price > 1.0 \
         GROUP BY vt.k, CAST(1 + floor(vt.u * 4) AS BIGINT)";

    #[test]
    fn final_snapshot_is_bit_identical_to_one_shot_execution() {
        for threads in [1usize, 4] {
            let rows = 2 * MORSEL_ROWS + 12_345;
            let e = engine(rows, 7);
            e.set_parallelism(threads);
            let one_shot = e.execute_sql(QUERY).unwrap();
            let mut scan = e.open_block_scan(QUERY).expect("progressive shape");
            let mut frames = 0;
            while !scan.done() {
                scan.advance(MORSEL_ROWS as u64).unwrap();
                let partial = scan.snapshot().unwrap();
                assert_eq!(partial.stats.rows_scanned, scan.rows_seen());
                frames += 1;
            }
            assert!(frames >= 3, "expected one frame per 64K block");
            let final_frame = scan.snapshot().unwrap();
            assert_tables_bit_identical(&final_frame.table, &one_shot.table);
            assert_eq!(final_frame.stats.rows_scanned, rows as u64);
        }
    }

    #[test]
    fn prefix_snapshot_equals_one_shot_over_the_prefix() {
        let rows = 10_000;
        let e = engine(rows, 9);
        let mut scan = e.open_block_scan(QUERY).unwrap();
        scan.advance(4_000).unwrap();
        let prefix = scan.snapshot().unwrap();
        // One-shot over a table holding only the first 4000 rows.
        let e2 = engine(4_000, 9);
        let one_shot = e2.execute_sql(QUERY).unwrap();
        assert_tables_bit_identical(&prefix.table, &one_shot.table);
    }

    #[test]
    fn unsupported_shapes_are_rejected() {
        let e = engine(100, 1);
        for sql in [
            "SELECT k FROM sales",                                          // no aggregate
            "SELECT count(*) FROM sales ORDER BY 1",                        // order by
            "SELECT count(*) FROM sales LIMIT 1",                           // limit
            "SELECT k, count(*) FROM sales GROUP BY k HAVING count(*) > 1", // having
            "SELECT count(*) FROM sales WHERE rand() < 0.5",                // rand
            "SELECT count(*) FROM sales a INNER JOIN sales b ON a.k = b.k", // join
            "SELECT * FROM sales",                                          // wildcard, no agg
            "SELECT sum(cnt) FROM (SELECT k, count(*) AS cnt FROM sales GROUP BY k) AS t", // agg inside derived
        ] {
            assert!(e.open_block_scan(sql).is_none(), "{sql}");
        }
        assert!(e
            .open_block_scan("SELECT k, avg(price) FROM sales GROUP BY k")
            .is_some());
    }

    #[test]
    fn scan_pins_the_input_against_concurrent_writes() {
        let e = engine(1_000, 3);
        let mut scan = e
            .open_block_scan("SELECT count(*) AS c FROM sales")
            .unwrap();
        assert_eq!(scan.total_rows(), 1_000);
        // Appending to the base table mid-stream must not change the scan.
        e.execute_sql("INSERT INTO sales SELECT * FROM sales")
            .unwrap();
        while !scan.done() {
            scan.advance(300).unwrap();
        }
        let result = scan.snapshot().unwrap();
        assert_eq!(result.table.value_at(0, 0), Value::Int(1_000));
    }

    #[test]
    fn late_materialized_scan_filter_matches_one_shot() {
        // A plain-table WHERE takes the late-materialized path (thin mask +
        // row gather); the answer must stay bit-identical to one-shot
        // execution at any pool size.
        const Q: &str = "SELECT k, sum(price) AS s, count(*) AS n FROM sales \
                         WHERE price > 50.0 AND u < 0.9 GROUP BY k";
        for threads in [1usize, 4] {
            let rows = MORSEL_ROWS + 4_321;
            let e = engine(rows, 13);
            e.set_parallelism(threads);
            let one_shot = e.execute_sql(Q).unwrap();
            let mut scan = e.open_block_scan(Q).expect("progressive shape");
            while !scan.done() {
                scan.advance(10_000).unwrap();
            }
            let last = scan.snapshot().unwrap();
            assert_tables_bit_identical(&last.table, &one_shot.table);
        }
    }

    #[test]
    fn scan_filter_columns_are_precomputed() {
        let e = engine(1_000, 3);
        let open = |sql: &str| {
            let stmt = verdict_sql::parse_statement(sql).unwrap();
            let verdict_sql::ast::Statement::Query(q) = stmt else {
                panic!("not a query")
            };
            ProgressiveScan::try_new(
                e.catalog(),
                &q,
                Arc::new(ThreadPool::with_default_parallelism()),
            )
            .unwrap()
        };
        // Plain scan: the outer WHERE reads price (1) and u (2).
        let scan = open("SELECT count(*) AS c FROM sales WHERE price > 1 AND u < 0.5");
        assert_eq!(scan.scan_filter_cols, Some(vec![1, 2]));
        // No predicate over the raw scan → wholesale slicing.
        let scan = open("SELECT k, sum(price) AS s FROM sales GROUP BY k");
        assert_eq!(scan.scan_filter_cols, None);
        // A derived projection intervenes before the outer WHERE → the
        // predicate runs on the projected frame, not the raw scan.
        let scan =
            open("SELECT count(*) AS c FROM (SELECT price * 2 AS d FROM sales) AS t WHERE t.d > 1");
        assert_eq!(scan.scan_filter_cols, None);
        // An inner WHERE is the scan predicate even under a derived wrapper.
        let scan = open(
            "SELECT count(*) AS c FROM \
             (SELECT price FROM sales WHERE u < 0.5) AS t WHERE t.price > 1",
        );
        assert_eq!(scan.scan_filter_cols, Some(vec![2]));
    }

    #[test]
    fn empty_prefix_snapshot_is_well_formed() {
        let e = engine(1_000, 5);
        let mut scan = e
            .open_block_scan("SELECT k, sum(price) AS s FROM sales GROUP BY k")
            .unwrap();
        let empty = scan.snapshot().unwrap();
        assert_eq!(empty.table.num_rows(), 0);
        assert_eq!(empty.table.num_columns(), 2);
        assert_eq!(scan.rows_seen(), 0);
        assert!(!scan.done());
    }
}
