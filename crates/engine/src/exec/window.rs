//! Window (analytic) function evaluation.
//!
//! VerdictDB's rewritten queries use partition-scoped window aggregates such
//! as `sum(count(*)) OVER (PARTITION BY group_column)` to compute per-group
//! totals across subsamples (paper Query 9).  The engine therefore supports
//! `sum`, `count`, `avg`, `min`, and `max` over a `PARTITION BY` clause (no
//! ordering / frame clauses, which the rewriter never emits).
//!
//! Partitions come from the typed hash grouper; sum/avg/count fold the typed
//! argument slices directly.

use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::expr::{eval_expr, EvalContext};
use crate::kernels::group_rows;
use crate::table::Table;
use crate::value::Value;
use verdict_sql::ast::{Expr, FunctionCall};
use verdict_sql::dialect::GenericDialect;
use verdict_sql::printer::print_expr;

/// Collects the unique window-function calls appearing in the expressions.
pub fn collect_window_calls(exprs: &[&Expr]) -> Vec<FunctionCall> {
    let mut seen: Vec<String> = Vec::new();
    let mut out: Vec<FunctionCall> = Vec::new();
    for expr in exprs {
        verdict_sql::visitor::walk_expr(expr, &mut |e| {
            if let Expr::Function(f) = e {
                if f.over.is_some() {
                    let key = print_expr(e, &GenericDialect);
                    if !seen.contains(&key) {
                        seen.push(key);
                        out.push(f.clone());
                    }
                }
            }
        });
    }
    out
}

/// Evaluates one window call over the frame, returning a column with one
/// value per input row.
pub fn eval_window(
    call: &FunctionCall,
    frame: &Table,
    rng: &mut dyn FnMut() -> f64,
) -> EngineResult<Column> {
    let spec = call.over.as_ref().ok_or_else(|| {
        EngineError::Execution("eval_window called on a non-window function".into())
    })?;
    if !spec.order_by.is_empty() {
        return Err(EngineError::Unsupported(
            "window ORDER BY / frame clauses are not supported".into(),
        ));
    }
    let n = frame.num_rows();

    // Partition keys.
    let mut key_cols: Vec<Column> = Vec::with_capacity(spec.partition_by.len());
    for p in &spec.partition_by {
        let mut ctx = EvalContext { table: frame, rng };
        key_cols.push(eval_expr(p, &mut ctx)?);
    }

    // Argument column (count(*) has no argument to evaluate).
    let is_count_star =
        call.name == "count" && call.args.len() == 1 && matches!(call.args[0], Expr::Wildcard);
    let arg_col: Option<Column> = if is_count_star || call.args.is_empty() {
        None
    } else {
        let mut ctx = EvalContext { table: frame, rng };
        Some(eval_expr(&call.args[0], &mut ctx)?)
    };

    // Cluster rows into partitions via typed hashing.
    let grouping = group_rows(&key_cols, n);
    let groups = grouping.num_groups();

    // Fold the aggregate per partition, then broadcast it back to the rows.
    let per_group: Vec<Value> = match call.name.as_str() {
        "count" => {
            let mut counts = vec![0i64; groups];
            match &arg_col {
                None => {
                    for &g in &grouping.gids {
                        counts[g] += 1;
                    }
                }
                Some(col) => {
                    for (i, &g) in grouping.gids.iter().enumerate() {
                        if col.is_valid(i) {
                            counts[g] += 1;
                        }
                    }
                }
            }
            counts.into_iter().map(Value::Int).collect()
        }
        "sum" | "avg" => {
            let col = arg_col.as_ref().ok_or_else(|| {
                EngineError::Execution(format!("window {} requires an argument", call.name))
            })?;
            let mut sums = vec![0.0f64; groups];
            let mut counts = vec![0u64; groups];
            for (i, &g) in grouping.gids.iter().enumerate() {
                if let Some(x) = col.f64_at(i) {
                    sums[g] += x;
                    counts[g] += 1;
                }
            }
            let avg = call.name == "avg";
            sums.into_iter()
                .zip(counts)
                .map(|(s, c)| {
                    if c == 0 {
                        Value::Null
                    } else if avg {
                        Value::Float(s / c as f64)
                    } else {
                        Value::Float(s)
                    }
                })
                .collect()
        }
        "min" | "max" => {
            let col = arg_col.as_ref().ok_or_else(|| {
                EngineError::Execution(format!("window {} requires an argument", call.name))
            })?;
            let is_min = call.name == "min";
            let mut best: Vec<Option<Value>> = vec![None; groups];
            for (i, &g) in grouping.gids.iter().enumerate() {
                let v = col.value_at(i);
                if v.is_null() {
                    continue;
                }
                let replace = match &best[g] {
                    None => true,
                    Some(b) => match v.sql_cmp(b) {
                        Some(std::cmp::Ordering::Less) => is_min,
                        Some(std::cmp::Ordering::Greater) => !is_min,
                        _ => false,
                    },
                };
                if replace {
                    best[g] = Some(v);
                }
            }
            best.into_iter().map(|b| b.unwrap_or(Value::Null)).collect()
        }
        other => {
            return Err(EngineError::Unsupported(format!("window function {other}")));
        }
    };

    let out: Vec<Value> = grouping
        .gids
        .iter()
        .map(|&g| per_group[g].clone())
        .collect();
    Ok(Column::from_values(&out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::seeded_uniform;
    use crate::table::TableBuilder;
    use verdict_sql::parse_expression;

    fn frame() -> Table {
        TableBuilder::new()
            .str_column(
                "city",
                vec!["a", "a", "b", "b", "b"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
            )
            .float_column("cnt", vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .build()
            .unwrap()
    }

    fn window_of(sql: &str) -> FunctionCall {
        match parse_expression(sql).unwrap() {
            Expr::Function(f) => f,
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn partitioned_sum() {
        let f = frame();
        let call = window_of("sum(cnt) OVER (PARTITION BY city)");
        let mut rng = seeded_uniform(1);
        let col = eval_window(&call, &f, &mut rng).unwrap();
        assert_eq!(col.value_at(0), Value::Float(3.0));
        assert_eq!(col.value_at(1), Value::Float(3.0));
        assert_eq!(col.value_at(2), Value::Float(12.0));
    }

    #[test]
    fn global_count_star_window() {
        let f = frame();
        let call = window_of("count(*) OVER ()");
        let mut rng = seeded_uniform(1);
        let col = eval_window(&call, &f, &mut rng).unwrap();
        assert!(col.iter().all(|v| v == Value::Int(5)));
    }

    #[test]
    fn collect_finds_unique_window_calls() {
        let e1 = parse_expression("sum(cnt) OVER (PARTITION BY city) + 1").unwrap();
        let e2 = parse_expression("sum(cnt) OVER (PARTITION BY city) * 2").unwrap();
        let calls = collect_window_calls(&[&e1, &e2]);
        assert_eq!(calls.len(), 1);
    }

    #[test]
    fn unsupported_window_order_by_is_rejected() {
        let f = frame();
        let call = window_of("sum(cnt) OVER (PARTITION BY city ORDER BY cnt)");
        let mut rng = seeded_uniform(1);
        assert!(eval_window(&call, &f, &mut rng).is_err());
    }
}
