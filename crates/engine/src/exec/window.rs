//! Window (analytic) function evaluation.
//!
//! VerdictDB's rewritten queries use partition-scoped window aggregates such
//! as `sum(count(*)) OVER (PARTITION BY group_column)` to compute per-group
//! totals across subsamples (paper Query 9).  The engine therefore supports
//! `sum`, `count`, `avg`, `min`, and `max` over a `PARTITION BY` clause (no
//! ordering / frame clauses, which the rewriter never emits).

use crate::error::{EngineError, EngineResult};
use crate::expr::{eval_expr, EvalContext};
use crate::table::{Column, Table};
use crate::value::{KeyValue, Value};
use std::collections::HashMap;
use verdict_sql::ast::{Expr, FunctionCall};
use verdict_sql::dialect::GenericDialect;
use verdict_sql::printer::print_expr;

/// Collects the unique window-function calls appearing in the expressions.
pub fn collect_window_calls(exprs: &[&Expr]) -> Vec<FunctionCall> {
    let mut seen: Vec<String> = Vec::new();
    let mut out: Vec<FunctionCall> = Vec::new();
    for expr in exprs {
        verdict_sql::visitor::walk_expr(expr, &mut |e| {
            if let Expr::Function(f) = e {
                if f.over.is_some() {
                    let key = print_expr(e, &GenericDialect);
                    if !seen.contains(&key) {
                        seen.push(key);
                        out.push(f.clone());
                    }
                }
            }
        });
    }
    out
}

/// Evaluates one window call over the frame, returning a column with one
/// value per input row.
pub fn eval_window(
    call: &FunctionCall,
    frame: &Table,
    rng: &mut dyn FnMut() -> f64,
) -> EngineResult<Column> {
    let spec = call.over.as_ref().ok_or_else(|| {
        EngineError::Execution("eval_window called on a non-window function".into())
    })?;
    if !spec.order_by.is_empty() {
        return Err(EngineError::Unsupported(
            "window ORDER BY / frame clauses are not supported".into(),
        ));
    }
    let n = frame.num_rows();

    // Partition keys.
    let mut key_cols: Vec<Column> = Vec::with_capacity(spec.partition_by.len());
    for p in &spec.partition_by {
        let mut ctx = EvalContext { table: frame, rng };
        key_cols.push(eval_expr(p, &mut ctx)?);
    }

    // Argument column (count(*) has no argument to evaluate).
    let is_count_star = call.name == "count"
        && call.args.len() == 1
        && matches!(call.args[0], Expr::Wildcard);
    let arg_col: Option<Column> = if is_count_star || call.args.is_empty() {
        None
    } else {
        let mut ctx = EvalContext { table: frame, rng };
        Some(eval_expr(&call.args[0], &mut ctx)?)
    };

    // Group rows by partition key.
    let mut partitions: HashMap<Vec<KeyValue>, Vec<usize>> = HashMap::new();
    for row in 0..n {
        let key: Vec<KeyValue> = key_cols.iter().map(|c| KeyValue::from_value(&c[row])).collect();
        partitions.entry(key).or_default().push(row);
    }

    // Compute the aggregate per partition.
    let mut out = vec![Value::Null; n];
    for rows in partitions.values() {
        let agg = match call.name.as_str() {
            "count" => {
                let c = match &arg_col {
                    None => rows.len() as i64,
                    Some(col) => rows.iter().filter(|&&r| !col[r].is_null()).count() as i64,
                };
                Value::Int(c)
            }
            "sum" | "avg" => {
                let col = arg_col.as_ref().ok_or_else(|| {
                    EngineError::Execution(format!("window {} requires an argument", call.name))
                })?;
                let values: Vec<f64> = rows.iter().filter_map(|&r| col[r].as_f64()).collect();
                if values.is_empty() {
                    Value::Null
                } else if call.name == "sum" {
                    Value::Float(values.iter().sum())
                } else {
                    Value::Float(values.iter().sum::<f64>() / values.len() as f64)
                }
            }
            "min" | "max" => {
                let col = arg_col.as_ref().ok_or_else(|| {
                    EngineError::Execution(format!("window {} requires an argument", call.name))
                })?;
                let mut best: Option<Value> = None;
                for &r in rows {
                    let v = &col[r];
                    if v.is_null() {
                        continue;
                    }
                    let replace = match &best {
                        None => true,
                        Some(b) => match v.sql_cmp(b) {
                            Some(std::cmp::Ordering::Less) => call.name == "min",
                            Some(std::cmp::Ordering::Greater) => call.name == "max",
                            _ => false,
                        },
                    };
                    if replace {
                        best = Some(v.clone());
                    }
                }
                best.unwrap_or(Value::Null)
            }
            other => {
                return Err(EngineError::Unsupported(format!("window function {other}")));
            }
        };
        for &r in rows {
            out[r] = agg.clone();
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::seeded_uniform;
    use crate::table::TableBuilder;
    use verdict_sql::parse_expression;

    fn frame() -> Table {
        TableBuilder::new()
            .str_column(
                "city",
                vec!["a", "a", "b", "b", "b"].into_iter().map(String::from).collect(),
            )
            .float_column("cnt", vec![1.0, 2.0, 3.0, 4.0, 5.0])
            .build()
            .unwrap()
    }

    fn window_of(sql: &str) -> FunctionCall {
        match parse_expression(sql).unwrap() {
            Expr::Function(f) => f,
            other => panic!("expected function, got {other:?}"),
        }
    }

    #[test]
    fn partitioned_sum() {
        let f = frame();
        let call = window_of("sum(cnt) OVER (PARTITION BY city)");
        let mut rng = seeded_uniform(1);
        let col = eval_window(&call, &f, &mut rng).unwrap();
        assert_eq!(col[0], Value::Float(3.0));
        assert_eq!(col[1], Value::Float(3.0));
        assert_eq!(col[2], Value::Float(12.0));
    }

    #[test]
    fn global_count_star_window() {
        let f = frame();
        let call = window_of("count(*) OVER ()");
        let mut rng = seeded_uniform(1);
        let col = eval_window(&call, &f, &mut rng).unwrap();
        assert!(col.iter().all(|v| v == &Value::Int(5)));
    }

    #[test]
    fn collect_finds_unique_window_calls() {
        let e1 = parse_expression("sum(cnt) OVER (PARTITION BY city) + 1").unwrap();
        let e2 = parse_expression("sum(cnt) OVER (PARTITION BY city) * 2").unwrap();
        let calls = collect_window_calls(&[&e1, &e2]);
        assert_eq!(calls.len(), 1);
    }

    #[test]
    fn unsupported_window_order_by_is_rejected() {
        let f = frame();
        let call = window_of("sum(cnt) OVER (PARTITION BY city ORDER BY cnt)");
        let mut rng = seeded_uniform(1);
        assert!(eval_window(&call, &f, &mut rng).is_err());
    }
}
