//! Vectorized expression evaluation over an in-memory [`Table`].
//!
//! Expressions are evaluated directly from the AST, producing one output
//! column per call.  Aggregate and window function calls are *not* handled
//! here — the executor replaces them with plain column references into the
//! aggregated frame before projecting (see `exec::aggregate`).

use crate::error::{EngineError, EngineResult};
use crate::functions::{eval_scalar_function, is_scalar_function, like_match};
use crate::table::{Column, Table};
use crate::value::{DataType, Value};
use verdict_sql::ast::{BinaryOp, CastType, Expr, Literal, UnaryOp};

/// Evaluation context: the frame the expression is evaluated against plus a
/// uniform random source for `rand()`.
pub struct EvalContext<'a> {
    pub table: &'a Table,
    pub rng: &'a mut dyn FnMut() -> f64,
}

/// Evaluates `expr` against every row of the context's table, returning a column.
pub fn eval_expr(expr: &Expr, ctx: &mut EvalContext<'_>) -> EngineResult<Column> {
    let n = ctx.table.num_rows();
    match expr {
        Expr::Column { table, name } => {
            let idx = ctx.table.schema.resolve(table.as_deref(), name)?;
            Ok(ctx.table.columns[idx].clone())
        }
        Expr::Literal(lit) => Ok(vec![literal_value(lit); n]),
        Expr::Wildcard => Err(EngineError::Execution(
            "'*' is only valid inside count(*) or a select list".into(),
        )),
        Expr::BinaryOp { left, op, right } => {
            let l = eval_expr(left, ctx)?;
            let r = eval_expr(right, ctx)?;
            eval_binary(&l, *op, &r)
        }
        Expr::UnaryOp { op, expr } => {
            let inner = eval_expr(expr, ctx)?;
            Ok(match op {
                UnaryOp::Not => inner
                    .into_iter()
                    .map(|v| match v.as_bool() {
                        Some(b) => Value::Bool(!b),
                        None => Value::Null,
                    })
                    .collect(),
                UnaryOp::Minus => inner
                    .into_iter()
                    .map(|v| match v {
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        _ => Value::Null,
                    })
                    .collect(),
                UnaryOp::Plus => inner,
            })
        }
        Expr::Function(f) => {
            if f.over.is_some() {
                return Err(EngineError::Execution(
                    "window function must be resolved by the executor before evaluation".into(),
                ));
            }
            if verdict_sql::ast::is_aggregate_function(&f.name) {
                return Err(EngineError::Execution(format!(
                    "aggregate function {} not allowed in this context",
                    f.name
                )));
            }
            if !is_scalar_function(&f.name) {
                return Err(EngineError::Unsupported(format!("function {}", f.name)));
            }
            let mut args = Vec::with_capacity(f.args.len());
            for a in &f.args {
                args.push(eval_expr(a, ctx)?);
            }
            eval_scalar_function(&f.name, &args, n, ctx.rng)
        }
        Expr::Case { operand, when_then, else_expr } => {
            let operand_col = match operand {
                Some(op) => Some(eval_expr(op, ctx)?),
                None => None,
            };
            let mut branches = Vec::with_capacity(when_then.len());
            for (w, t) in when_then {
                let cond = eval_expr(w, ctx)?;
                let val = eval_expr(t, ctx)?;
                branches.push((cond, val));
            }
            let else_col = match else_expr {
                Some(e) => Some(eval_expr(e, ctx)?),
                None => None,
            };
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut chosen: Option<Value> = None;
                for (cond, val) in &branches {
                    let fire = match &operand_col {
                        Some(op_col) => op_col[i] == cond[i] && !op_col[i].is_null(),
                        None => cond[i].as_bool().unwrap_or(false),
                    };
                    if fire {
                        chosen = Some(val[i].clone());
                        break;
                    }
                }
                out.push(chosen.unwrap_or_else(|| {
                    else_col.as_ref().map(|c| c[i].clone()).unwrap_or(Value::Null)
                }));
            }
            Ok(out)
        }
        Expr::IsNull { expr, negated } => {
            let inner = eval_expr(expr, ctx)?;
            Ok(inner
                .into_iter()
                .map(|v| Value::Bool(v.is_null() != *negated))
                .collect())
        }
        Expr::InList { expr, list, negated } => {
            let target = eval_expr(expr, ctx)?;
            let mut list_cols = Vec::with_capacity(list.len());
            for e in list {
                list_cols.push(eval_expr(e, ctx)?);
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if target[i].is_null() {
                    out.push(Value::Null);
                    continue;
                }
                let found = list_cols.iter().any(|c| c[i] == target[i]);
                out.push(Value::Bool(found != *negated));
            }
            Ok(out)
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval_expr(expr, ctx)?;
            let lo = eval_expr(low, ctx)?;
            let hi = eval_expr(high, ctx)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let inside = match (v[i].sql_cmp(&lo[i]), v[i].sql_cmp(&hi[i])) {
                    (Some(a), Some(b)) => {
                        a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater
                    }
                    _ => {
                        out.push(Value::Null);
                        continue;
                    }
                };
                out.push(Value::Bool(inside != *negated));
            }
            Ok(out)
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval_expr(expr, ctx)?;
            let p = eval_expr(pattern, ctx)?;
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                match (v[i].as_str_lossy(), p[i].as_str_lossy()) {
                    (Some(text), Some(pat)) => {
                        out.push(Value::Bool(like_match(&text, &pat) != *negated))
                    }
                    _ => out.push(Value::Null),
                }
            }
            Ok(out)
        }
        Expr::Cast { expr, data_type } => {
            let inner = eval_expr(expr, ctx)?;
            Ok(inner.into_iter().map(|v| cast_value(v, *data_type)).collect())
        }
        Expr::Nested(e) => eval_expr(e, ctx),
        Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
            Err(EngineError::Execution(
                "subquery must be resolved by the executor before evaluation".into(),
            ))
        }
    }
}

/// Converts an AST literal into a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Bool(*b),
        Literal::Integer(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::String(s) => Value::Str(s.clone()),
    }
}

fn cast_value(v: Value, to: CastType) -> Value {
    if v.is_null() {
        return Value::Null;
    }
    match to {
        CastType::Integer => match &v {
            Value::Str(s) => s.trim().parse::<i64>().map(Value::Int).unwrap_or(Value::Null),
            _ => v.as_i64().map(Value::Int).unwrap_or(Value::Null),
        },
        CastType::Double => match &v {
            Value::Str(s) => s.trim().parse::<f64>().map(Value::Float).unwrap_or(Value::Null),
            _ => v.as_f64().map(Value::Float).unwrap_or(Value::Null),
        },
        CastType::Varchar => v.as_str_lossy().map(Value::Str).unwrap_or(Value::Null),
        CastType::Boolean => v.as_bool().map(Value::Bool).unwrap_or(Value::Null),
    }
}

fn eval_binary(left: &Column, op: BinaryOp, right: &Column) -> EngineResult<Column> {
    let n = left.len();
    debug_assert_eq!(n, right.len());
    let mut out = Vec::with_capacity(n);
    match op {
        BinaryOp::And => {
            for i in 0..n {
                out.push(match (left[i].as_bool(), right[i].as_bool()) {
                    (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                });
            }
        }
        BinaryOp::Or => {
            for i in 0..n {
                out.push(match (left[i].as_bool(), right[i].as_bool()) {
                    (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                });
            }
        }
        BinaryOp::Concat => {
            for i in 0..n {
                out.push(match (left[i].as_str_lossy(), right[i].as_str_lossy()) {
                    (Some(a), Some(b)) => Value::Str(format!("{a}{b}")),
                    _ => Value::Null,
                });
            }
        }
        op if op.is_comparison() => {
            for i in 0..n {
                let cmp = left[i].sql_cmp(&right[i]);
                out.push(match cmp {
                    None => Value::Null,
                    Some(ord) => {
                        use std::cmp::Ordering::*;
                        let b = match op {
                            BinaryOp::Eq => ord == Equal,
                            BinaryOp::NotEq => ord != Equal,
                            BinaryOp::Lt => ord == Less,
                            BinaryOp::LtEq => ord != Greater,
                            BinaryOp::Gt => ord == Greater,
                            BinaryOp::GtEq => ord != Less,
                            _ => unreachable!(),
                        };
                        Value::Bool(b)
                    }
                });
            }
        }
        _ => {
            // preserve integer arithmetic when both sides are integers
            for i in 0..n {
                let v = match (&left[i], &right[i]) {
                    (Value::Null, _) | (_, Value::Null) => Value::Null,
                    (Value::Int(a), Value::Int(b)) => match op {
                        BinaryOp::Plus => Value::Int(a.wrapping_add(*b)),
                        BinaryOp::Minus => Value::Int(a.wrapping_sub(*b)),
                        BinaryOp::Multiply => Value::Int(a.wrapping_mul(*b)),
                        BinaryOp::Divide => {
                            if *b == 0 {
                                Value::Null
                            } else {
                                // SQL engines differ; we follow Hive/Spark and
                                // return a double for division.
                                Value::Float(*a as f64 / *b as f64)
                            }
                        }
                        BinaryOp::Modulo => {
                            if *b == 0 {
                                Value::Null
                            } else {
                                Value::Int(a % b)
                            }
                        }
                        _ => unreachable!(),
                    },
                    (a, b) => match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => match op {
                            BinaryOp::Plus => Value::Float(x + y),
                            BinaryOp::Minus => Value::Float(x - y),
                            BinaryOp::Multiply => Value::Float(x * y),
                            BinaryOp::Divide => {
                                if y == 0.0 {
                                    Value::Null
                                } else {
                                    Value::Float(x / y)
                                }
                            }
                            BinaryOp::Modulo => {
                                if y == 0.0 {
                                    Value::Null
                                } else {
                                    Value::Float(x % y)
                                }
                            }
                            _ => unreachable!(),
                        },
                        _ => {
                            return Err(EngineError::TypeMismatch(format!(
                                "cannot apply {op} to {a} and {b}"
                            )))
                        }
                    },
                };
                out.push(v);
            }
        }
    }
    Ok(out)
}

/// Converts a boolean column into a selection mask (NULL counts as false).
pub fn column_to_mask(col: &Column) -> Vec<bool> {
    col.iter().map(|v| v.as_bool().unwrap_or(false)).collect()
}

/// Infers the static output type of an expression against a schema.  Falls
/// back to `Float` for arithmetic and `Str` when nothing better is known; the
/// engine is dynamically typed so this only affects result-set metadata.
pub fn infer_type(expr: &Expr, schema: &crate::schema::Schema) -> DataType {
    match expr {
        Expr::Column { table, name } => schema
            .resolve(table.as_deref(), name)
            .map(|i| schema.fields[i].data_type)
            .unwrap_or(DataType::Str),
        Expr::Literal(Literal::Integer(_)) => DataType::Int,
        Expr::Literal(Literal::Float(_)) => DataType::Float,
        Expr::Literal(Literal::Boolean(_)) => DataType::Bool,
        Expr::Literal(Literal::String(_)) | Expr::Literal(Literal::Null) => DataType::Str,
        Expr::BinaryOp { left, op, right } => {
            if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                DataType::Bool
            } else if matches!(op, BinaryOp::Concat) {
                DataType::Str
            } else {
                let lt = infer_type(left, schema);
                let rt = infer_type(right, schema);
                if matches!(op, BinaryOp::Divide) {
                    DataType::Float
                } else {
                    lt.unify(rt)
                }
            }
        }
        Expr::UnaryOp { op: UnaryOp::Not, .. } => DataType::Bool,
        Expr::UnaryOp { expr, .. } => infer_type(expr, schema),
        Expr::Function(f) => match f.name.as_str() {
            "count" | "ndv" | "approx_count_distinct" | "verdict_hash" | "fnv_hash" | "hash"
            | "crc32" | "strtol" | "length" => DataType::Int,
            "upper" | "lower" | "concat" | "substr" | "substring" => DataType::Str,
            "min" | "max" | "coalesce" | "least" | "greatest" | "if" | "nullif" => f
                .args
                .first()
                .map(|a| infer_type(a, schema))
                .unwrap_or(DataType::Float),
            _ => DataType::Float,
        },
        Expr::Case { when_then, else_expr, .. } => when_then
            .first()
            .map(|(_, t)| infer_type(t, schema))
            .or_else(|| else_expr.as_ref().map(|e| infer_type(e, schema)))
            .unwrap_or(DataType::Str),
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::Exists { .. } => DataType::Bool,
        Expr::Cast { data_type, .. } => match data_type {
            CastType::Integer => DataType::Int,
            CastType::Double => DataType::Float,
            CastType::Varchar => DataType::Str,
            CastType::Boolean => DataType::Bool,
        },
        Expr::Nested(e) => infer_type(e, schema),
        Expr::ScalarSubquery(_) => DataType::Float,
        Expr::Wildcard => DataType::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::seeded_uniform;
    use crate::table::TableBuilder;
    use verdict_sql::parse_expression;

    fn frame() -> Table {
        TableBuilder::new()
            .int_column("a", vec![1, 2, 3, 4])
            .float_column("price", vec![10.0, 25.0, 7.5, 100.0])
            .str_column(
                "city",
                vec!["aa", "dtw", "aa", "chi"].into_iter().map(String::from).collect(),
            )
            .build()
            .unwrap()
    }

    fn eval(sql: &str, t: &Table) -> Column {
        let e = parse_expression(sql).unwrap();
        let mut rng = seeded_uniform(7);
        let mut ctx = EvalContext { table: t, rng: &mut rng };
        eval_expr(&e, &mut ctx).unwrap()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let t = frame();
        let c = eval("a * 2 + 1", &t);
        assert_eq!(c, vec![Value::Int(3), Value::Int(5), Value::Int(7), Value::Int(9)]);
        let c = eval("price > 10", &t);
        assert_eq!(
            c,
            vec![Value::Bool(false), Value::Bool(true), Value::Bool(false), Value::Bool(true)]
        );
    }

    #[test]
    fn integer_division_returns_float() {
        let t = frame();
        let c = eval("a / 2", &t);
        assert_eq!(c[0], Value::Float(0.5));
        assert_eq!(c[3], Value::Float(2.0));
    }

    #[test]
    fn case_expression() {
        let t = frame();
        let c = eval("CASE WHEN price > 20 THEN 'big' ELSE 'small' END", &t);
        assert_eq!(c[1], Value::Str("big".into()));
        assert_eq!(c[2], Value::Str("small".into()));
    }

    #[test]
    fn in_list_and_like_and_between() {
        let t = frame();
        let c = eval("city IN ('aa', 'chi')", &t);
        assert_eq!(c, vec![Value::Bool(true), Value::Bool(false), Value::Bool(true), Value::Bool(true)]);
        let c = eval("city LIKE '%a%'", &t);
        assert_eq!(c[0], Value::Bool(true));
        assert_eq!(c[1], Value::Bool(false));
        let c = eval("price BETWEEN 7.5 AND 25", &t);
        assert_eq!(c, vec![Value::Bool(true), Value::Bool(true), Value::Bool(true), Value::Bool(false)]);
    }

    #[test]
    fn division_by_zero_is_null() {
        let t = frame();
        let c = eval("price / (a - a)", &t);
        assert!(c.iter().all(|v| v.is_null()));
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let t = frame();
        let e = parse_expression("sum(price)").unwrap();
        let mut rng = seeded_uniform(7);
        let mut ctx = EvalContext { table: &t, rng: &mut rng };
        assert!(eval_expr(&e, &mut ctx).is_err());
    }

    #[test]
    fn cast_conversions() {
        let t = frame();
        let c = eval("CAST(price AS BIGINT)", &t);
        assert_eq!(c[1], Value::Int(25));
        let c = eval("CAST(a AS VARCHAR)", &t);
        assert_eq!(c[0], Value::Str("1".into()));
    }

    #[test]
    fn type_inference() {
        let t = frame();
        assert_eq!(infer_type(&parse_expression("a + 1").unwrap(), &t.schema), DataType::Int);
        assert_eq!(infer_type(&parse_expression("price > 1").unwrap(), &t.schema), DataType::Bool);
        assert_eq!(infer_type(&parse_expression("a / 2").unwrap(), &t.schema), DataType::Float);
        assert_eq!(
            infer_type(&parse_expression("count(*)").unwrap(), &t.schema),
            DataType::Int
        );
    }
}
