//! Vectorized expression evaluation over an in-memory [`Table`].
//!
//! Expressions are evaluated directly from the AST, producing one typed
//! output [`Column`] per call.  Arithmetic, comparisons, boolean logic,
//! BETWEEN, IS NULL, and CAST run as typed kernels (see [`crate::kernels`]);
//! only genuinely dynamic constructs (CASE branches, unusual type mixes) fall
//! back to per-row [`Value`] materialisation.
//!
//! Aggregate and window function calls are *not* handled here — the executor
//! replaces them with plain column references into the aggregated frame
//! before projecting (see `exec::aggregate`).

use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::functions::{eval_scalar_function, is_scalar_function, like_match};
use crate::kernels;
use crate::table::Table;
use crate::value::{DataType, Value};
use verdict_sql::ast::{BinaryOp, CastType, Expr, Literal, UnaryOp};

/// Evaluation context: the frame the expression is evaluated against plus a
/// uniform random source for `rand()`.
pub struct EvalContext<'a> {
    /// The frame whose rows the expression is evaluated against.
    pub table: &'a Table,
    /// Uniform `[0, 1)` random source backing `rand()` calls.
    pub rng: &'a mut dyn FnMut() -> f64,
}

/// Evaluates `expr` against every row of the context's table, returning a column.
pub fn eval_expr(expr: &Expr, ctx: &mut EvalContext<'_>) -> EngineResult<Column> {
    let n = ctx.table.num_rows();
    match expr {
        Expr::Column { table, name } => {
            let idx = ctx.table.schema.resolve(table.as_deref(), name)?;
            Ok(ctx.table.columns[idx].clone())
        }
        Expr::Literal(lit) => Ok(Column::repeat(&literal_value(lit), n)),
        Expr::Wildcard => Err(EngineError::Execution(
            "'*' is only valid inside count(*) or a select list".into(),
        )),
        Expr::BinaryOp { left, op, right } => {
            let l = eval_expr(left, ctx)?;
            let r = eval_expr(right, ctx)?;
            kernels::binary_op(&l, *op, &r)
        }
        Expr::UnaryOp { op, expr } => {
            let inner = eval_expr(expr, ctx)?;
            Ok(match op {
                UnaryOp::Not => kernels::bool_not(&inner),
                UnaryOp::Minus => kernels::negate(&inner),
                UnaryOp::Plus => inner,
            })
        }
        Expr::Function(f) => {
            if f.over.is_some() {
                return Err(EngineError::Execution(
                    "window function must be resolved by the executor before evaluation".into(),
                ));
            }
            if verdict_sql::ast::is_aggregate_function(&f.name) {
                return Err(EngineError::Execution(format!(
                    "aggregate function {} not allowed in this context",
                    f.name
                )));
            }
            if !is_scalar_function(&f.name) {
                return Err(EngineError::Unsupported(format!("function {}", f.name)));
            }
            let mut args = Vec::with_capacity(f.args.len());
            for a in &f.args {
                args.push(eval_expr(a, ctx)?);
            }
            eval_scalar_function(&f.name, &args, n, ctx.rng)
        }
        Expr::Case {
            operand,
            when_then,
            else_expr,
        } => {
            // Each branch's firing condition becomes a boolean mask; the
            // output is assembled row-wise from the first firing branch.
            let mut branch_cols: Vec<Column> = Vec::with_capacity(when_then.len());
            let mut fire_masks: Vec<crate::selvec::SelVec> = Vec::with_capacity(when_then.len());
            let operand_col = match operand {
                Some(op) => Some(eval_expr(op, ctx)?),
                None => None,
            };
            for (w, t) in when_then {
                let cond = eval_expr(w, ctx)?;
                let mask = match &operand_col {
                    Some(op_col) => {
                        kernels::column_to_mask(&kernels::compare(op_col, BinaryOp::Eq, &cond))
                    }
                    None => kernels::column_to_mask(&cond),
                };
                fire_masks.push(mask);
                branch_cols.push(eval_expr(t, ctx)?);
            }
            let else_col = match else_expr {
                Some(e) => Some(eval_expr(e, ctx)?),
                None => None,
            };
            let mut out = Vec::with_capacity(n);
            'rows: for i in 0..n {
                for (mask, col) in fire_masks.iter().zip(branch_cols.iter()) {
                    if mask.get(i) {
                        out.push(col.value_at(i));
                        continue 'rows;
                    }
                }
                out.push(
                    else_col
                        .as_ref()
                        .map(|c| c.value_at(i))
                        .unwrap_or(Value::Null),
                );
            }
            Ok(Column::from_values(&out))
        }
        Expr::IsNull { expr, negated } => {
            let inner = eval_expr(expr, ctx)?;
            Ok(kernels::is_null_column(&inner, *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let target = eval_expr(expr, ctx)?;
            let mut eq_masks: Vec<crate::selvec::SelVec> = Vec::with_capacity(list.len());
            for e in list {
                let item = eval_expr(e, ctx)?;
                eq_masks.push(kernels::column_to_mask(&kernels::compare(
                    &target,
                    BinaryOp::Eq,
                    &item,
                )));
            }
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                if target.is_null_at(i) {
                    out.push(None);
                    continue;
                }
                let found = eq_masks.iter().any(|m| m.get(i));
                out.push(Some(found != *negated));
            }
            Ok(Column::from_opt_bool(out))
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(expr, ctx)?;
            let lo = eval_expr(low, ctx)?;
            let hi = eval_expr(high, ctx)?;
            let ge = kernels::compare(&v, BinaryOp::GtEq, &lo);
            let le = kernels::compare(&v, BinaryOp::LtEq, &hi);
            // NULL when either bound comparison is NULL (matching sql_cmp),
            // which is stricter than 3VL AND.
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                out.push(match (ge.bool_at(i), le.bool_at(i)) {
                    (Some(a), Some(b)) => Some((a && b) != *negated),
                    _ => None,
                });
            }
            Ok(Column::from_opt_bool(out))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_expr(expr, ctx)?;
            let p = eval_expr(pattern, ctx)?;
            let mut out = Vec::with_capacity(n);
            match (v.as_strs(), p.as_strs()) {
                (Some(texts), Some(pats)) => {
                    for i in 0..n {
                        out.push(if v.is_valid(i) && p.is_valid(i) {
                            Some(like_match(&texts[i], &pats[i]) != *negated)
                        } else {
                            None
                        });
                    }
                }
                _ => {
                    for i in 0..n {
                        match (v.value_at(i).as_str_lossy(), p.value_at(i).as_str_lossy()) {
                            (Some(text), Some(pat)) => {
                                out.push(Some(like_match(&text, &pat) != *negated))
                            }
                            _ => out.push(None),
                        }
                    }
                }
            }
            Ok(Column::from_opt_bool(out))
        }
        Expr::Cast { expr, data_type } => {
            let inner = eval_expr(expr, ctx)?;
            Ok(kernels::cast_column(&inner, *data_type))
        }
        Expr::Nested(e) => eval_expr(e, ctx),
        Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
            Err(EngineError::Execution(
                "subquery must be resolved by the executor before evaluation".into(),
            ))
        }
    }
}

/// Converts an AST literal into a runtime value.
pub fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Null => Value::Null,
        Literal::Boolean(b) => Value::Bool(*b),
        Literal::Integer(i) => Value::Int(*i),
        Literal::Float(f) => Value::Float(*f),
        Literal::String(s) => Value::Str(s.clone()),
    }
}

/// Converts a boolean column into a packed selection mask (NULL counts as
/// false).
pub fn column_to_mask(col: &Column) -> crate::selvec::SelVec {
    kernels::column_to_mask(col)
}

/// Infers the static output type of an expression against a schema.  Falls
/// back to `Float` for arithmetic and `Str` when nothing better is known; the
/// engine is dynamically typed so this only affects result-set metadata.
pub fn infer_type(expr: &Expr, schema: &crate::schema::Schema) -> DataType {
    match expr {
        Expr::Column { table, name } => schema
            .resolve(table.as_deref(), name)
            .map(|i| schema.fields[i].data_type)
            .unwrap_or(DataType::Str),
        Expr::Literal(Literal::Integer(_)) => DataType::Int,
        Expr::Literal(Literal::Float(_)) => DataType::Float,
        Expr::Literal(Literal::Boolean(_)) => DataType::Bool,
        Expr::Literal(Literal::String(_)) | Expr::Literal(Literal::Null) => DataType::Str,
        Expr::BinaryOp { left, op, right } => {
            if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                DataType::Bool
            } else if matches!(op, BinaryOp::Concat) {
                DataType::Str
            } else {
                let lt = infer_type(left, schema);
                let rt = infer_type(right, schema);
                if matches!(op, BinaryOp::Divide) {
                    DataType::Float
                } else {
                    lt.unify(rt)
                }
            }
        }
        Expr::UnaryOp {
            op: UnaryOp::Not, ..
        } => DataType::Bool,
        Expr::UnaryOp { expr, .. } => infer_type(expr, schema),
        Expr::Function(f) => match f.name.as_str() {
            "count"
            | "ndv"
            | "approx_count_distinct"
            | "verdict_hash"
            | "fnv_hash"
            | "hash"
            | "crc32"
            | "strtol"
            | "length" => DataType::Int,
            "upper" | "lower" | "concat" | "substr" | "substring" => DataType::Str,
            "min" | "max" | "coalesce" | "least" | "greatest" | "if" | "nullif" => f
                .args
                .first()
                .map(|a| infer_type(a, schema))
                .unwrap_or(DataType::Float),
            _ => DataType::Float,
        },
        Expr::Case {
            when_then,
            else_expr,
            ..
        } => when_then
            .first()
            .map(|(_, t)| infer_type(t, schema))
            .or_else(|| else_expr.as_ref().map(|e| infer_type(e, schema)))
            .unwrap_or(DataType::Str),
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::InSubquery { .. }
        | Expr::Between { .. }
        | Expr::Like { .. }
        | Expr::Exists { .. } => DataType::Bool,
        Expr::Cast { data_type, .. } => match data_type {
            CastType::Integer => DataType::Int,
            CastType::Double => DataType::Float,
            CastType::Varchar => DataType::Str,
            CastType::Boolean => DataType::Bool,
        },
        Expr::Nested(e) => infer_type(e, schema),
        Expr::ScalarSubquery(_) => DataType::Float,
        Expr::Wildcard => DataType::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::seeded_uniform;
    use crate::table::TableBuilder;
    use verdict_sql::parse_expression;

    fn frame() -> Table {
        TableBuilder::new()
            .int_column("a", vec![1, 2, 3, 4])
            .float_column("price", vec![10.0, 25.0, 7.5, 100.0])
            .str_column(
                "city",
                vec!["aa", "dtw", "aa", "chi"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
            )
            .build()
            .unwrap()
    }

    fn eval(sql: &str, t: &Table) -> Vec<Value> {
        let e = parse_expression(sql).unwrap();
        let mut rng = seeded_uniform(7);
        let mut ctx = EvalContext {
            table: t,
            rng: &mut rng,
        };
        eval_expr(&e, &mut ctx).unwrap().to_values()
    }

    #[test]
    fn arithmetic_and_comparison() {
        let t = frame();
        let c = eval("a * 2 + 1", &t);
        assert_eq!(
            c,
            vec![Value::Int(3), Value::Int(5), Value::Int(7), Value::Int(9)]
        );
        let c = eval("price > 10", &t);
        assert_eq!(
            c,
            vec![
                Value::Bool(false),
                Value::Bool(true),
                Value::Bool(false),
                Value::Bool(true)
            ]
        );
    }

    #[test]
    fn integer_division_returns_float() {
        let t = frame();
        let c = eval("a / 2", &t);
        assert_eq!(c[0], Value::Float(0.5));
        assert_eq!(c[3], Value::Float(2.0));
    }

    #[test]
    fn case_expression() {
        let t = frame();
        let c = eval("CASE WHEN price > 20 THEN 'big' ELSE 'small' END", &t);
        assert_eq!(c[1], Value::Str("big".into()));
        assert_eq!(c[2], Value::Str("small".into()));
    }

    #[test]
    fn in_list_and_like_and_between() {
        let t = frame();
        let c = eval("city IN ('aa', 'chi')", &t);
        assert_eq!(
            c,
            vec![
                Value::Bool(true),
                Value::Bool(false),
                Value::Bool(true),
                Value::Bool(true)
            ]
        );
        let c = eval("city LIKE '%a%'", &t);
        assert_eq!(c[0], Value::Bool(true));
        assert_eq!(c[1], Value::Bool(false));
        let c = eval("price BETWEEN 7.5 AND 25", &t);
        assert_eq!(
            c,
            vec![
                Value::Bool(true),
                Value::Bool(true),
                Value::Bool(true),
                Value::Bool(false)
            ]
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let t = frame();
        let c = eval("price / (a - a)", &t);
        assert!(c.iter().all(|v| v.is_null()));
    }

    #[test]
    fn aggregates_rejected_in_scalar_context() {
        let t = frame();
        let e = parse_expression("sum(price)").unwrap();
        let mut rng = seeded_uniform(7);
        let mut ctx = EvalContext {
            table: &t,
            rng: &mut rng,
        };
        assert!(eval_expr(&e, &mut ctx).is_err());
    }

    #[test]
    fn cast_conversions() {
        let t = frame();
        let c = eval("CAST(price AS BIGINT)", &t);
        assert_eq!(c[1], Value::Int(25));
        let c = eval("CAST(a AS VARCHAR)", &t);
        assert_eq!(c[0], Value::Str("1".into()));
    }

    #[test]
    fn null_literal_comparisons_are_null() {
        let t = frame();
        let c = eval("a = NULL", &t);
        assert!(c.iter().all(|v| v.is_null()));
        let c = eval("a IS NULL", &t);
        assert!(c.iter().all(|v| v == &Value::Bool(false)));
        let c = eval("a IS NOT NULL", &t);
        assert!(c.iter().all(|v| v == &Value::Bool(true)));
    }

    #[test]
    fn type_inference() {
        let t = frame();
        assert_eq!(
            infer_type(&parse_expression("a + 1").unwrap(), &t.schema),
            DataType::Int
        );
        assert_eq!(
            infer_type(&parse_expression("price > 1").unwrap(), &t.schema),
            DataType::Bool
        );
        assert_eq!(
            infer_type(&parse_expression("a / 2").unwrap(), &t.schema),
            DataType::Float
        );
        assert_eq!(
            infer_type(&parse_expression("count(*)").unwrap(), &t.schema),
            DataType::Int
        );
    }
}
