//! Scalar SQL functions.
//!
//! VerdictDB requires the underlying database to support `rand()`, a hash
//! function, window functions, and `CREATE TABLE AS SELECT` (§2.1).  This
//! module implements `rand()`, the hash family (`verdict_hash`, `fnv_hash`,
//! `hash`, `crc32`), and the usual arithmetic/string helpers that appear in
//! rewritten queries (`floor`, `round`, `sqrt`, `case` arithmetic, …).

use crate::error::{EngineError, EngineResult};
use crate::table::Column;
use crate::value::Value;
use rand::Rng;

/// A stable 64-bit FNV-1a hash of a value's canonical byte representation.
///
/// Hashed ("universe") samples only need a *uniform* deterministic hash; the
/// exact algorithm the paper used (md5 / crc32 / fnv) is irrelevant to the
/// statistics, so a fast FNV-1a is a faithful substitute.
pub fn fnv1a_hash_value(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        Value::Null => feed(b"\0null"),
        Value::Int(i) => feed(&i.to_le_bytes()),
        Value::Float(f) => {
            // canonicalise integral floats so Int(5) and Float(5.0) hash alike
            if f.fract() == 0.0 && f.abs() < 9.0e18 {
                feed(&(*f as i64).to_le_bytes())
            } else {
                feed(&f.to_bits().to_le_bytes())
            }
        }
        Value::Str(s) => feed(s.as_bytes()),
        Value::Bool(b) => feed(&[*b as u8]),
    }
    h
}

/// Returns true when `name` is a scalar function this module can evaluate.
pub fn is_scalar_function(name: &str) -> bool {
    const NAMES: &[&str] = &[
        "rand", "floor", "ceil", "ceiling", "abs", "round", "sqrt", "ln", "log", "exp", "power",
        "pow", "mod", "pmod", "verdict_hash", "fnv_hash", "hash", "crc32", "strtol", "substr",
        "substring", "upper", "lower", "length", "concat", "coalesce", "least", "greatest", "if",
        "nullif", "sign",
    ];
    let lower = name.to_ascii_lowercase();
    NAMES.contains(&lower.as_str())
}

/// Evaluates a scalar function over already-evaluated argument columns.
///
/// `num_rows` is required because zero-argument functions (`rand()`) must
/// still produce one value per row.
pub fn eval_scalar_function(
    name: &str,
    args: &[Column],
    num_rows: usize,
    rng: &mut dyn FnMut() -> f64,
) -> EngineResult<Column> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "rand" => Ok((0..num_rows).map(|_| Value::Float(rng())).collect()),
        "floor" => unary_numeric(&lower, args, num_rows, |x| x.floor()),
        "ceil" | "ceiling" => unary_numeric(&lower, args, num_rows, |x| x.ceil()),
        "abs" => unary_numeric(&lower, args, num_rows, |x| x.abs()),
        "sqrt" => unary_numeric(&lower, args, num_rows, |x| x.sqrt()),
        "ln" | "log" => unary_numeric(&lower, args, num_rows, |x| x.ln()),
        "exp" => unary_numeric(&lower, args, num_rows, |x| x.exp()),
        "sign" => unary_numeric(&lower, args, num_rows, |x| x.signum()),
        "round" => {
            expect_args(&lower, args, &[1, 2])?;
            let digits: Vec<f64> = if args.len() == 2 {
                args[1].iter().map(|v| v.as_f64().unwrap_or(0.0)).collect()
            } else {
                vec![0.0; num_rows]
            };
            Ok(args[0]
                .iter()
                .zip(digits.iter())
                .map(|(v, d)| match v.as_f64() {
                    Some(x) => {
                        let scale = 10f64.powi(*d as i32);
                        Value::Float((x * scale).round() / scale)
                    }
                    None => Value::Null,
                })
                .collect())
        }
        "power" | "pow" => binary_numeric(&lower, args, |a, b| a.powf(b)),
        "mod" => binary_numeric(&lower, args, |a, b| if b == 0.0 { f64::NAN } else { a % b }),
        "pmod" => binary_numeric(&lower, args, |a, b| {
            if b == 0.0 {
                f64::NAN
            } else {
                ((a % b) + b) % b
            }
        }),
        "verdict_hash" => {
            expect_args(&lower, args, &[2])?;
            Ok(args[0]
                .iter()
                .zip(args[1].iter())
                .map(|(v, m)| {
                    let modulus = m.as_i64().unwrap_or(1).max(1) as u64;
                    if v.is_null() {
                        Value::Null
                    } else {
                        Value::Int((fnv1a_hash_value(v) % modulus) as i64)
                    }
                })
                .collect())
        }
        "fnv_hash" | "hash" | "crc32" => {
            expect_args(&lower, args, &[1])?;
            Ok(args[0]
                .iter()
                .map(|v| {
                    if v.is_null() {
                        Value::Null
                    } else {
                        // keep the result positive and within i64
                        Value::Int((fnv1a_hash_value(v) >> 1) as i64)
                    }
                })
                .collect())
        }
        "strtol" => {
            // strtol(string, base) — Redshift idiom; our hash already returns
            // integers so this is effectively a cast.
            expect_args(&lower, args, &[2])?;
            Ok(args[0]
                .iter()
                .map(|v| match v.as_i64() {
                    Some(i) => Value::Int(i),
                    None => v
                        .as_str_lossy()
                        .and_then(|s| i64::from_str_radix(s.trim(), 16).ok())
                        .map(Value::Int)
                        .unwrap_or(Value::Null),
                })
                .collect())
        }
        "substr" | "substring" => {
            expect_args(&lower, args, &[2, 3])?;
            let n = args[0].len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let s = args[0][i].as_str_lossy();
                let start = args[1][i].as_i64().unwrap_or(1).max(1) as usize;
                let len = if args.len() == 3 {
                    args[2][i].as_i64().unwrap_or(0).max(0) as usize
                } else {
                    usize::MAX
                };
                out.push(match s {
                    Some(s) => {
                        let chars: Vec<char> = s.chars().collect();
                        let begin = (start - 1).min(chars.len());
                        let end = begin.saturating_add(len).min(chars.len());
                        Value::Str(chars[begin..end].iter().collect())
                    }
                    None => Value::Null,
                });
            }
            Ok(out)
        }
        "upper" => unary_string(&lower, args, |s| s.to_uppercase()),
        "lower" => unary_string(&lower, args, |s| s.to_lowercase()),
        "length" => {
            expect_args(&lower, args, &[1])?;
            Ok(args[0]
                .iter()
                .map(|v| match v.as_str_lossy() {
                    Some(s) => Value::Int(s.chars().count() as i64),
                    None => Value::Null,
                })
                .collect())
        }
        "concat" => {
            if args.is_empty() {
                return Err(EngineError::Execution("concat requires arguments".into()));
            }
            let n = args[0].len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut s = String::new();
                let mut null = false;
                for a in args {
                    match a[i].as_str_lossy() {
                        Some(part) => s.push_str(&part),
                        None => null = true,
                    }
                }
                out.push(if null { Value::Null } else { Value::Str(s) });
            }
            Ok(out)
        }
        "coalesce" => {
            if args.is_empty() {
                return Err(EngineError::Execution("coalesce requires arguments".into()));
            }
            let n = args[0].len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let v = args
                    .iter()
                    .map(|a| a[i].clone())
                    .find(|v| !v.is_null())
                    .unwrap_or(Value::Null);
                out.push(v);
            }
            Ok(out)
        }
        "least" | "greatest" => {
            if args.is_empty() {
                return Err(EngineError::Execution(format!("{lower} requires arguments")));
            }
            let n = args[0].len();
            let want_min = lower == "least";
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut best: Option<Value> = None;
                for a in args {
                    let v = &a[i];
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v.clone(),
                        Some(b) => {
                            let keep_new = match v.sql_cmp(&b) {
                                Some(std::cmp::Ordering::Less) => want_min,
                                Some(std::cmp::Ordering::Greater) => !want_min,
                                _ => false,
                            };
                            if keep_new {
                                v.clone()
                            } else {
                                b
                            }
                        }
                    });
                }
                out.push(best.unwrap_or(Value::Null));
            }
            Ok(out)
        }
        "if" => {
            expect_args(&lower, args, &[3])?;
            Ok((0..args[0].len())
                .map(|i| {
                    if args[0][i].as_bool().unwrap_or(false) {
                        args[1][i].clone()
                    } else {
                        args[2][i].clone()
                    }
                })
                .collect())
        }
        "nullif" => {
            expect_args(&lower, args, &[2])?;
            Ok((0..args[0].len())
                .map(|i| {
                    if args[0][i] == args[1][i] {
                        Value::Null
                    } else {
                        args[0][i].clone()
                    }
                })
                .collect())
        }
        other => Err(EngineError::Unsupported(format!("scalar function {other}"))),
    }
}

fn expect_args(name: &str, args: &[Column], allowed: &[usize]) -> EngineResult<()> {
    if allowed.contains(&args.len()) {
        Ok(())
    } else {
        Err(EngineError::Execution(format!(
            "{name} expects {allowed:?} arguments, got {}",
            args.len()
        )))
    }
}

fn binary_numeric(
    name: &str,
    args: &[Column],
    f: impl Fn(f64, f64) -> f64,
) -> EngineResult<Column> {
    expect_args(name, args, &[2])?;
    Ok(args[0]
        .iter()
        .zip(args[1].iter())
        .map(|(a, b)| match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let r = f(x, y);
                if r.is_nan() {
                    Value::Null
                } else {
                    Value::Float(r)
                }
            }
            _ => Value::Null,
        })
        .collect())
}

fn unary_numeric(
    name: &str,
    args: &[Column],
    _num_rows: usize,
    f: impl Fn(f64) -> f64,
) -> EngineResult<Column> {
    expect_args(name, args, &[1])?;
    Ok(args[0]
        .iter()
        .map(|v| match v.as_f64() {
            Some(x) => Value::Float(f(x)),
            None => Value::Null,
        })
        .collect())
}

fn unary_string(name: &str, args: &[Column], f: impl Fn(&str) -> String) -> EngineResult<Column> {
    expect_args(name, args, &[1])?;
    Ok(args[0]
        .iter()
        .map(|v| match v.as_str_lossy() {
            Some(s) => Value::Str(f(&s)),
            None => Value::Null,
        })
        .collect())
}

/// Evaluates a SQL `LIKE` pattern (with `%` and `_` wildcards) against a string.
pub fn like_match(text: &str, pattern: &str) -> bool {
    // dynamic-programming match over chars
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        if p[j - 1] == '%' {
            dp[0][j] = dp[0][j - 1];
        }
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && t[i - 1] == c,
            };
        }
    }
    dp[t.len()][p.len()]
}

/// A deterministic uniform random generator seeded per query execution, used
/// when reproducible plans are required (tests, experiments).
pub fn seeded_uniform(seed: u64) -> impl FnMut() -> f64 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    move || rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Column {
        v.iter().map(|i| Value::Int(*i)).collect()
    }

    #[test]
    fn rand_produces_unit_interval_values() {
        let mut r = seeded_uniform(42);
        let col = eval_scalar_function("rand", &[], 1000, &mut r).unwrap();
        assert_eq!(col.len(), 1000);
        assert!(col.iter().all(|v| {
            let x = v.as_f64().unwrap();
            (0.0..1.0).contains(&x)
        }));
    }

    #[test]
    fn floor_and_round() {
        let mut r = seeded_uniform(0);
        let col = eval_scalar_function(
            "floor",
            &[vec![Value::Float(3.7), Value::Null]],
            2,
            &mut r,
        )
        .unwrap();
        assert_eq!(col[0], Value::Float(3.0));
        assert!(col[1].is_null());

        let col = eval_scalar_function(
            "round",
            &[vec![Value::Float(3.14159)], vec![Value::Int(2)]],
            1,
            &mut r,
        )
        .unwrap();
        assert_eq!(col[0], Value::Float(3.14));
    }

    #[test]
    fn verdict_hash_is_deterministic_and_bounded() {
        let mut r = seeded_uniform(0);
        let col = eval_scalar_function(
            "verdict_hash",
            &[ints(&[1, 2, 3, 1]), ints(&[100, 100, 100, 100])],
            4,
            &mut r,
        )
        .unwrap();
        assert_eq!(col[0], col[3]);
        assert!(col.iter().all(|v| (0..100).contains(&v.as_i64().unwrap())));
    }

    #[test]
    fn hash_uniformity_rough_check() {
        // hash 10k integers into 10 buckets; each bucket should get roughly 1000
        let n = 10_000i64;
        let mut buckets = [0usize; 10];
        for i in 0..n {
            let h = fnv1a_hash_value(&Value::Int(i)) % 10;
            buckets[h as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket count {b} too skewed");
        }
    }

    #[test]
    fn like_matching() {
        assert!(like_match("promotional items", "%promo%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("anything", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn coalesce_and_nullif() {
        let mut r = seeded_uniform(0);
        let col = eval_scalar_function(
            "coalesce",
            &[vec![Value::Null, Value::Int(1)], vec![Value::Int(9), Value::Int(2)]],
            2,
            &mut r,
        )
        .unwrap();
        assert_eq!(col, vec![Value::Int(9), Value::Int(1)]);

        let col = eval_scalar_function(
            "nullif",
            &[ints(&[1, 2]), ints(&[1, 3])],
            2,
            &mut r,
        )
        .unwrap();
        assert!(col[0].is_null());
        assert_eq!(col[1], Value::Int(2));
    }

    #[test]
    fn string_functions() {
        let mut r = seeded_uniform(0);
        let s = vec![Value::Str("VerdictDB".into())];
        let col = eval_scalar_function("lower", &[s.clone()], 1, &mut r).unwrap();
        assert_eq!(col[0], Value::Str("verdictdb".into()));
        let col = eval_scalar_function(
            "substr",
            &[s, vec![Value::Int(1)], vec![Value::Int(7)]],
            1,
            &mut r,
        )
        .unwrap();
        assert_eq!(col[0], Value::Str("Verdict".into()));
    }

    #[test]
    fn unknown_function_is_reported() {
        let mut r = seeded_uniform(0);
        let err = eval_scalar_function("frobnicate", &[], 1, &mut r).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }
}
