//! Scalar SQL functions.
//!
//! VerdictDB requires the underlying database to support `rand()`, a hash
//! function, window functions, and `CREATE TABLE AS SELECT` (§2.1).  This
//! module implements `rand()`, the hash family (`verdict_hash`, `fnv_hash`,
//! `hash`, `crc32`), and the usual arithmetic/string helpers that appear in
//! rewritten queries (`floor`, `round`, `sqrt`, `case` arithmetic, …).
//!
//! Functions evaluate over typed [`Column`]s: the numeric and hash families
//! run typed loops; the variadic/conditional helpers (`coalesce`, `if`, …)
//! use the `Value` compatibility shim since they are inherently dynamic.

use crate::column::{Column, ColumnData};
use crate::error::{EngineError, EngineResult};
use crate::value::Value;
use rand::Rng;

/// A stable 64-bit FNV-1a hash of a value's canonical byte representation.
///
/// Hashed ("universe") samples only need a *uniform* deterministic hash; the
/// exact algorithm the paper used (md5 / crc32 / fnv) is irrelevant to the
/// statistics, so a fast FNV-1a is a faithful substitute.
pub fn fnv1a_hash_value(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    let mut feed = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    match v {
        Value::Null => feed(b"\0null"),
        Value::Int(i) => feed(&i.to_le_bytes()),
        Value::Float(f) => {
            // canonicalise integral floats so Int(5) and Float(5.0) hash alike
            if f.fract() == 0.0 && f.abs() < 9.0e18 {
                feed(&(*f as i64).to_le_bytes())
            } else {
                feed(&f.to_bits().to_le_bytes())
            }
        }
        Value::Str(s) => feed(s.as_bytes()),
        Value::Bool(b) => feed(&[*b as u8]),
    }
    h
}

/// Typed FNV-1a hashing of a whole column (NULL rows yield `None`), matching
/// [`fnv1a_hash_value`] bit-for-bit without materialising values.
pub(crate) fn fnv_hash_column_raw(col: &Column) -> Vec<Option<u64>> {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    #[inline]
    fn feed(mut h: u64, bytes: &[u8]) -> u64 {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(PRIME);
        }
        h
    }
    let n = col.len();
    let mut out = Vec::with_capacity(n);
    match col.data() {
        ColumnData::Int64(v) => {
            for i in 0..n {
                out.push(col.is_valid(i).then(|| feed(OFFSET, &v[i].to_le_bytes())));
            }
        }
        ColumnData::Float64(v) => {
            for i in 0..n {
                out.push(col.is_valid(i).then(|| {
                    let f = v[i];
                    if f.fract() == 0.0 && f.abs() < 9.0e18 {
                        feed(OFFSET, &(f as i64).to_le_bytes())
                    } else {
                        feed(OFFSET, &f.to_bits().to_le_bytes())
                    }
                }));
            }
        }
        ColumnData::Utf8(v) => {
            for i in 0..n {
                out.push(col.is_valid(i).then(|| feed(OFFSET, v[i].as_bytes())));
            }
        }
        ColumnData::Bool(v) => {
            for i in 0..n {
                out.push(col.is_valid(i).then(|| feed(OFFSET, &[v[i] as u8])));
            }
        }
    }
    out
}

/// Returns true when `name` is a scalar function this module can evaluate.
pub fn is_scalar_function(name: &str) -> bool {
    const NAMES: &[&str] = &[
        "rand",
        "floor",
        "ceil",
        "ceiling",
        "abs",
        "round",
        "sqrt",
        "ln",
        "log",
        "exp",
        "power",
        "pow",
        "mod",
        "pmod",
        "verdict_hash",
        "fnv_hash",
        "hash",
        "crc32",
        "strtol",
        "substr",
        "substring",
        "upper",
        "lower",
        "length",
        "concat",
        "coalesce",
        "least",
        "greatest",
        "if",
        "nullif",
        "sign",
    ];
    let lower = name.to_ascii_lowercase();
    NAMES.contains(&lower.as_str())
}

/// Evaluates a scalar function over already-evaluated argument columns.
///
/// `num_rows` is required because zero-argument functions (`rand()`) must
/// still produce one value per row.
pub fn eval_scalar_function(
    name: &str,
    args: &[Column],
    num_rows: usize,
    rng: &mut dyn FnMut() -> f64,
) -> EngineResult<Column> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "rand" => Ok(Column::from_f64((0..num_rows).map(|_| rng()).collect())),
        "floor" => unary_numeric(&lower, args, |x| x.floor()),
        "ceil" | "ceiling" => unary_numeric(&lower, args, |x| x.ceil()),
        "abs" => unary_numeric(&lower, args, |x| x.abs()),
        "sqrt" => unary_numeric(&lower, args, |x| x.sqrt()),
        "ln" | "log" => unary_numeric(&lower, args, |x| x.ln()),
        "exp" => unary_numeric(&lower, args, |x| x.exp()),
        "sign" => unary_numeric(&lower, args, |x| x.signum()),
        "round" => {
            expect_args(&lower, args, &[1, 2])?;
            let col = &args[0];
            let n = col.len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let digits = if args.len() == 2 {
                    args[1].f64_at(i).unwrap_or(0.0)
                } else {
                    0.0
                };
                out.push(col.f64_at(i).map(|x| {
                    let scale = 10f64.powi(digits as i32);
                    (x * scale).round() / scale
                }));
            }
            Ok(Column::from_opt_f64(out))
        }
        "power" | "pow" => binary_numeric(&lower, args, |a, b| a.powf(b)),
        "mod" => binary_numeric(&lower, args, |a, b| if b == 0.0 { f64::NAN } else { a % b }),
        "pmod" => binary_numeric(&lower, args, |a, b| {
            if b == 0.0 {
                f64::NAN
            } else {
                ((a % b) + b) % b
            }
        }),
        "verdict_hash" => {
            expect_args(&lower, args, &[2])?;
            let hashes = fnv_hash_column_raw(&args[0]);
            let out: Vec<Option<i64>> = hashes
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    h.map(|h| {
                        let modulus = args[1].value_at(i).as_i64().unwrap_or(1).max(1) as u64;
                        (h % modulus) as i64
                    })
                })
                .collect();
            Ok(Column::from_opt_i64(out))
        }
        "fnv_hash" | "hash" | "crc32" => {
            expect_args(&lower, args, &[1])?;
            let out: Vec<Option<i64>> = fnv_hash_column_raw(&args[0])
                .into_iter()
                // keep the result positive and within i64
                .map(|h| h.map(|h| (h >> 1) as i64))
                .collect();
            Ok(Column::from_opt_i64(out))
        }
        "strtol" => {
            // strtol(string, base) — Redshift idiom; our hash already returns
            // integers so this is effectively a cast.
            expect_args(&lower, args, &[2])?;
            let out: Vec<Option<i64>> = (0..args[0].len())
                .map(|i| {
                    let v = args[0].value_at(i);
                    match v.as_i64() {
                        Some(x) => Some(x),
                        None => v
                            .as_str_lossy()
                            .and_then(|s| i64::from_str_radix(s.trim(), 16).ok()),
                    }
                })
                .collect();
            Ok(Column::from_opt_i64(out))
        }
        "substr" | "substring" => {
            expect_args(&lower, args, &[2, 3])?;
            let n = args[0].len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let s = args[0].value_at(i).as_str_lossy();
                let start = args[1].value_at(i).as_i64().unwrap_or(1).max(1) as usize;
                let len = if args.len() == 3 {
                    args[2].value_at(i).as_i64().unwrap_or(0).max(0) as usize
                } else {
                    usize::MAX
                };
                out.push(s.map(|s| {
                    let chars: Vec<char> = s.chars().collect();
                    let begin = (start - 1).min(chars.len());
                    let end = begin.saturating_add(len).min(chars.len());
                    chars[begin..end].iter().collect::<String>()
                }));
            }
            Ok(Column::from_opt_str(out))
        }
        "upper" => unary_string(&lower, args, |s| s.to_uppercase()),
        "lower" => unary_string(&lower, args, |s| s.to_lowercase()),
        "length" => {
            expect_args(&lower, args, &[1])?;
            let out: Vec<Option<i64>> = (0..args[0].len())
                .map(|i| {
                    args[0]
                        .value_at(i)
                        .as_str_lossy()
                        .map(|s| s.chars().count() as i64)
                })
                .collect();
            Ok(Column::from_opt_i64(out))
        }
        "concat" => {
            if args.is_empty() {
                return Err(EngineError::Execution("concat requires arguments".into()));
            }
            let n = args[0].len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut s = String::new();
                let mut null = false;
                for a in args {
                    match a.value_at(i).as_str_lossy() {
                        Some(part) => s.push_str(&part),
                        None => null = true,
                    }
                }
                out.push(if null { None } else { Some(s) });
            }
            Ok(Column::from_opt_str(out))
        }
        "coalesce" => {
            if args.is_empty() {
                return Err(EngineError::Execution("coalesce requires arguments".into()));
            }
            let n = args[0].len();
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let v = args
                    .iter()
                    .map(|a| a.value_at(i))
                    .find(|v| !v.is_null())
                    .unwrap_or(Value::Null);
                out.push(v);
            }
            Ok(Column::from_values(&out))
        }
        "least" | "greatest" => {
            if args.is_empty() {
                return Err(EngineError::Execution(format!(
                    "{lower} requires arguments"
                )));
            }
            let n = args[0].len();
            let want_min = lower == "least";
            let mut out = Vec::with_capacity(n);
            for i in 0..n {
                let mut best: Option<Value> = None;
                for a in args {
                    let v = a.value_at(i);
                    if v.is_null() {
                        continue;
                    }
                    best = Some(match best {
                        None => v,
                        Some(b) => {
                            let keep_new = match v.sql_cmp(&b) {
                                Some(std::cmp::Ordering::Less) => want_min,
                                Some(std::cmp::Ordering::Greater) => !want_min,
                                _ => false,
                            };
                            if keep_new {
                                v
                            } else {
                                b
                            }
                        }
                    });
                }
                out.push(best.unwrap_or(Value::Null));
            }
            Ok(Column::from_values(&out))
        }
        "if" => {
            expect_args(&lower, args, &[3])?;
            let out: Vec<Value> = (0..args[0].len())
                .map(|i| {
                    if args[0].bool_at(i).unwrap_or(false) {
                        args[1].value_at(i)
                    } else {
                        args[2].value_at(i)
                    }
                })
                .collect();
            Ok(Column::from_values(&out))
        }
        "nullif" => {
            expect_args(&lower, args, &[2])?;
            let out: Vec<Value> = (0..args[0].len())
                .map(|i| {
                    let a = args[0].value_at(i);
                    if a == args[1].value_at(i) {
                        Value::Null
                    } else {
                        a
                    }
                })
                .collect();
            Ok(Column::from_values(&out))
        }
        other => Err(EngineError::Unsupported(format!("scalar function {other}"))),
    }
}

fn expect_args(name: &str, args: &[Column], allowed: &[usize]) -> EngineResult<()> {
    if allowed.contains(&args.len()) {
        Ok(())
    } else {
        Err(EngineError::Execution(format!(
            "{name} expects {allowed:?} arguments, got {}",
            args.len()
        )))
    }
}

fn binary_numeric(
    name: &str,
    args: &[Column],
    f: impl Fn(f64, f64) -> f64,
) -> EngineResult<Column> {
    expect_args(name, args, &[2])?;
    let n = args[0].len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(match (args[0].f64_at(i), args[1].f64_at(i)) {
            (Some(x), Some(y)) => {
                let r = f(x, y);
                if r.is_nan() {
                    None
                } else {
                    Some(r)
                }
            }
            _ => None,
        });
    }
    Ok(Column::from_opt_f64(out))
}

fn unary_numeric(name: &str, args: &[Column], f: impl Fn(f64) -> f64) -> EngineResult<Column> {
    expect_args(name, args, &[1])?;
    let col = &args[0];
    let n = col.len();
    // typed fast paths: apply f over the slice, masking with the validity
    match (col.data(), col.validity()) {
        (ColumnData::Float64(v), bm) => Ok(Column::from_parts(
            ColumnData::Float64(v.iter().map(|&x| f(x)).collect()),
            bm.cloned(),
        )),
        (ColumnData::Int64(v), bm) => Ok(Column::from_parts(
            ColumnData::Float64(v.iter().map(|&x| f(x as f64)).collect()),
            bm.cloned(),
        )),
        _ => {
            let out: Vec<Option<f64>> = (0..n).map(|i| col.f64_at(i).map(&f)).collect();
            Ok(Column::from_opt_f64(out))
        }
    }
}

fn unary_string(name: &str, args: &[Column], f: impl Fn(&str) -> String) -> EngineResult<Column> {
    expect_args(name, args, &[1])?;
    let col = &args[0];
    let n = col.len();
    if let Some(strs) = col.as_strs() {
        let out: Vec<Option<String>> = (0..n)
            .map(|i| col.is_valid(i).then(|| f(&strs[i])))
            .collect();
        return Ok(Column::from_opt_str(out));
    }
    let out: Vec<Option<String>> = (0..n)
        .map(|i| col.value_at(i).as_str_lossy().map(|s| f(&s)))
        .collect();
    Ok(Column::from_opt_str(out))
}

/// Evaluates a SQL `LIKE` pattern (with `%` and `_` wildcards) against a string.
pub fn like_match(text: &str, pattern: &str) -> bool {
    // dynamic-programming match over chars
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; t.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        if p[j - 1] == '%' {
            dp[0][j] = dp[0][j - 1];
        }
    }
    for i in 1..=t.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && t[i - 1] == c,
            };
        }
    }
    dp[t.len()][p.len()]
}

/// A deterministic uniform random generator seeded per query execution, used
/// when reproducible plans are required (tests, experiments).
pub fn seeded_uniform(seed: u64) -> impl FnMut() -> f64 {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    move || rng.gen::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Column {
        Column::from_i64(v.to_vec())
    }

    #[test]
    fn rand_produces_unit_interval_values() {
        let mut r = seeded_uniform(42);
        let col = eval_scalar_function("rand", &[], 1000, &mut r).unwrap();
        assert_eq!(col.len(), 1000);
        assert!(col.iter().all(|v| {
            let x = v.as_f64().unwrap();
            (0.0..1.0).contains(&x)
        }));
    }

    #[test]
    fn floor_and_round() {
        let mut r = seeded_uniform(0);
        let col = eval_scalar_function(
            "floor",
            &[Column::from_opt_f64(vec![Some(3.7), None])],
            2,
            &mut r,
        )
        .unwrap();
        assert_eq!(col.value_at(0), Value::Float(3.0));
        assert!(col.value_at(1).is_null());

        let col = eval_scalar_function(
            "round",
            &[Column::from_f64(vec![1.23456]), ints(&[2])],
            1,
            &mut r,
        )
        .unwrap();
        assert_eq!(col.value_at(0), Value::Float(1.23));
    }

    #[test]
    fn verdict_hash_is_deterministic_and_bounded() {
        let mut r = seeded_uniform(0);
        let col = eval_scalar_function(
            "verdict_hash",
            &[ints(&[1, 2, 3, 1]), ints(&[100, 100, 100, 100])],
            4,
            &mut r,
        )
        .unwrap();
        assert_eq!(col.value_at(0), col.value_at(3));
        assert!(col.iter().all(|v| (0..100).contains(&v.as_i64().unwrap())));
    }

    #[test]
    fn typed_hash_matches_value_hash() {
        let col = Column::from_values(&[
            Value::Int(42),
            Value::Float(5.0),
            Value::Float(2.5),
            Value::Null,
        ]);
        let typed = fnv_hash_column_raw(&col);
        for (i, h) in typed.iter().enumerate() {
            let v = col.value_at(i);
            if v.is_null() {
                assert!(h.is_none());
            } else {
                assert_eq!(h.unwrap(), fnv1a_hash_value(&v));
            }
        }
        // string column path
        let col = Column::from_str(vec!["abc".into(), "".into()]);
        let typed = fnv_hash_column_raw(&col);
        assert_eq!(
            typed[0].unwrap(),
            fnv1a_hash_value(&Value::Str("abc".into()))
        );
        assert_eq!(
            typed[1].unwrap(),
            fnv1a_hash_value(&Value::Str(String::new()))
        );
    }

    #[test]
    fn hash_uniformity_rough_check() {
        // hash 10k integers into 10 buckets; each bucket should get roughly 1000
        let n = 10_000i64;
        let mut buckets = [0usize; 10];
        for i in 0..n {
            let h = fnv1a_hash_value(&Value::Int(i)) % 10;
            buckets[h as usize] += 1;
        }
        for b in buckets {
            assert!((800..1200).contains(&b), "bucket count {b} too skewed");
        }
    }

    #[test]
    fn like_matching() {
        assert!(like_match("promotional items", "%promo%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("anything", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn coalesce_and_nullif() {
        let mut r = seeded_uniform(0);
        let col = eval_scalar_function(
            "coalesce",
            &[
                Column::from_opt_i64(vec![None, Some(1)]),
                Column::from_opt_i64(vec![Some(9), Some(2)]),
            ],
            2,
            &mut r,
        )
        .unwrap();
        assert_eq!(col.to_values(), vec![Value::Int(9), Value::Int(1)]);

        let col =
            eval_scalar_function("nullif", &[ints(&[1, 2]), ints(&[1, 3])], 2, &mut r).unwrap();
        assert!(col.value_at(0).is_null());
        assert_eq!(col.value_at(1), Value::Int(2));
    }

    #[test]
    fn string_functions() {
        let mut r = seeded_uniform(0);
        let s = Column::from_str(vec!["VerdictDB".into()]);
        let col = eval_scalar_function("lower", std::slice::from_ref(&s), 1, &mut r).unwrap();
        assert_eq!(col.value_at(0), Value::Str("verdictdb".into()));
        let col = eval_scalar_function("substr", &[s, ints(&[1]), ints(&[7])], 1, &mut r).unwrap();
        assert_eq!(col.value_at(0), Value::Str("Verdict".into()));
    }

    #[test]
    fn unknown_function_is_reported() {
        let mut r = seeded_uniform(0);
        let err = eval_scalar_function("frobnicate", &[], 1, &mut r).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
    }
}
