//! Vectorized kernels over typed [`Column`]s: arithmetic, comparison,
//! boolean logic, selection masks, casts, and hash-based row grouping.
//!
//! Each kernel dispatches on the operand types **once** and then runs a tight
//! loop over the typed slices; the per-row `Value` materialisation of the old
//! representation only survives in the `generic_*` fallbacks used for
//! unusual type mixes (e.g. arithmetic involving strings), which preserve the
//! exact semantics of the previous scalar evaluator.

use crate::column::{combine_validity, Bitmap, Column, ColumnData};
use crate::error::{EngineError, EngineResult};
use crate::parallel::{GroupStrategy, ThreadPool};
use crate::selvec::SelVec;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::ops::Range;
use verdict_sql::ast::BinaryOp;

// ---------------------------------------------------------------------------
// Numeric views
// ---------------------------------------------------------------------------

/// True when every non-null row of the column has a numeric (`as_f64`) view:
/// ints, floats, and bools qualify; strings do not.
fn is_numeric_viewable(c: &Column) -> bool {
    !matches!(c.data(), ColumnData::Utf8(_))
}

/// Dispatches a two-operand numeric kernel over the typed slice pair without
/// copying or converting either operand: `$body` is monomorphised once per
/// (left, right) type combination with `$a`/`$b` bound to `Fn(usize) -> f64`
/// accessors that read the typed slices in place.
macro_rules! numeric_pair_dispatch {
    ($left:expr, $right:expr, |$a:ident, $b:ident| $body:expr) => {{
        #[inline(always)]
        fn as_f(v: &[f64]) -> impl Fn(usize) -> f64 + '_ {
            move |i| v[i]
        }
        #[inline(always)]
        fn as_i(v: &[i64]) -> impl Fn(usize) -> f64 + '_ {
            move |i| v[i] as f64
        }
        #[inline(always)]
        fn as_b(v: &[bool]) -> impl Fn(usize) -> f64 + '_ {
            move |i| v[i] as u64 as f64
        }
        match ($left.data(), $right.data()) {
            (ColumnData::Float64(l), ColumnData::Float64(r)) => {
                let ($a, $b) = (as_f(l), as_f(r));
                $body
            }
            (ColumnData::Float64(l), ColumnData::Int64(r)) => {
                let ($a, $b) = (as_f(l), as_i(r));
                $body
            }
            (ColumnData::Int64(l), ColumnData::Float64(r)) => {
                let ($a, $b) = (as_i(l), as_f(r));
                $body
            }
            (ColumnData::Int64(l), ColumnData::Int64(r)) => {
                let ($a, $b) = (as_i(l), as_i(r));
                $body
            }
            (ColumnData::Bool(l), ColumnData::Float64(r)) => {
                let ($a, $b) = (as_b(l), as_f(r));
                $body
            }
            (ColumnData::Float64(l), ColumnData::Bool(r)) => {
                let ($a, $b) = (as_f(l), as_b(r));
                $body
            }
            (ColumnData::Bool(l), ColumnData::Int64(r)) => {
                let ($a, $b) = (as_b(l), as_i(r));
                $body
            }
            (ColumnData::Int64(l), ColumnData::Bool(r)) => {
                let ($a, $b) = (as_i(l), as_b(r));
                $body
            }
            (ColumnData::Bool(l), ColumnData::Bool(r)) => {
                let ($a, $b) = (as_b(l), as_b(r));
                $body
            }
            _ => unreachable!("caller checked numeric view"),
        }
    }};
}

// ---------------------------------------------------------------------------
// Binary operators
// ---------------------------------------------------------------------------

/// Evaluates `left op right` element-wise.
pub fn binary_op(left: &Column, op: BinaryOp, right: &Column) -> EngineResult<Column> {
    debug_assert_eq!(left.len(), right.len());
    match op {
        BinaryOp::And => Ok(bool_and(left, right)),
        BinaryOp::Or => Ok(bool_or(left, right)),
        BinaryOp::Concat => Ok(concat(left, right)),
        op if op.is_comparison() => Ok(compare(left, op, right)),
        _ => arithmetic(left, op, right),
    }
}

fn arithmetic(left: &Column, op: BinaryOp, right: &Column) -> EngineResult<Column> {
    let n = left.len();
    // Int × Int stays integral for +, -, *, %; / always yields a double
    // (Hive/Spark semantics, as before).
    if let (ColumnData::Int64(a), ColumnData::Int64(b)) = (left.data(), right.data()) {
        let validity = combine_validity(left.validity(), right.validity());
        return Ok(match op {
            BinaryOp::Plus => Column::from_parts(
                ColumnData::Int64((0..n).map(|i| a[i].wrapping_add(b[i])).collect()),
                validity,
            ),
            BinaryOp::Minus => Column::from_parts(
                ColumnData::Int64((0..n).map(|i| a[i].wrapping_sub(b[i])).collect()),
                validity,
            ),
            BinaryOp::Multiply => Column::from_parts(
                ColumnData::Int64((0..n).map(|i| a[i].wrapping_mul(b[i])).collect()),
                validity,
            ),
            BinaryOp::Modulo => {
                let mut bm = validity.unwrap_or_else(|| Bitmap::new_valid(n));
                let data = (0..n)
                    .map(|i| {
                        if b[i] == 0 {
                            bm.clear(i);
                            0
                        } else {
                            // wrapping_rem: i64::MIN % -1 must not abort the query
                            a[i].wrapping_rem(b[i])
                        }
                    })
                    .collect();
                Column::from_parts(ColumnData::Int64(data), Some(bm))
            }
            BinaryOp::Divide => {
                let mut bm = validity.unwrap_or_else(|| Bitmap::new_valid(n));
                let data = (0..n)
                    .map(|i| {
                        if b[i] == 0 {
                            bm.clear(i);
                            0.0
                        } else {
                            a[i] as f64 / b[i] as f64
                        }
                    })
                    .collect();
                Column::from_parts(ColumnData::Float64(data), Some(bm))
            }
            other => {
                return Err(EngineError::Execution(format!(
                    "unexpected arithmetic operator {other}"
                )))
            }
        });
    }

    if is_numeric_viewable(left) && is_numeric_viewable(right) {
        let mut bm = combine_validity(left.validity(), right.validity())
            .unwrap_or_else(|| Bitmap::new_valid(n));
        let data: Vec<f64> = numeric_pair_dispatch!(left, right, |a, b| match op {
            BinaryOp::Plus => (0..n).map(|i| a(i) + b(i)).collect(),
            BinaryOp::Minus => (0..n).map(|i| a(i) - b(i)).collect(),
            BinaryOp::Multiply => (0..n).map(|i| a(i) * b(i)).collect(),
            BinaryOp::Divide => (0..n)
                .map(|i| {
                    let y = b(i);
                    if y == 0.0 {
                        bm.clear(i);
                        0.0
                    } else {
                        a(i) / y
                    }
                })
                .collect(),
            BinaryOp::Modulo => (0..n)
                .map(|i| {
                    let y = b(i);
                    if y == 0.0 {
                        bm.clear(i);
                        0.0
                    } else {
                        a(i) % y
                    }
                })
                .collect(),
            other => {
                return Err(EngineError::Execution(format!(
                    "unexpected arithmetic operator {other}"
                )));
            }
        });
        return Ok(Column::from_parts(ColumnData::Float64(data), Some(bm)));
    }

    // String-typed operand: error on any non-null pair (matching the scalar
    // evaluator), null otherwise.
    generic_arithmetic(left, op, right)
}

fn generic_arithmetic(left: &Column, op: BinaryOp, right: &Column) -> EngineResult<Column> {
    let n = left.len();
    let mut out: Vec<Value> = Vec::with_capacity(n);
    for i in 0..n {
        let (lv, rv) = (left.value_at(i), right.value_at(i));
        if lv.is_null() || rv.is_null() {
            out.push(Value::Null);
            continue;
        }
        match (lv.as_f64(), rv.as_f64()) {
            (Some(x), Some(y)) => out.push(match op {
                BinaryOp::Plus => Value::Float(x + y),
                BinaryOp::Minus => Value::Float(x - y),
                BinaryOp::Multiply => Value::Float(x * y),
                BinaryOp::Divide => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(x / y)
                    }
                }
                BinaryOp::Modulo => {
                    if y == 0.0 {
                        Value::Null
                    } else {
                        Value::Float(x % y)
                    }
                }
                _ => unreachable!(),
            }),
            _ => {
                return Err(EngineError::TypeMismatch(format!(
                    "cannot apply {op} to {lv} and {rv}"
                )))
            }
        }
    }
    Ok(Column::from_values(&out))
}

/// Resolves a comparison operator against an ordering.
#[inline]
fn decide(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("comparison operator"),
    }
}

/// Element-wise SQL comparison producing a nullable boolean column.
pub fn compare(left: &Column, op: BinaryOp, right: &Column) -> Column {
    let n = left.len();

    /// Hoists the operator match out of the element loop so each
    /// monomorphised loop body is a single branchless comparison.
    #[inline(always)]
    fn cmp_loop<T: PartialOrd + Copy>(
        n: usize,
        a: impl Fn(usize) -> T,
        b: impl Fn(usize) -> T,
        op: BinaryOp,
    ) -> Vec<bool> {
        #[inline(always)]
        fn run<T: Copy>(
            n: usize,
            a: impl Fn(usize) -> T,
            b: impl Fn(usize) -> T,
            f: impl Fn(T, T) -> bool,
        ) -> Vec<bool> {
            (0..n).map(|i| f(a(i), b(i))).collect()
        }
        match op {
            BinaryOp::Eq => run(n, a, b, |x, y| x == y),
            BinaryOp::NotEq => run(n, a, b, |x, y| x != y),
            BinaryOp::Lt => run(n, a, b, |x, y| x < y),
            BinaryOp::LtEq => run(n, a, b, |x, y| x <= y),
            BinaryOp::Gt => run(n, a, b, |x, y| x > y),
            BinaryOp::GtEq => run(n, a, b, |x, y| x >= y),
            _ => unreachable!("comparison operator"),
        }
    }

    // Fast typed paths.
    match (left.data(), right.data()) {
        (ColumnData::Int64(a), ColumnData::Int64(b)) => {
            let validity = combine_validity(left.validity(), right.validity());
            let data = cmp_loop(n, |i| a[i], |i| b[i], op);
            return Column::from_parts(ColumnData::Bool(data), validity);
        }
        (ColumnData::Utf8(a), ColumnData::Utf8(b)) => {
            let validity = combine_validity(left.validity(), right.validity());
            let data = (0..n).map(|i| decide(op, a[i].cmp(&b[i]))).collect();
            return Column::from_parts(ColumnData::Bool(data), validity);
        }
        _ => {}
    }

    if is_numeric_viewable(left) && is_numeric_viewable(right) {
        let mut bm = combine_validity(left.validity(), right.validity())
            .unwrap_or_else(|| Bitmap::new_valid(n));
        // NaN comparisons are NULL (sql_cmp semantics): the strict float
        // comparison answers false for NaN operands, so only a NaN scan is
        // needed to fix up the validity — it stays out of the hot loop.
        let data: Vec<bool> = numeric_pair_dispatch!(left, right, |a, b| {
            let has_nan = matches!(left.data(), ColumnData::Float64(v) if v.iter().any(|x| x.is_nan()))
                || matches!(right.data(), ColumnData::Float64(v) if v.iter().any(|x| x.is_nan()));
            if has_nan {
                for i in 0..n {
                    if a(i).is_nan() || b(i).is_nan() {
                        bm.clear(i);
                    }
                }
            }
            cmp_loop(n, a, b, op)
        });
        return Column::from_parts(ColumnData::Bool(data), Some(bm));
    }

    // Mixed string/numeric comparison: NULL everywhere (sql_cmp semantics),
    // except when one side is all-null anyway.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(match left.value_at(i).sql_cmp(&right.value_at(i)) {
            Some(ord) => Value::Bool(decide(op, ord)),
            None => Value::Null,
        });
    }
    Column::from_values_typed(crate::value::DataType::Bool, &out)
}

/// SQL three-valued AND.
pub fn bool_and(left: &Column, right: &Column) -> Column {
    let n = left.len();
    let mut data = vec![false; n];
    let mut bm = Bitmap::new_null(n);
    if let (ColumnData::Bool(a), ColumnData::Bool(b)) = (left.data(), right.data()) {
        for i in 0..n {
            let lv = left.is_valid(i);
            let rv = right.is_valid(i);
            if (lv && !a[i]) || (rv && !b[i]) {
                bm.set(i); // definite false
            } else if lv && rv {
                data[i] = true;
                bm.set(i);
            }
        }
        return Column::from_parts(ColumnData::Bool(data), Some(bm));
    }
    for i in 0..n {
        match (left.bool_at(i), right.bool_at(i)) {
            (Some(false), _) | (_, Some(false)) => bm.set(i),
            (Some(true), Some(true)) => {
                data[i] = true;
                bm.set(i);
            }
            _ => {}
        }
    }
    Column::from_parts(ColumnData::Bool(data), Some(bm))
}

/// SQL three-valued OR.
pub fn bool_or(left: &Column, right: &Column) -> Column {
    let n = left.len();
    let mut data = vec![false; n];
    let mut bm = Bitmap::new_null(n);
    if let (ColumnData::Bool(a), ColumnData::Bool(b)) = (left.data(), right.data()) {
        for i in 0..n {
            let lv = left.is_valid(i);
            let rv = right.is_valid(i);
            if (lv && a[i]) || (rv && b[i]) {
                data[i] = true;
                bm.set(i);
            } else if lv && rv {
                bm.set(i); // definite false
            }
        }
        return Column::from_parts(ColumnData::Bool(data), Some(bm));
    }
    for i in 0..n {
        match (left.bool_at(i), right.bool_at(i)) {
            (Some(true), _) | (_, Some(true)) => {
                data[i] = true;
                bm.set(i);
            }
            (Some(false), Some(false)) => bm.set(i),
            _ => {}
        }
    }
    Column::from_parts(ColumnData::Bool(data), Some(bm))
}

/// String concatenation (`||`); NULL when either side is NULL.
pub fn concat(left: &Column, right: &Column) -> Column {
    let n = left.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(
            match (
                left.value_at(i).as_str_lossy(),
                right.value_at(i).as_str_lossy(),
            ) {
                (Some(a), Some(b)) => Some(format!("{a}{b}")),
                _ => None,
            },
        );
    }
    Column::from_opt_str(out)
}

/// Logical NOT with NULL propagation.
pub fn bool_not(col: &Column) -> Column {
    let n = col.len();
    if let ColumnData::Bool(v) = col.data() {
        let data = v.iter().map(|&b| !b).collect();
        return Column::from_parts(ColumnData::Bool(data), col.validity().cloned());
    }
    let mut data = vec![false; n];
    let mut bm = Bitmap::new_null(n);
    for i in 0..n {
        if let Some(b) = col.bool_at(i) {
            data[i] = !b;
            bm.set(i);
        }
    }
    Column::from_parts(ColumnData::Bool(data), Some(bm))
}

/// Arithmetic negation; non-numeric values become NULL.
pub fn negate(col: &Column) -> Column {
    match col.data() {
        ColumnData::Int64(v) => Column::from_parts(
            ColumnData::Int64(v.iter().map(|&x| x.wrapping_neg()).collect()),
            col.validity().cloned(),
        ),
        ColumnData::Float64(v) => Column::from_parts(
            ColumnData::Float64(v.iter().map(|&x| -x).collect()),
            col.validity().cloned(),
        ),
        // the scalar evaluator returned NULL for -bool and -string
        _ => Column::nulls(col.len()),
    }
}

/// Converts a column into a packed selection mask: a set bit where the value
/// is truthy, clear for false, NULL, and non-boolean-viewable values.
pub fn column_to_mask(col: &Column) -> SelVec {
    mask_range(col, 0..col.len())
}

/// Range-restricted [`column_to_mask`]: the morsel-level building block of
/// the parallel mask kernels.  All arms pack through [`SelVec::from_fn`], so
/// the per-row predicate loops stay branch-free and vectorizable.
fn mask_range(col: &Column, range: Range<usize>) -> SelVec {
    let start = range.start;
    match (col.data(), col.validity()) {
        (ColumnData::Bool(v), None) => SelVec::from_fn(range.len(), |k| v[start + k]),
        (ColumnData::Bool(v), Some(bm)) => {
            let mut m = SelVec::from_fn(range.len(), |k| v[start + k]);
            m.and_valid_words(bm.words(), start);
            m
        }
        _ => SelVec::from_fn(range.len(), |k| col.bool_at(start + k).unwrap_or(false)),
    }
}

/// Morsel-parallel filter mask: evaluates `left op right` per morsel and
/// folds the three-valued comparison into a packed selection mask (`NULL` →
/// deselected), concatenating the per-morsel masks in morsel order.
/// Semantically equal to `column_to_mask(&compare(left, op, right))` at any
/// thread count, without materialising the boolean column.
pub fn par_filter_mask(left: &Column, op: BinaryOp, right: &Column, pool: &ThreadPool) -> SelVec {
    let n = left.len();
    debug_assert_eq!(n, right.len());
    if pool.parallelism() <= 1 || n <= crate::parallel::MORSEL_ROWS {
        return filter_mask_range(left, op, right, 0..n);
    }
    let parts = pool.run_morsels(n, |range| filter_mask_range(left, op, right, range));
    let mut out = SelVec::empty();
    for p in parts {
        // MORSEL_ROWS is a multiple of 64, so every non-final part ends on a
        // word boundary and concatenation is a word-level memcpy.
        out.extend_aligned(&p);
    }
    out
}

/// Builds a comparison mask over `range` with the operator hoisted out of
/// the element loop, exactly like [`compare`]'s `cmp_loop`: each
/// monomorphised body is a single branchless comparison, so the packing
/// loop stays auto-vectorizable.  For floats every variant answers `false`
/// when an operand is NaN (matching `sql_cmp`'s NULL → deselected): the
/// strict comparisons do so natively, and `NotEq` uses `(x < y) | (x > y)`
/// instead of `x != y`, which a NaN would satisfy.
#[inline(always)]
fn cmp_mask_op<T: PartialOrd + Copy>(
    range: Range<usize>,
    a: impl Fn(usize) -> T,
    b: impl Fn(usize) -> T,
    op: BinaryOp,
) -> SelVec {
    #[inline(always)]
    fn run<T: Copy>(
        range: Range<usize>,
        a: impl Fn(usize) -> T,
        b: impl Fn(usize) -> T,
        f: impl Fn(T, T) -> bool,
    ) -> SelVec {
        let start = range.start;
        SelVec::from_fn(range.len(), |k| {
            let i = start + k;
            f(a(i), b(i))
        })
    }
    match op {
        BinaryOp::Eq => run(range, a, b, |x, y| x == y),
        BinaryOp::NotEq => run(range, a, b, |x, y| (x < y) | (x > y)),
        BinaryOp::Lt => run(range, a, b, |x, y| x < y),
        BinaryOp::LtEq => run(range, a, b, |x, y| x <= y),
        BinaryOp::Gt => run(range, a, b, |x, y| x > y),
        BinaryOp::GtEq => run(range, a, b, |x, y| x >= y),
        _ => unreachable!("comparison operator"),
    }
}

/// ANDs a column's validity words into `mask` (no-op for null-free columns).
#[inline(always)]
fn and_validity(mask: &mut SelVec, col: &Column, start: usize) {
    if let Some(bm) = col.validity() {
        mask.and_valid_words(bm.words(), start);
    }
}

/// One morsel of [`par_filter_mask`]: a typed comparison loop over `range`
/// with NULL (and NaN, which compares as NULL) folded to deselected.  The
/// comparison packs branch-free via [`cmp_mask_op`]; validity folds in
/// afterwards as a word-wise AND rather than a per-row check.
fn filter_mask_range(left: &Column, op: BinaryOp, right: &Column, range: Range<usize>) -> SelVec {
    let start = range.start;
    // Int × Int compares at full i64 precision (an f64 view would lose
    // precision beyond 2^53), matching the typed path of `compare`.
    if let (ColumnData::Int64(a), ColumnData::Int64(b)) = (left.data(), right.data()) {
        let mut m = cmp_mask_op(range, |i| a[i], |i| b[i], op);
        and_validity(&mut m, left, start);
        and_validity(&mut m, right, start);
        return m;
    }
    if let (ColumnData::Utf8(a), ColumnData::Utf8(b)) = (left.data(), right.data()) {
        // Strings keep the per-row validity short-circuit: skipping the
        // comparison on NULL rows saves real work here, unlike the
        // fixed-cost numeric lanes.
        let valid = |i: usize| left.is_valid(i) && right.is_valid(i);
        return SelVec::from_fn(range.len(), |k| {
            let i = start + k;
            valid(i) && decide(op, a[i].cmp(&b[i]))
        });
    }
    if is_numeric_viewable(left) && is_numeric_viewable(right) {
        let mut m = numeric_pair_dispatch!(left, right, |a, b| cmp_mask_op(range, a, b, op));
        and_validity(&mut m, left, start);
        and_validity(&mut m, right, start);
        return m;
    }
    // Mixed string/numeric: sql_cmp yields NULL → deselected.
    SelVec::from_fn(range.len(), |k| {
        let i = start + k;
        left.value_at(i)
            .sql_cmp(&right.value_at(i))
            .map(|ord| decide(op, ord))
            .unwrap_or(false)
    })
}

/// Morsel-parallel [`column_to_mask`]: each morsel packs its slice of the
/// mask independently and the word-aligned slices are concatenated in morsel
/// order, so the result is identical at any thread count.
pub fn par_column_to_mask(col: &Column, pool: &ThreadPool) -> SelVec {
    if pool.parallelism() <= 1 || col.len() <= crate::parallel::MORSEL_ROWS {
        return column_to_mask(col);
    }
    let parts = pool.run_morsels(col.len(), |range| mask_range(col, range));
    let mut out = SelVec::empty();
    for p in parts {
        out.extend_aligned(&p);
    }
    out
}

/// `IS [NOT] NULL` from the validity bitmap alone.
pub fn is_null_column(col: &Column, negated: bool) -> Column {
    let n = col.len();
    let data = (0..n).map(|i| col.is_null_at(i) != negated).collect();
    Column::from_parts(ColumnData::Bool(data), None)
}

/// `CAST(col AS type)` with the same coercion rules as the scalar evaluator
/// (string parsing included; failed casts yield NULL).
pub fn cast_column(col: &Column, to: verdict_sql::ast::CastType) -> Column {
    use verdict_sql::ast::CastType;
    let n = col.len();
    match to {
        CastType::Integer => {
            let mut out = Vec::with_capacity(n);
            match col.data() {
                ColumnData::Int64(v) => {
                    return Column::from_parts(
                        ColumnData::Int64(v.clone()),
                        col.validity().cloned(),
                    )
                }
                ColumnData::Float64(v) => {
                    for i in 0..n {
                        out.push(col.is_valid(i).then(|| v[i] as i64));
                    }
                }
                ColumnData::Bool(v) => {
                    for i in 0..n {
                        out.push(col.is_valid(i).then(|| v[i] as i64));
                    }
                }
                ColumnData::Utf8(v) => {
                    for i in 0..n {
                        out.push(if col.is_valid(i) {
                            v[i].trim().parse::<i64>().ok()
                        } else {
                            None
                        });
                    }
                }
            }
            Column::from_opt_i64(out)
        }
        CastType::Double => {
            let mut out = Vec::with_capacity(n);
            match col.data() {
                ColumnData::Float64(v) => {
                    return Column::from_parts(
                        ColumnData::Float64(v.clone()),
                        col.validity().cloned(),
                    )
                }
                ColumnData::Int64(v) => {
                    for i in 0..n {
                        out.push(col.is_valid(i).then(|| v[i] as f64));
                    }
                }
                ColumnData::Bool(v) => {
                    for i in 0..n {
                        out.push(col.is_valid(i).then(|| v[i] as u64 as f64));
                    }
                }
                ColumnData::Utf8(v) => {
                    for i in 0..n {
                        out.push(if col.is_valid(i) {
                            v[i].trim().parse::<f64>().ok()
                        } else {
                            None
                        });
                    }
                }
            }
            Column::from_opt_f64(out)
        }
        CastType::Varchar => {
            let out: Vec<Option<String>> = (0..n).map(|i| col.value_at(i).as_str_lossy()).collect();
            Column::from_opt_str(out)
        }
        CastType::Boolean => {
            let out: Vec<Option<bool>> = (0..n).map(|i| col.bool_at(i)).collect();
            Column::from_opt_bool(out)
        }
    }
}

// ---------------------------------------------------------------------------
// Hash-based row grouping (GROUP BY, DISTINCT, window partitions, join keys)
// ---------------------------------------------------------------------------

/// A no-op hasher for keys that are already well-mixed 64-bit hashes
/// (the canonical row hashes), avoiding a second SipHash pass per lookup.
#[derive(Default, Clone)]
pub struct Prehashed(u64);

impl std::hash::Hasher for Prehashed {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // generic path (unused by u64 keys); fold bytes in
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

impl std::hash::BuildHasher for Prehashed {
    type Hasher = Prehashed;

    #[inline]
    fn build_hasher(&self) -> Prehashed {
        Prehashed(0)
    }
}

type PrehashedMap<V> = HashMap<u64, V, Prehashed>;

/// Combined canonical hash per row across the key columns.
pub fn hash_rows(cols: &[Column], n: usize) -> Vec<u64> {
    let mut hashes = vec![0xcbf29ce484222325u64; n];
    for c in cols {
        c.hash_into(&mut hashes);
    }
    hashes
}

/// Morsel-parallel [`hash_rows`]: each morsel hashes its row range across
/// all key columns; the per-morsel vectors are concatenated in morsel order,
/// yielding exactly the serial hash vector.
pub fn par_hash_rows(cols: &[Column], n: usize, pool: &ThreadPool) -> Vec<u64> {
    if pool.parallelism() <= 1 || n <= crate::parallel::MORSEL_ROWS {
        return hash_rows(cols, n);
    }
    let parts = pool.run_morsels(n, |range| {
        let mut hashes = vec![0xcbf29ce484222325u64; range.len()];
        for c in cols {
            c.hash_range_into(range.clone(), &mut hashes);
        }
        hashes
    });
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend_from_slice(&p);
    }
    out
}

/// True when row `i` of `a`'s key columns equals row `j` of `b`'s, with
/// NULL == NULL grouping semantics.
pub fn rows_equal(a: &[Column], i: usize, b: &[Column], j: usize) -> bool {
    a.iter()
        .zip(b.iter())
        .all(|(ca, cb)| ca.loose_eq_rows(i, cb, j))
}

/// The result of clustering rows by key columns.
pub struct Grouping {
    /// Group id per input row.
    pub gids: Vec<usize>,
    /// One representative row index per group, in first-appearance order.
    pub representatives: Vec<usize>,
}

impl Grouping {
    /// Number of distinct groups.
    pub fn num_groups(&self) -> usize {
        self.representatives.len()
    }
}

/// Clusters `n` rows by the given key columns using canonical hashing with
/// collision verification.  With no key columns every row lands in group 0.
pub fn group_rows(cols: &[Column], n: usize) -> Grouping {
    group_rows_with(cols, n, &ThreadPool::serial())
}

/// Morsel-parallel [`group_rows`], strategy-dispatched.
///
/// The pool's [`GroupStrategy`] picks the clustering algorithm; every
/// algorithm produces the identical [`Grouping`] (same group ids, same
/// first-appearance representatives), so the knob only changes latency:
///
/// * **Hash** — morsel-local hash tables merged sequentially in morsel order.
/// * **Dict** — key columns mapped to dense dictionary codes, no hashing at
///   all; applies when every key column is integral with a small value range
///   (falls back to hash otherwise).
/// * **Radix** — rows partitioned by the top hash byte, partition-local
///   clustering, then a first-appearance renumber pass; wins when the group
///   count is large enough that one global hash table thrashes the cache.
/// * **Auto** — dict when applicable, else a cardinality estimate over a
///   hash sample of the leading rows picks radix or hash.
pub fn group_rows_with(cols: &[Column], n: usize, pool: &ThreadPool) -> Grouping {
    if cols.is_empty() {
        return Grouping {
            gids: vec![0; n],
            representatives: if n > 0 { vec![0] } else { vec![] },
        };
    }
    match pool.group_strategy() {
        GroupStrategy::Hash => hash_group_rows(cols, n, pool),
        GroupStrategy::Dict => {
            dict_group_rows(cols, n, pool).unwrap_or_else(|| hash_group_rows(cols, n, pool))
        }
        GroupStrategy::Radix => radix_group_rows(cols, n, pool),
        GroupStrategy::Auto => {
            if let Some(g) = dict_group_rows(cols, n, pool) {
                return g;
            }
            if n > crate::parallel::MORSEL_ROWS && sample_looks_high_cardinality(cols, n) {
                radix_group_rows(cols, n, pool)
            } else {
                hash_group_rows(cols, n, pool)
            }
        }
    }
}

/// The hash clustering path of [`group_rows_with`].
///
/// Each morsel builds a **local** hash table clustering its own rows; the
/// local tables are then merged sequentially in morsel order, translating
/// local group ids to global ones.  Because morsel 0 covers the lowest row
/// indices and merging walks morsels in order, the global groups come out in
/// first-appearance order — exactly the serial grouping, at any thread count.
fn hash_group_rows(cols: &[Column], n: usize, pool: &ThreadPool) -> Grouping {
    let hashes = par_hash_rows(cols, n, pool);
    // Phase 1 (parallel): per-morsel local clustering.
    let locals: Vec<(Vec<usize>, Vec<usize>)> = pool.run_morsels(n, |range| {
        let mut table: PrehashedMap<Vec<usize>> = PrehashedMap::default();
        let mut reps: Vec<usize> = Vec::new();
        let mut local_gids = Vec::with_capacity(range.len());
        for row in range {
            let bucket = table.entry(hashes[row]).or_default();
            let gid = bucket
                .iter()
                .copied()
                .find(|&g| rows_equal(cols, row, cols, reps[g]));
            match gid {
                Some(g) => local_gids.push(g),
                None => {
                    let g = reps.len();
                    reps.push(row);
                    bucket.push(g);
                    local_gids.push(g);
                }
            }
        }
        (reps, local_gids)
    });
    // Phase 2 (sequential, morsel order): merge local groups into global ids.
    let mut table: PrehashedMap<Vec<usize>> = PrehashedMap::default();
    let mut representatives: Vec<usize> = Vec::new();
    let mut gids = Vec::with_capacity(n);
    for (reps, local_gids) in locals {
        let mut translate = Vec::with_capacity(reps.len());
        for &rep in &reps {
            let bucket = table.entry(hashes[rep]).or_default();
            let gid = bucket
                .iter()
                .copied()
                .find(|&g| rows_equal(cols, rep, cols, representatives[g]));
            let g = match gid {
                Some(g) => g,
                None => {
                    let g = representatives.len();
                    representatives.push(rep);
                    bucket.push(g);
                    g
                }
            };
            translate.push(g);
        }
        gids.extend(local_gids.into_iter().map(|lg| translate[lg]));
    }
    Grouping {
        gids,
        representatives,
    }
}

/// Largest dictionary code space [`dict_group_rows`] will allocate a dense
/// remap table for: 64K slots is a 256 KiB `u32` table — comfortably
/// cache-resident, and far above the group counts where dictionary keys win.
const MAX_DICT_SLOTS: u64 = 1 << 16;

/// Per-key-column statistics for the dictionary grouping path.
struct DictDim {
    /// Minimum valid value (0 when the column is all-NULL).
    min: i64,
    /// Code-space width of this column including the NULL slot.
    width: u64,
}

/// The dictionary clustering path: maps each key row to a dense code and
/// renumbers codes in first-appearance order — no hashing, no hash table.
///
/// Applies when every key column is integral (`Int64`/`Bool`) and the
/// product of the per-column value ranges (plus one NULL slot each) stays
/// within [`MAX_DICT_SLOTS`] and within ~4x the row count; returns `None`
/// otherwise.  A row's code is `Σ slot_i · stride_i` with `slot_i = 0` for
/// NULL and `1 + (v - min_i)` for a valid value, so two rows share a code
/// exactly when [`rows_equal`] holds — NULLs grouping together included —
/// and the serial first-appearance renumber walk reproduces the hash path's
/// [`Grouping`] bit-for-bit.
fn dict_group_rows(cols: &[Column], n: usize, pool: &ThreadPool) -> Option<Grouping> {
    // Integral key columns only: exact equality on i64 codes then matches
    // loose_eq row equality.  Float/string keys never take this path.
    let views: Vec<DictView<'_>> = cols.iter().map(DictView::new).collect::<Option<_>>()?;
    if n == 0 {
        return Some(Grouping {
            gids: Vec::new(),
            representatives: Vec::new(),
        });
    }

    // Per-column (min, max, has_null) in one parallel pass; min/max merge is
    // commutative, so morsel merge order does not matter here.
    let stats: Vec<(Option<(i64, i64)>, bool)> = {
        let per_morsel = pool.run_morsels(n, |range| {
            views
                .iter()
                .map(|v| v.min_max_range(range.clone()))
                .collect::<Vec<_>>()
        });
        let mut acc = vec![(None::<(i64, i64)>, false); views.len()];
        for morsel in per_morsel {
            for (slot, (mm, has_null)) in acc.iter_mut().zip(morsel) {
                slot.0 = match (slot.0, mm) {
                    (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
                    (got, None) | (None, got) => got,
                };
                slot.1 |= has_null;
            }
        }
        acc
    };

    // Code-space layout: row-major strides over the per-column widths.
    let mut dims = Vec::with_capacity(views.len());
    let mut total: u64 = 1;
    for (mm, _) in &stats {
        let (min, width) = match mm {
            Some((min, max)) => {
                let range = (*max as i128) - (*min as i128) + 1;
                if range + 1 > MAX_DICT_SLOTS as i128 {
                    return None;
                }
                (*min, range as u64 + 1)
            }
            None => (0, 1), // all-NULL column: only the NULL slot exists
        };
        total = total.checked_mul(width)?;
        if total > MAX_DICT_SLOTS {
            return None;
        }
        dims.push(DictDim { min, width });
    }
    // A code space far larger than the input would spend more on the remap
    // table than the dictionary saves.
    if total > 4 * n as u64 + 1024 {
        return None;
    }

    // Per-row codes, morsel-parallel; concatenation in morsel order keeps
    // row order, which the renumber walk below depends on.
    let codes: Vec<u32> = {
        let parts = pool.run_morsels(n, |range| {
            let mut part = vec![0u32; range.len()];
            for (view, dim) in views.iter().zip(dims.iter()) {
                view.fold_codes(range.clone(), dim, &mut part);
            }
            part
        });
        let mut codes = Vec::with_capacity(n);
        for p in parts {
            codes.extend_from_slice(&p);
        }
        codes
    };

    Some(renumber_first_appearance(&codes, total as usize))
}

/// A typed integral view of one dictionary key column.
enum DictView<'a> {
    Int(&'a [i64], &'a Column),
    Bool(&'a [bool], &'a Column),
}

impl<'a> DictView<'a> {
    fn new(col: &'a Column) -> Option<DictView<'a>> {
        match col.data() {
            ColumnData::Int64(v) => Some(DictView::Int(v, col)),
            ColumnData::Bool(v) => Some(DictView::Bool(v, col)),
            _ => None,
        }
    }

    /// `(Some((min, max)) over valid rows, any NULL seen)` for `range`.
    fn min_max_range(&self, range: Range<usize>) -> (Option<(i64, i64)>, bool) {
        #[inline(always)]
        fn scan<T: Copy>(
            v: &[T],
            col: &Column,
            range: Range<usize>,
            to_i64: impl Fn(T) -> i64,
        ) -> (Option<(i64, i64)>, bool) {
            let mut mm: Option<(i64, i64)> = None;
            let mut has_null = false;
            for i in range {
                if col.is_valid(i) {
                    let x = to_i64(v[i]);
                    mm = Some(match mm {
                        Some((lo, hi)) => (lo.min(x), hi.max(x)),
                        None => (x, x),
                    });
                } else {
                    has_null = true;
                }
            }
            (mm, has_null)
        }
        match self {
            DictView::Int(v, col) => scan(v, col, range, |x| x),
            DictView::Bool(v, col) => scan(v, col, range, |x| x as i64),
        }
    }

    /// Scales the accumulated codes by this column's width and adds its
    /// slot: `code = code * width + slot`, `slot = 0` for NULL else
    /// `1 + (v - min)`.  Branch-free over the valid/NULL choice.
    fn fold_codes(&self, range: Range<usize>, dim: &DictDim, codes: &mut [u32]) {
        #[inline(always)]
        fn fold<T: Copy>(
            v: &[T],
            col: &Column,
            range: Range<usize>,
            dim: &DictDim,
            codes: &mut [u32],
            to_i64: impl Fn(T) -> i64,
        ) {
            let width = dim.width as u32;
            let min = dim.min;
            let start = range.start;
            match col.validity() {
                None => {
                    for (k, code) in codes.iter_mut().enumerate().take(range.len()) {
                        let slot = 1 + to_i64(v[start + k]).wrapping_sub(min) as u32;
                        *code = *code * width + slot;
                    }
                }
                Some(bm) => {
                    for (k, code) in codes.iter_mut().enumerate().take(range.len()) {
                        let i = start + k;
                        let valid = bm.get(i) as u32;
                        // NULL rows carry an arbitrary data slot, so the raw
                        // slot uses wrapping arithmetic and the `valid`
                        // multiply zeroes it — no branch, no overflow trap.
                        let raw = (to_i64(v[i]).wrapping_sub(min) as u32).wrapping_add(1);
                        *code = *code * width + valid * raw;
                    }
                }
            }
        }
        match self {
            DictView::Int(v, col) => fold(v, col, range, dim, codes, |x| x),
            DictView::Bool(v, col) => fold(v, col, range, dim, codes, |x| x as i64),
        }
    }
}

/// Renumbers arbitrary per-row codes (`< space`) into dense group ids in
/// first-appearance order — the shared final step of the dictionary and
/// radix paths, and the step that makes their [`Grouping`] identical to the
/// hash path's.
fn renumber_first_appearance(codes: &[u32], space: usize) -> Grouping {
    let mut remap = vec![u32::MAX; space];
    let mut gids = Vec::with_capacity(codes.len());
    let mut representatives = Vec::new();
    for (row, &code) in codes.iter().enumerate() {
        let slot = &mut remap[code as usize];
        if *slot == u32::MAX {
            *slot = representatives.len() as u32;
            representatives.push(row);
        }
        gids.push(*slot as usize);
    }
    Grouping {
        gids,
        representatives,
    }
}

/// Number of leading rows hashed by the Auto-strategy cardinality probe.
const CARDINALITY_SAMPLE_ROWS: usize = 4096;

/// True when a hash sample of the leading rows suggests a high-cardinality
/// grouping (at least half the sampled rows distinct), in which case the
/// radix path's partition-local tables beat one global hash table.
fn sample_looks_high_cardinality(cols: &[Column], n: usize) -> bool {
    let sample = n.min(CARDINALITY_SAMPLE_ROWS);
    let mut hashes = vec![0xcbf29ce484222325u64; sample];
    for c in cols {
        c.hash_range_into(0..sample, &mut hashes);
    }
    let distinct: std::collections::HashSet<u64, Prehashed> = hashes.iter().copied().collect();
    distinct.len() * 2 >= sample
}

/// Number of radix partitions (indexed by the top byte of the row hash).
const RADIX_PARTITIONS: usize = 256;

/// The radix clustering path of [`group_rows_with`] for high-cardinality
/// keys: scatter rows into 256 partitions by the top hash byte, cluster each
/// partition with a small cache-resident local table, then renumber in
/// first-appearance order.
///
/// Equal rows share their canonical hash, hence their partition, hence their
/// partition-local group — so the per-row codes (partition base + local id)
/// identify groups exactly, and [`renumber_first_appearance`] restores the
/// serial first-appearance [`Grouping`] regardless of partition order.
fn radix_group_rows(cols: &[Column], n: usize, pool: &ThreadPool) -> Grouping {
    let hashes = par_hash_rows(cols, n, pool);
    let part_of = |h: u64| (h >> 56) as usize;

    // Counting-sort scatter of row indices by partition: three sequential
    // passes over dense arrays (count, prefix-sum, scatter).
    let mut starts = vec![0usize; RADIX_PARTITIONS + 1];
    for &h in &hashes {
        starts[part_of(h) + 1] += 1;
    }
    for p in 0..RADIX_PARTITIONS {
        starts[p + 1] += starts[p];
    }
    let mut part_rows = vec![0usize; n];
    let mut cursor = starts[..RADIX_PARTITIONS].to_vec();
    for row in 0..n {
        let p = part_of(hashes[row]);
        part_rows[cursor[p]] = row;
        cursor[p] += 1;
    }

    // Partition-local clustering, parallel across partitions.  Each local
    // table holds ~1/256 of the groups, so probes stay cache-resident where
    // a single global table would thrash.  The scatter preserved ascending
    // row order within each partition, so local representatives are the
    // partition's first-appearance rows.
    let locals: Vec<(usize, Vec<u32>)> = pool.run(RADIX_PARTITIONS, |p| {
        let rows = &part_rows[starts[p]..starts[p + 1]];
        let mut table: PrehashedMap<Vec<u32>> = PrehashedMap::default();
        let mut reps: Vec<usize> = Vec::new();
        let mut local_gids = Vec::with_capacity(rows.len());
        for &row in rows {
            let bucket = table.entry(hashes[row]).or_default();
            let gid = bucket
                .iter()
                .copied()
                .find(|&g| rows_equal(cols, row, cols, reps[g as usize]));
            match gid {
                Some(g) => local_gids.push(g),
                None => {
                    let g = reps.len() as u32;
                    reps.push(row);
                    bucket.push(g);
                    local_gids.push(g);
                }
            }
        }
        (reps.len(), local_gids)
    });

    // Per-row codes: partition base + local group id, written back through
    // the scatter layout.
    let mut total = 0usize;
    let mut codes = vec![0u32; n];
    for (p, (groups, local_gids)) in locals.iter().enumerate() {
        let rows = &part_rows[starts[p]..starts[p + 1]];
        for (k, &row) in rows.iter().enumerate() {
            codes[row] = (total + local_gids[k] as usize) as u32;
        }
        total += groups;
    }

    renumber_first_appearance(&codes, total)
}

/// A hash index over the key columns of a build-side table, used by hash
/// joins: maps canonical row hashes to candidate row indices, verified with
/// typed equality at probe time.
pub struct RowIndex<'a> {
    keys: &'a [Column],
    table: PrehashedMap<Vec<usize>>,
}

impl<'a> RowIndex<'a> {
    /// Builds the index, skipping rows with a NULL in any key column
    /// (SQL equi-join semantics).
    pub fn build(keys: &'a [Column], n: usize) -> RowIndex<'a> {
        Self::build_with(keys, n, &ThreadPool::serial())
    }

    /// Morsel-parallel hash-join build: per-morsel local tables merged in
    /// morsel order, so every bucket lists its candidate rows in ascending
    /// row order — exactly the serial build — at any thread count.
    pub fn build_with(keys: &'a [Column], n: usize, pool: &ThreadPool) -> RowIndex<'a> {
        let hashes = par_hash_rows(keys, n, pool);
        if pool.parallelism() <= 1 || n <= crate::parallel::MORSEL_ROWS {
            let mut table: PrehashedMap<Vec<usize>> = PrehashedMap::default();
            for row in 0..n {
                if keys.iter().any(|k| k.is_null_at(row)) {
                    continue;
                }
                table.entry(hashes[row]).or_default().push(row);
            }
            return RowIndex { keys, table };
        }
        let locals = pool.run_morsels(n, |range| {
            let mut local: PrehashedMap<Vec<usize>> = PrehashedMap::default();
            for row in range {
                if keys.iter().any(|k| k.is_null_at(row)) {
                    continue;
                }
                local.entry(hashes[row]).or_default().push(row);
            }
            local
        });
        let mut table: PrehashedMap<Vec<usize>> = PrehashedMap::default();
        for local in locals {
            for (h, mut rows) in local {
                table.entry(h).or_default().append(&mut rows);
            }
        }
        RowIndex { keys, table }
    }

    /// Streams the build-side rows matching the probe row, without
    /// allocating per probe (this sits in the hash-join inner loop).
    /// Probe rows with NULL keys never match.
    pub fn probe_each(
        &self,
        probe_keys: &[Column],
        probe_hash: u64,
        probe_row: usize,
        mut on_match: impl FnMut(usize),
    ) {
        if probe_keys.iter().any(|k| k.is_null_at(probe_row)) {
            return;
        }
        if let Some(rows) = self.table.get(&probe_hash) {
            for &r in rows {
                if rows_equal(probe_keys, probe_row, self.keys, r) {
                    on_match(r);
                }
            }
        }
    }

    /// Collecting variant of [`RowIndex::probe_each`], for tests and
    /// non-hot-path callers.
    pub fn probe(&self, probe_keys: &[Column], probe_hash: u64, probe_row: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.probe_each(probe_keys, probe_hash, probe_row, |r| out.push(r));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn ints(v: Vec<i64>) -> Column {
        Column::from_i64(v)
    }

    #[test]
    fn int_arithmetic_stays_integral() {
        let a = ints(vec![1, 2, 3]);
        let b = ints(vec![10, 20, 30]);
        let c = binary_op(&a, BinaryOp::Plus, &b).unwrap();
        assert_eq!(
            c.to_values(),
            vec![Value::Int(11), Value::Int(22), Value::Int(33)]
        );
        let d = binary_op(&a, BinaryOp::Divide, &b).unwrap();
        assert_eq!(d.value_at(0), Value::Float(0.1));
    }

    #[test]
    fn division_by_zero_is_null() {
        let a = ints(vec![1, 2]);
        let z = ints(vec![0, 1]);
        let c = binary_op(&a, BinaryOp::Divide, &z).unwrap();
        assert!(c.value_at(0).is_null());
        assert_eq!(c.value_at(1), Value::Float(2.0));
        let m = binary_op(&a, BinaryOp::Modulo, &z).unwrap();
        assert!(m.value_at(0).is_null());
        assert_eq!(m.value_at(1), Value::Int(0));
    }

    #[test]
    fn modulo_overflow_wraps_instead_of_panicking() {
        let a = ints(vec![i64::MIN]);
        let b = ints(vec![-1]);
        let c = binary_op(&a, BinaryOp::Modulo, &b).unwrap();
        assert_eq!(c.value_at(0), Value::Int(0));
    }

    #[test]
    fn nulls_propagate_through_arithmetic() {
        let a = Column::from_opt_i64(vec![Some(1), None]);
        let b = ints(vec![5, 5]);
        let c = binary_op(&a, BinaryOp::Multiply, &b).unwrap();
        assert_eq!(c.value_at(0), Value::Int(5));
        assert!(c.value_at(1).is_null());
    }

    #[test]
    fn mixed_numeric_comparison() {
        let a = ints(vec![1, 5, 9]);
        let b = Column::from_f64(vec![2.0, 5.0, 3.5]);
        let lt = compare(&a, BinaryOp::Lt, &b);
        assert_eq!(
            lt.to_values(),
            vec![Value::Bool(true), Value::Bool(false), Value::Bool(false)]
        );
        let eq = compare(&a, BinaryOp::Eq, &b);
        assert_eq!(eq.value_at(1), Value::Bool(true));
    }

    #[test]
    fn string_numeric_comparison_is_null() {
        let a = Column::from_str(vec!["x".into()]);
        let b = ints(vec![1]);
        let c = compare(&a, BinaryOp::Eq, &b);
        assert!(c.value_at(0).is_null());
    }

    #[test]
    fn three_valued_logic() {
        let t = Column::from_opt_bool(vec![Some(true), Some(false), None]);
        let f = Column::from_opt_bool(vec![Some(false), Some(false), Some(false)]);
        let n = Column::from_opt_bool(vec![None, None, None]);
        // false AND null = false; true AND null = null
        assert_eq!(bool_and(&t, &n).value_at(0), Value::Null);
        assert_eq!(bool_and(&f, &n).value_at(0), Value::Bool(false));
        // true OR null = true; false OR null = null
        assert_eq!(bool_or(&t, &n).value_at(0), Value::Bool(true));
        assert_eq!(bool_or(&f, &n).value_at(0), Value::Null);
    }

    #[test]
    fn masks_treat_null_as_false() {
        let c = Column::from_opt_bool(vec![Some(true), None, Some(false)]);
        assert_eq!(column_to_mask(&c).to_bools(), vec![true, false, false]);
        let nums = ints(vec![0, 3]);
        assert_eq!(column_to_mask(&nums).to_bools(), vec![false, true]);
    }

    #[test]
    fn grouping_clusters_equal_keys_across_types() {
        let k1 = Column::from_values(&[
            Value::Int(1),
            Value::Float(1.0),
            Value::Int(2),
            Value::Null,
            Value::Null,
        ]);
        let g = group_rows(&[k1], 5);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.gids[0], g.gids[1], "1 and 1.0 must group together");
        assert_eq!(g.gids[3], g.gids[4], "NULLs group together");
    }

    #[test]
    fn row_index_skips_null_keys() {
        let build = vec![Column::from_opt_i64(vec![Some(1), None, Some(2)])];
        let idx = RowIndex::build(&build, 3);
        let probe = vec![Column::from_opt_i64(vec![Some(1), None])];
        let hashes = hash_rows(&probe, 2);
        assert_eq!(idx.probe(&probe, hashes[0], 0), vec![0]);
        assert!(idx.probe(&probe, hashes[1], 1).is_empty());
    }

    #[test]
    fn parallel_hashing_grouping_and_join_build_match_serial() {
        use crate::parallel::{ThreadPool, MORSEL_ROWS};
        let n = MORSEL_ROWS * 2 + 123;
        let keys: Vec<Option<i64>> = (0..n as i64)
            .map(|i| (i % 97 != 0).then_some(i % 13))
            .collect();
        let cols = vec![Column::from_opt_i64(keys)];
        let pool = ThreadPool::new(4);

        assert_eq!(hash_rows(&cols, n), par_hash_rows(&cols, n, &pool));

        let serial = group_rows(&cols, n);
        let parallel = group_rows_with(&cols, n, &pool);
        assert_eq!(serial.gids, parallel.gids);
        assert_eq!(serial.representatives, parallel.representatives);

        let serial_idx = RowIndex::build(&cols, n);
        let par_idx = RowIndex::build_with(&cols, n, &pool);
        let probe_hashes = hash_rows(&cols, n);
        for row in (0..n).step_by(4993) {
            assert_eq!(
                serial_idx.probe(&cols, probe_hashes[row], row),
                par_idx.probe(&cols, probe_hashes[row], row),
                "bucket row order must match the serial build"
            );
        }
    }

    #[test]
    fn parallel_mask_matches_serial() {
        use crate::parallel::{ThreadPool, MORSEL_ROWS};
        let n = MORSEL_ROWS + 77;
        let col =
            Column::from_opt_bool((0..n).map(|i| (i % 7 != 0).then_some(i % 3 == 0)).collect());
        let pool = ThreadPool::new(3);
        assert_eq!(column_to_mask(&col), par_column_to_mask(&col, &pool));
    }

    #[test]
    fn parallel_filter_mask_matches_compare_plus_mask() {
        use crate::parallel::{ThreadPool, MORSEL_ROWS};
        let n = MORSEL_ROWS + 501;
        let pool = ThreadPool::new(4);
        // nullable floats with NaNs against a scalar threshold
        let floats = Column::from_opt_f64(
            (0..n)
                .map(|i| {
                    (i % 5 != 0).then(|| {
                        if i % 11 == 0 {
                            f64::NAN
                        } else {
                            i as f64 % 37.0
                        }
                    })
                })
                .collect(),
        );
        let threshold = Column::repeat(&Value::Float(15.0), n);
        // large ints that an f64 view could not order correctly
        let big = Column::from_i64((0..n as i64).map(|i| i64::MAX - i % 3).collect());
        let big2 = Column::from_i64(vec![i64::MAX - 1; n]);
        for op in [BinaryOp::Gt, BinaryOp::LtEq, BinaryOp::Eq] {
            assert_eq!(
                column_to_mask(&compare(&floats, op, &threshold)),
                par_filter_mask(&floats, op, &threshold, &pool),
                "{op:?} on nullable floats"
            );
            assert_eq!(
                column_to_mask(&compare(&big, op, &big2)),
                par_filter_mask(&big, op, &big2, &pool),
                "{op:?} on large ints"
            );
        }
    }

    #[test]
    fn dict_radix_and_hash_groupings_are_identical() {
        use crate::parallel::{GroupStrategy, ThreadPool, MORSEL_ROWS};
        let n = MORSEL_ROWS + 321;
        // integral keys with NULLs: dictionary-eligible
        let small = vec![Column::from_opt_i64(
            (0..n as i64)
                .map(|i| (i % 97 != 0).then_some(i % 13))
                .collect(),
        )];
        // composite keys including a bool dimension
        let composite = vec![
            Column::from_opt_i64(
                (0..n as i64)
                    .map(|i| (i % 31 != 0).then_some(i % 7))
                    .collect(),
            ),
            Column::from_bool((0..n).map(|i| i % 2 == 0).collect()),
        ];
        // wide-range keys: dictionary-ineligible, radix-friendly
        let wide = vec![Column::from_i64(
            (0..n as i64).map(|i| i * 104_729).collect(),
        )];
        for keys in [&small, &composite, &wide] {
            let reference = {
                let pool = ThreadPool::serial();
                pool.set_group_strategy(GroupStrategy::Hash);
                group_rows_with(keys, n, &pool)
            };
            for threads in [1usize, 4] {
                for strategy in [
                    GroupStrategy::Auto,
                    GroupStrategy::Hash,
                    GroupStrategy::Dict,
                    GroupStrategy::Radix,
                ] {
                    let pool = ThreadPool::new(threads);
                    pool.set_group_strategy(strategy);
                    let g = group_rows_with(keys, n, &pool);
                    assert_eq!(
                        g.gids, reference.gids,
                        "{strategy} gids at {threads} threads"
                    );
                    assert_eq!(
                        g.representatives, reference.representatives,
                        "{strategy} representatives at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn cast_string_to_numbers() {
        let s = Column::from_str(vec!["42".into(), "x".into(), " 3.5 ".into()]);
        let i = cast_column(&s, verdict_sql::ast::CastType::Integer);
        assert_eq!(i.value_at(0), Value::Int(42));
        assert!(i.value_at(1).is_null());
        let d = cast_column(&s, verdict_sql::ast::CastType::Double);
        assert_eq!(d.value_at(2), Value::Float(3.5));
    }
}
