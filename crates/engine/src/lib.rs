//! # verdict-engine
//!
//! An in-memory columnar SQL execution engine used as the "underlying
//! database" substrate for VerdictDB-rs.
//!
//! The paper runs VerdictDB on top of Apache Impala, Apache Spark SQL, and
//! Amazon Redshift; none of those are available here, so this crate provides
//! a standards-conforming relational engine with the feature set VerdictDB
//! requires (§2.1 of the paper): `rand()`, hash functions, window functions,
//! `CREATE TABLE … AS SELECT`, equi-joins, grouping/aggregation, and derived
//! tables.  Because VerdictDB interacts with the engine purely through SQL
//! text (the [`Backend`] trait, historically named `Connection`), the
//! middleware code paths exercised are identical to those against a
//! production engine — and any other [`Backend`] implementation (such as the
//! server crate's remote wire-protocol backend) can be swapped in.
//!
//! Per-engine latency *profiles* ([`profile::EngineProfile`]) model the fixed
//! overhead and per-row scan cost of the paper's three engines so that the
//! speedup experiments preserve the published shape.
//!
//! ## Example
//!
//! ```
//! use verdict_engine::{Engine, TableBuilder};
//!
//! let engine = Engine::with_seed(1);
//! let table = TableBuilder::new()
//!     .int_column("id", (0..100).collect())
//!     .float_column("price", (0..100).map(|i| i as f64).collect())
//!     .build()
//!     .unwrap();
//! engine.register_table("sales", table);
//!
//! let result = engine.execute_sql("SELECT count(*) AS cnt FROM sales WHERE price >= 50").unwrap();
//! assert_eq!(result.table.value(0, 0).as_i64(), Some(50));
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod catalog;
pub mod column;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod functions;
pub mod kernels;
pub mod parallel;
pub mod persist;
pub mod profile;
pub mod schema;
pub mod selvec;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use column::{Bitmap, Column, ColumnData};
pub use engine::{Backend, Connection, Engine, ExecStats, QueryResult};
pub use error::{EngineError, EngineResult};
pub use exec::progressive::{BlockScan, ProgressiveScan};
pub use parallel::{GroupStrategy, ThreadPool, MORSEL_ROWS};
pub use persist::{ScanSource, StoreHandle, TableSource};
pub use profile::EngineProfile;
pub use schema::{Field, Schema};
pub use selvec::SelVec;
pub use table::{Table, TableBuilder};
pub use value::{DataType, KeyValue, Value};
