//! Morsel-driven parallel execution.
//!
//! The engine partitions columnar work into fixed-size **morsels** of
//! [`MORSEL_ROWS`] rows and fans the morsels out over a small pool of
//! `std::thread` workers.  Two properties are load-bearing:
//!
//! * **Determinism** — partial states are merged **in morsel order**, never
//!   in thread-completion order, and the morsel boundaries depend only on the
//!   row count.  A kernel therefore produces bit-identical results whether it
//!   runs on one thread or sixteen; the thread count only changes wall-clock
//!   time.
//! * **Zero-cost fallback** — a pool with `parallelism() == 1` (or a single
//!   morsel of input) runs the closures inline on the calling thread with no
//!   spawning, no channels, and no allocation beyond the result vector, so
//!   the serial path stays as fast as before the parallel layer existed.
//!
//! The pool itself is a lightweight handle (an atomic thread-count), so it
//! can be shared through `Arc` from [`crate::engine::Engine`] down into the
//! executor and kernels, and resized at runtime via
//! [`crate::engine::Backend::set_parallelism`].

use std::ops::Range;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Grouping algorithm selector for GROUP BY / DISTINCT / window-partition
/// clustering ([`crate::kernels::group_rows_with`]).
///
/// Every strategy produces the **identical** [`crate::kernels::Grouping`]
/// (same group ids, same first-appearance representatives), so switching
/// strategies never changes an answer — only latency.  That is why the knob
/// may live on the shared pool and be flipped at runtime via `SET`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroupStrategy {
    /// Pick per grouping: dictionary keys when the key columns admit a small
    /// dense code space, radix partitioning when a sample of the key hashes
    /// looks high-cardinality, hash clustering otherwise.
    #[default]
    Auto,
    /// Always use morsel-local hash clustering with a sequential merge.
    Hash,
    /// Prefer dictionary-encoded keys; falls back to hash clustering when
    /// the key columns do not admit a dictionary.
    Dict,
    /// Always use radix-partitioned clustering.
    Radix,
}

impl GroupStrategy {
    /// Parses the `SET group_strategy` surface form.
    pub fn parse(s: &str) -> Option<GroupStrategy> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Some(GroupStrategy::Auto),
            "hash" => Some(GroupStrategy::Hash),
            "dict" | "dictionary" => Some(GroupStrategy::Dict),
            "radix" => Some(GroupStrategy::Radix),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> GroupStrategy {
        match v {
            1 => GroupStrategy::Hash,
            2 => GroupStrategy::Dict,
            3 => GroupStrategy::Radix,
            _ => GroupStrategy::Auto,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            GroupStrategy::Auto => 0,
            GroupStrategy::Hash => 1,
            GroupStrategy::Dict => 2,
            GroupStrategy::Radix => 3,
        }
    }
}

impl std::fmt::Display for GroupStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GroupStrategy::Auto => "auto",
            GroupStrategy::Hash => "hash",
            GroupStrategy::Dict => "dict",
            GroupStrategy::Radix => "radix",
        })
    }
}

/// Rows per morsel.  64K rows of an 8-byte column is 512 KiB — big enough to
/// amortise scheduling, small enough that a handful of morsels exist at the
/// benchmark scale of one million rows.
pub const MORSEL_ROWS: usize = 64 * 1024;

/// A fork-join worker pool for morsel-parallel kernels.
///
/// `run`/`run_morsels` use `std::thread::scope`, so closures may borrow the
/// caller's columns without `'static` bounds; workers pull task indices from
/// a shared atomic counter (dynamic load balancing) while results are slotted
/// back by task index (deterministic merge order).
pub struct ThreadPool {
    threads: AtomicUsize,
    group_strategy: AtomicU8,
}

impl ThreadPool {
    /// A pool that runs kernels across `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> ThreadPool {
        ThreadPool {
            threads: AtomicUsize::new(threads.max(1)),
            group_strategy: AtomicU8::new(GroupStrategy::Auto.as_u8()),
        }
    }

    /// A pool that always runs inline on the calling thread.
    pub fn serial() -> ThreadPool {
        ThreadPool::new(1)
    }

    /// A pool sized from `std::thread::available_parallelism()`, overridable
    /// with the `VERDICT_PARALLELISM` environment variable (used by CI to run
    /// the suite at a pinned thread count).
    pub fn with_default_parallelism() -> ThreadPool {
        let threads = std::env::var("VERDICT_PARALLELISM")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ThreadPool::new(threads)
    }

    /// The configured worker count.
    pub fn parallelism(&self) -> usize {
        self.threads.load(Ordering::Relaxed).max(1)
    }

    /// Reconfigures the worker count (clamped to ≥ 1); takes effect on the
    /// next `run` call.
    pub fn set_parallelism(&self, threads: usize) {
        self.threads.store(threads.max(1), Ordering::Relaxed);
    }

    /// The grouping strategy kernels on this pool should use.
    pub fn group_strategy(&self) -> GroupStrategy {
        GroupStrategy::from_u8(self.group_strategy.load(Ordering::Relaxed))
    }

    /// Reconfigures the grouping strategy; takes effect on the next grouping.
    /// Safe at runtime because every strategy yields identical groupings.
    pub fn set_group_strategy(&self, strategy: GroupStrategy) {
        self.group_strategy
            .store(strategy.as_u8(), Ordering::Relaxed);
    }

    /// The morsel decomposition of `rows` rows: contiguous ranges of
    /// [`MORSEL_ROWS`] rows (the last one shorter).  Depends only on `rows`,
    /// never on the thread count — this is what makes merge order, and hence
    /// results, independent of parallelism.
    pub fn morsels(rows: usize) -> Vec<Range<usize>> {
        (0..rows.div_ceil(MORSEL_ROWS))
            .map(|i| (i * MORSEL_ROWS)..((i + 1) * MORSEL_ROWS).min(rows))
            .collect()
    }

    /// Runs `tasks` independent closures and returns their results **in task
    /// order**.  Inline when the pool is serial or there is at most one task.
    pub fn run<T: Send>(&self, tasks: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
        let workers = self.parallelism().min(tasks);
        if workers <= 1 {
            return (0..tasks).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(tasks);
        slots.resize_with(tasks, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, T)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            done.push((i, f(i)));
                        }
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, v) in handle.join().expect("worker thread panicked") {
                    slots[i] = Some(v);
                }
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("every task index was claimed"))
            .collect()
    }

    /// Runs one closure per morsel of `rows` rows, returning the per-morsel
    /// results in morsel (= row) order.
    pub fn run_morsels<T: Send>(
        &self,
        rows: usize,
        f: impl Fn(Range<usize>) -> T + Sync,
    ) -> Vec<T> {
        let morsels = Self::morsels(rows);
        self.run(morsels.len(), |i| f(morsels[i].clone()))
    }
}

impl Default for ThreadPool {
    fn default() -> ThreadPool {
        ThreadPool::with_default_parallelism()
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("parallelism", &self.parallelism())
            .field("group_strategy", &self.group_strategy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_rows_exactly_once() {
        for rows in [
            0usize,
            1,
            MORSEL_ROWS - 1,
            MORSEL_ROWS,
            MORSEL_ROWS + 1,
            300_000,
        ] {
            let morsels = ThreadPool::morsels(rows);
            let mut expected = 0usize;
            for m in &morsels {
                assert_eq!(m.start, expected, "morsels must be contiguous");
                assert!(m.end > m.start && m.end - m.start <= MORSEL_ROWS);
                expected = m.end;
            }
            assert_eq!(expected, rows);
        }
    }

    #[test]
    fn run_returns_results_in_task_order_regardless_of_threads() {
        for threads in [1, 2, 7] {
            let pool = ThreadPool::new(threads);
            let out = pool.run(23, |i| i * i);
            assert_eq!(out, (0..23).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_morsels_is_identical_across_thread_counts() {
        let rows = 3 * MORSEL_ROWS + 17;
        let data: Vec<f64> = (0..rows).map(|i| (i as f64).sin()).collect();
        let partials = |threads: usize| {
            ThreadPool::new(threads).run_morsels(rows, |r| data[r].iter().sum::<f64>())
        };
        let serial = partials(1);
        for threads in [2, 4, 8] {
            let parallel = partials(threads);
            assert_eq!(serial.len(), parallel.len());
            for (a, b) in serial.iter().zip(parallel.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "partials must be bit-identical");
            }
        }
    }

    #[test]
    fn parallelism_is_resizable_and_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.parallelism(), 1);
        pool.set_parallelism(4);
        assert_eq!(pool.parallelism(), 4);
        pool.set_parallelism(0);
        assert_eq!(pool.parallelism(), 1);
    }
}
