//! Persistence integration points: the [`StoreHandle`] trait the catalog
//! uses to reach an on-disk scramble store, and the [`ScanSource`] trait
//! progressive block scans read rows through.
//!
//! The engine itself stays purely in-memory; a storage crate implements
//! these traits and is attached with [`crate::catalog::Catalog::set_store`].
//! Keeping the traits here (rather than depending on the storage crate)
//! preserves the dependency order `engine ← store ← core ← server`.
//!
//! [`ScanSource`] abstracts "a table readable in block-sized ranges": the
//! in-memory [`TableSource`] wraps an `Arc<Table>` (pinning it against
//! concurrent catalog writes, exactly like the pre-refactor progressive
//! scan), while a disk-backed implementation decodes columnar blocks on
//! demand so a cold-start `STREAM` never materialises the whole scramble.

use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::schema::Schema;
use crate::table::Table;
use std::sync::Arc;

/// A positional row source for progressive block scans.
///
/// Implementations must be stable for the lifetime of the scan: two reads of
/// the same range return bit-identical columns, and `num_rows` never changes.
/// In-memory sources guarantee this by holding an `Arc` snapshot; disk-backed
/// sources detect a concurrent rebuild and return a typed error instead of
/// silently serving mixed versions.
pub trait ScanSource: Send + Sync {
    /// The schema of the source table.
    fn schema(&self) -> &Schema;

    /// Total number of rows the source exposes.
    fn num_rows(&self) -> usize;

    /// Reads `len` rows starting at absolute row `start`, returning the
    /// columns selected by `cols` (`None` = every column, in schema order).
    /// The range must lie within `0..num_rows()`.
    fn read_range(
        &self,
        cols: Option<&[usize]>,
        start: usize,
        len: usize,
    ) -> EngineResult<Vec<Column>>;

    /// Gathers full rows at the given absolute row indices (ascending),
    /// returning every column in schema order.
    fn gather(&self, rows: &[usize]) -> EngineResult<Vec<Column>>;
}

/// [`ScanSource`] over an in-memory table snapshot.
///
/// Holding the `Arc` pins the snapshot: concurrent catalog writes replace
/// the catalog's `Arc`, they never mutate this one, so an open scan keeps
/// reading the exact table it started on.
pub struct TableSource {
    table: Arc<Table>,
}

impl TableSource {
    /// Wraps a pinned table snapshot.
    pub fn new(table: Arc<Table>) -> TableSource {
        TableSource { table }
    }
}

impl ScanSource for TableSource {
    fn schema(&self) -> &Schema {
        &self.table.schema
    }

    fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    fn read_range(
        &self,
        cols: Option<&[usize]>,
        start: usize,
        len: usize,
    ) -> EngineResult<Vec<Column>> {
        if start + len > self.table.num_rows() {
            return Err(EngineError::Execution(format!(
                "scan range {start}..{} out of bounds ({} rows)",
                start + len,
                self.table.num_rows()
            )));
        }
        Ok(match cols {
            Some(idxs) => idxs
                .iter()
                .map(|&i| self.table.columns[i].slice(start, len))
                .collect(),
            None => self
                .table
                .columns
                .iter()
                .map(|c| c.slice(start, len))
                .collect(),
        })
    }

    fn gather(&self, rows: &[usize]) -> EngineResult<Vec<Column>> {
        Ok(self.table.columns.iter().map(|c| c.take(rows)).collect())
    }
}

/// The catalog's view of an on-disk table store.
///
/// `key` arguments are catalog keys (already lower-cased).  Implementations
/// persist whole tables ([`save`](StoreHandle::save)) and incremental row
/// batches ([`append`](StoreHandle::append)) atomically — a crash between
/// any two calls must leave every persisted table readable at one of its
/// committed states.  The `version` passed to mutating calls is the
/// catalog's data version after the mutation; it is stored alongside the
/// table so data versions survive restarts monotonically.
pub trait StoreHandle: Send + Sync + std::fmt::Debug {
    /// True when the store holds a persisted table under this key.
    fn contains(&self, key: &str) -> bool;

    /// Keys of every persisted table.
    fn table_names(&self) -> Vec<String>;

    /// Row count of a persisted table, without materialising it.
    fn row_count(&self, key: &str) -> Option<u64>;

    /// Persisted data version of a table.
    fn version(&self, key: &str) -> Option<u64>;

    /// Materialises a persisted table, returning it with its data version.
    fn load(&self, key: &str) -> EngineResult<(Table, u64)>;

    /// Atomically creates or replaces a persisted table.
    fn save(&self, key: &str, table: &Table, version: u64) -> EngineResult<()>;

    /// Atomically appends a batch of rows to a persisted table.
    fn append(&self, key: &str, rows: &Table, version: u64) -> EngineResult<()>;

    /// Atomically removes a persisted table (no-op when absent).
    fn remove(&self, key: &str) -> EngineResult<()>;

    /// Opens a block-granular reader over a persisted table that decodes
    /// from disk on demand (no full materialisation).
    fn open_scan(&self, key: &str) -> EngineResult<Arc<dyn ScanSource>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::value::Value;

    fn table() -> Arc<Table> {
        Arc::new(
            TableBuilder::new()
                .int_column("id", (0..100).collect())
                .float_column("price", (0..100).map(|i| i as f64 * 0.5).collect())
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn table_source_reads_ranges_and_gathers() {
        let src = TableSource::new(table());
        assert_eq!(src.num_rows(), 100);
        let cols = src.read_range(None, 10, 5).unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].value_at(0), Value::Int(10));
        let thin = src.read_range(Some(&[1]), 0, 3).unwrap();
        assert_eq!(thin.len(), 1);
        assert_eq!(thin[0].value_at(2), Value::Float(1.0));
        let gathered = src.gather(&[1, 99]).unwrap();
        assert_eq!(gathered[0].value_at(1), Value::Int(99));
    }

    #[test]
    fn table_source_rejects_out_of_bounds_ranges() {
        let src = TableSource::new(table());
        assert!(src.read_range(None, 90, 20).is_err());
    }
}
