//! Engine latency profiles.
//!
//! The paper evaluates VerdictDB on three engines (Amazon Redshift, Apache
//! Spark SQL, Apache Impala) and observes that the *speedup* delivered by AQP
//! depends on how much of a query's latency is fixed overhead (catalog
//! access, planning) versus per-row data processing (§6.2): engines with
//! smaller fixed overheads (Redshift) see larger speedups.
//!
//! Since the real engines are not available in this environment, a profile
//! models each engine's latency as
//!
//! ```text
//! latency = fixed_overhead + rows_scanned * per_row_cost + measured_cpu_time
//! ```
//!
//! where `measured_cpu_time` is the wall-clock time our in-memory engine
//! spent.  Reported speedups therefore preserve the paper's *shape* (which
//! engine benefits more, how speedup scales with sample ratio) without
//! claiming to reproduce the absolute EC2 numbers.
//!
//! Since the engine executes kernels morsel-parallel
//! ([`crate::parallel::ThreadPool`]), `measured_cpu_time` already reflects
//! the configured thread count; the fixed and per-row components model the
//! *remote* engine and are unaffected by local parallelism, which keeps the
//! modeled speedup ratios comparable across pool sizes.

use crate::engine::ExecStats;
use std::time::Duration;

/// A latency model for one underlying engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineProfile {
    /// Engine name as reported in benchmark output.
    pub name: &'static str,
    /// Fixed per-query overhead (planning, catalog, scheduling).
    pub fixed_overhead: Duration,
    /// Cost of scanning and processing one million rows.
    pub per_million_rows: Duration,
}

impl EngineProfile {
    /// Amazon Redshift: small fixed overhead, columnar scans — the engine
    /// where the paper saw the largest speedups (average 24×).
    pub fn redshift() -> EngineProfile {
        EngineProfile {
            name: "redshift",
            fixed_overhead: Duration::from_millis(180),
            per_million_rows: Duration::from_millis(950),
        }
    }

    /// Apache Spark SQL: large job-scheduling overhead per query, so relative
    /// speedups are the smallest of the three (average 12×).
    pub fn spark_sql() -> EngineProfile {
        EngineProfile {
            name: "sparksql",
            fixed_overhead: Duration::from_millis(1600),
            per_million_rows: Duration::from_millis(1400),
        }
    }

    /// Apache Impala: moderate overhead (average 18.6× in the paper).
    pub fn impala() -> EngineProfile {
        EngineProfile {
            name: "impala",
            fixed_overhead: Duration::from_millis(600),
            per_million_rows: Duration::from_millis(1100),
        }
    }

    /// All three paper engines.
    pub fn all() -> Vec<EngineProfile> {
        vec![Self::redshift(), Self::spark_sql(), Self::impala()]
    }

    /// Models the latency this engine would exhibit for a statement with the
    /// given execution statistics.
    pub fn model_latency(&self, stats: &ExecStats) -> Duration {
        let scan = self
            .per_million_rows
            .mul_f64(stats.rows_scanned as f64 / 1_000_000.0);
        self.fixed_overhead + scan + stats.elapsed
    }

    /// The speedup of running `fast` instead of `slow` under this profile.
    pub fn speedup(&self, slow: &ExecStats, fast: &ExecStats) -> f64 {
        let slow_latency = self.model_latency(slow).as_secs_f64();
        let fast_latency = self.model_latency(fast).as_secs_f64();
        if fast_latency <= 0.0 {
            return 1.0;
        }
        slow_latency / fast_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(rows: u64, micros: u64) -> ExecStats {
        ExecStats {
            rows_scanned: rows,
            elapsed: Duration::from_micros(micros),
        }
    }

    #[test]
    fn sampling_fewer_rows_is_faster_under_every_profile() {
        let full = stats(10_000_000, 800_000);
        let sample = stats(100_000, 12_000);
        for p in EngineProfile::all() {
            assert!(
                p.speedup(&full, &sample) > 1.0,
                "{} should speed up",
                p.name
            );
        }
    }

    #[test]
    fn redshift_gets_larger_speedups_than_spark() {
        // Same workload, different fixed overheads: the engine with the lower
        // fixed overhead benefits more from the reduced data processing time,
        // matching the paper's observation in Section 6.2.
        let full = stats(10_000_000, 500_000);
        let sample = stats(100_000, 8_000);
        let redshift = EngineProfile::redshift().speedup(&full, &sample);
        let spark = EngineProfile::spark_sql().speedup(&full, &sample);
        assert!(
            redshift > spark,
            "expected redshift speedup {redshift:.1} > spark {spark:.1}"
        );
    }

    #[test]
    fn model_latency_is_monotone_in_rows() {
        let p = EngineProfile::impala();
        assert!(p.model_latency(&stats(1_000_000, 0)) < p.model_latency(&stats(5_000_000, 0)));
    }
}
