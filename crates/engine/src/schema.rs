//! Table schemas: ordered, possibly qualifier-tagged fields.

use crate::error::{EngineError, EngineResult};
use crate::value::DataType;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// The table alias this field is visible under (e.g. `o` in `orders o`),
    /// if any.  Fields produced by expressions have no qualifier.
    pub qualifier: Option<String>,
    /// Column name (lower-cased for case-insensitive resolution).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates an unqualified field.
    pub fn new(name: &str, data_type: DataType) -> Field {
        Field {
            qualifier: None,
            name: name.to_ascii_lowercase(),
            data_type,
        }
    }

    /// Creates a field qualified with a table alias.
    pub fn qualified(qualifier: &str, name: &str, data_type: DataType) -> Field {
        Field {
            qualifier: Some(qualifier.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
            data_type,
        }
    }

    /// True when this field matches a (possibly qualified) column reference.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .is_some_and(|fq| fq.eq_ignore_ascii_case(q)),
        }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schema {
    /// The fields in output order.
    pub fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields }
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Resolves a column reference to a field index.
    ///
    /// Returns an error when the reference is unknown or ambiguous (matches
    /// more than one field and no qualifier was given).
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> EngineResult<usize> {
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches(qualifier, name))
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            1 => Ok(matches[0]),
            0 => Err(EngineError::ColumnNotFound(match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            })),
            _ => {
                // Ambiguity between identically-named columns from a self-join:
                // prefer an exact qualifier match, otherwise take the first
                // occurrence (matching the permissive behaviour of Hive/Spark
                // for `USING`-style equi joins on the same column name).
                Ok(matches[0])
            }
        }
    }

    /// Returns the index of a field by bare name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Concatenates two schemas (used by joins), keeping qualifiers.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.clone();
        fields.extend(other.fields.iter().cloned());
        Schema { fields }
    }

    /// Returns a copy of this schema with every field re-qualified to `alias`.
    pub fn with_qualifier(&self, alias: &str) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::qualified(alias, &f.name, f.data_type))
                .collect(),
        }
    }

    /// Returns a copy with all qualifiers removed (used when materialising a
    /// derived table under a new alias).
    pub fn without_qualifiers(&self) -> Schema {
        Schema {
            fields: self
                .fields
                .iter()
                .map(|f| Field::new(&f.name, f.data_type))
                .collect(),
        }
    }

    /// Field names in order.
    pub fn names(&self) -> Vec<String> {
        self.fields.iter().map(|f| f.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::qualified("o", "order_id", DataType::Int),
            Field::qualified("o", "price", DataType::Float),
            Field::qualified("p", "order_id", DataType::Int),
            Field::new("city", DataType::Str),
        ])
    }

    #[test]
    fn resolves_qualified_and_unqualified() {
        let s = schema();
        assert_eq!(s.resolve(Some("p"), "order_id").unwrap(), 2);
        assert_eq!(s.resolve(None, "city").unwrap(), 3);
        assert_eq!(s.resolve(None, "price").unwrap(), 1);
        assert!(s.resolve(None, "missing").is_err());
        // ambiguous unqualified reference falls back to first match
        assert_eq!(s.resolve(None, "order_id").unwrap(), 0);
    }

    #[test]
    fn resolution_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.resolve(Some("O"), "ORDER_ID").unwrap(), 0);
    }

    #[test]
    fn requalification_replaces_alias() {
        let s = schema().with_qualifier("t");
        assert!(s.fields.iter().all(|f| f.qualifier.as_deref() == Some("t")));
    }

    #[test]
    fn join_concatenates() {
        let s = schema();
        let joined = s.join(&Schema::new(vec![Field::new("extra", DataType::Bool)]));
        assert_eq!(joined.len(), 5);
    }
}
