//! Packed selection vectors.
//!
//! A [`SelVec`] is the engine's filter-mask representation: one bit per row,
//! packed 64 rows to a `u64` word.  Compared to the previous `Vec<bool>`
//! masks it is 8x smaller (a mask over a 64K-row morsel is 1 KiB and lives in
//! L1), its combinators (`and`/`or`) are single-instruction word loops, and
//! counting selected rows is a `popcount` over the words instead of a
//! per-element branch.
//!
//! Two construction/consumption idioms keep the hot paths branch-free:
//!
//! * [`SelVec::from_fn`] builds the mask 64 lanes at a time with
//!   `bits |= (pred as u64) << lane` — no per-row branch, so the compiler can
//!   keep the predicate loop vectorizable.
//! * [`SelVec::for_each_index`] walks set bits with `trailing_zeros` +
//!   `w &= w - 1`, so sparse masks visit only the selected rows.
//!
//! Morsel-parallel kernels concatenate per-morsel masks with
//! [`SelVec::extend_aligned`]: because [`crate::parallel::MORSEL_ROWS`] is a
//! multiple of 64, every non-final morsel mask ends on a word boundary and
//! concatenation is a plain `extend_from_slice` over words — the per-element
//! copies of the old `Vec<bool>` stitching are gone.

/// A packed bitmask over `len` rows selecting a subset of them.
///
/// Bit `i % 64` of word `i / 64` is 1 when row `i` is selected.  Bits at
/// positions `>= len` in the last word are always 0 (maintained by every
/// constructor), which is what makes [`SelVec::count`] a plain popcount.
#[derive(Clone, PartialEq, Eq)]
pub struct SelVec {
    words: Vec<u64>,
    len: usize,
}

impl SelVec {
    /// An empty mask over zero rows.
    pub fn empty() -> SelVec {
        SelVec {
            words: Vec::new(),
            len: 0,
        }
    }

    /// A mask of `len` rows with every row deselected.
    pub fn new_false(len: usize) -> SelVec {
        SelVec {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// A mask of `len` rows with every row selected.
    pub fn new_true(len: usize) -> SelVec {
        let mut sel = SelVec {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        sel.mask_tail();
        sel
    }

    /// Builds a mask of `len` rows from a per-row predicate, 64 lanes per
    /// word with no per-row branching.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> SelVec {
        let mut words = Vec::with_capacity(len.div_ceil(64));
        let mut base = 0usize;
        while base < len {
            let lanes = (len - base).min(64);
            let mut bits = 0u64;
            for lane in 0..lanes {
                bits |= (f(base + lane) as u64) << lane;
            }
            words.push(bits);
            base += 64;
        }
        SelVec { words, len }
    }

    /// Builds a mask from an unpacked boolean slice.
    pub fn from_bools(bools: &[bool]) -> SelVec {
        SelVec::from_fn(bools.len(), |i| bools[i])
    }

    /// Number of rows the mask covers (selected or not).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether row `i` is selected.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Selects row `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Number of selected rows (a popcount over the words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Calls `f` with each selected row index, in ascending order.  Sparse
    /// masks visit only the set bits (`trailing_zeros` + clear-lowest-bit).
    #[inline]
    pub fn for_each_index(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                f(wi * 64 + w.trailing_zeros() as usize);
                w &= w - 1;
            }
        }
    }

    /// The selection vector: indices of the selected rows, ascending.
    pub fn indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count());
        self.for_each_index(|i| out.push(i));
        out
    }

    /// Word-wise intersection of two equal-length masks.
    pub fn and(&self, other: &SelVec) -> SelVec {
        debug_assert_eq!(self.len, other.len);
        SelVec {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Word-wise intersection with a validity bitmap's words, offset so
    /// that mask row `k` ANDs with bitmap bit `start + k`.  `start` must be
    /// word-aligned — true for every caller, because masks are built per
    /// morsel and [`crate::parallel::MORSEL_ROWS`] is a multiple of 64.
    /// This is how kernels fold NULLs into a mask without a per-row
    /// validity branch in the comparison loop.
    pub fn and_valid_words(&mut self, valid: &[u64], start: usize) {
        debug_assert!(start.is_multiple_of(64), "start {start} not word-aligned");
        let first = start / 64;
        for (w, word) in self.words.iter_mut().enumerate() {
            *word &= valid[first + w];
        }
    }

    /// Word-wise union of two equal-length masks.
    pub fn or(&self, other: &SelVec) -> SelVec {
        debug_assert_eq!(self.len, other.len);
        SelVec {
            words: self
                .words
                .iter()
                .zip(other.words.iter())
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Appends `other`, requiring the current length to be word-aligned so
    /// the words concatenate without shifting.  Morsel-parallel kernels rely
    /// on this: [`crate::parallel::MORSEL_ROWS`] is a multiple of 64, so all
    /// non-final per-morsel masks end exactly on a word boundary.
    pub fn extend_aligned(&mut self, other: &SelVec) {
        assert!(
            self.len.is_multiple_of(64),
            "extend_aligned requires a word-aligned prefix (len {} not divisible by 64)",
            self.len
        );
        self.words.extend_from_slice(&other.words);
        self.len += other.len;
    }

    /// Unpacks to a boolean vector (tests and diagnostics).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Clears any bits at positions `>= len` in the final word.
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl std::fmt::Debug for SelVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SelVec")
            .field("len", &self.len)
            .field("count", &self.count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_round_trips_through_get_and_to_bools() {
        for len in [0usize, 1, 63, 64, 65, 130, 1000] {
            let sel = SelVec::from_fn(len, |i| i % 3 == 0);
            assert_eq!(sel.len(), len);
            for i in 0..len {
                assert_eq!(sel.get(i), i % 3 == 0, "row {i} of len {len}");
            }
            let bools = sel.to_bools();
            assert_eq!(SelVec::from_bools(&bools), sel);
        }
    }

    #[test]
    fn count_and_indices_agree_with_the_dense_scan() {
        let sel = SelVec::from_fn(517, |i| i % 7 == 2);
        let expected: Vec<usize> = (0..517).filter(|i| i % 7 == 2).collect();
        assert_eq!(sel.count(), expected.len());
        assert_eq!(sel.indices(), expected);
        let mut visited = Vec::new();
        sel.for_each_index(|i| visited.push(i));
        assert_eq!(visited, expected);
    }

    #[test]
    fn tail_bits_stay_clear() {
        let t = SelVec::new_true(70);
        assert_eq!(t.count(), 70);
        let f = SelVec::new_false(70);
        assert_eq!(f.count(), 0);
        assert_eq!(t.and(&f).count(), 0);
        assert_eq!(t.or(&f).count(), 70);
    }

    #[test]
    fn and_or_match_elementwise_logic() {
        let a = SelVec::from_fn(200, |i| i % 2 == 0);
        let b = SelVec::from_fn(200, |i| i % 3 == 0);
        let both = a.and(&b);
        let either = a.or(&b);
        for i in 0..200 {
            assert_eq!(both.get(i), i % 2 == 0 && i % 3 == 0);
            assert_eq!(either.get(i), i % 2 == 0 || i % 3 == 0);
        }
    }

    #[test]
    fn extend_aligned_concatenates_word_aligned_parts() {
        let mut acc = SelVec::empty();
        let a = SelVec::from_fn(128, |i| i % 5 == 0);
        let b = SelVec::from_fn(77, |i| i % 4 == 1);
        acc.extend_aligned(&a);
        acc.extend_aligned(&b);
        assert_eq!(acc.len(), 205);
        for i in 0..128 {
            assert_eq!(acc.get(i), a.get(i));
        }
        for i in 0..77 {
            assert_eq!(acc.get(128 + i), b.get(i));
        }
    }

    #[test]
    #[should_panic(expected = "word-aligned")]
    fn extend_aligned_rejects_unaligned_prefixes() {
        let mut acc = SelVec::new_true(65);
        acc.extend_aligned(&SelVec::new_true(64));
    }
}
