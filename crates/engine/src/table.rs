//! In-memory columnar tables.
//!
//! A [`Table`] is a schema plus one typed [`Column`] per field (see
//! [`crate::column`]).  Operators fully materialise their outputs; the engine
//! targets analytical workloads of up to a few million rows, which fits
//! comfortably in memory and keeps the operator implementations simple and
//! auditable.
//!
//! [`Table::value_at`] and [`Table::iter_rows`] provide a dynamically-typed
//! [`Value`] view for the planner/rewriter layers and tests; the engine's own
//! operators work on the typed columns directly.

use crate::column::Column;
use crate::error::{EngineError, EngineResult};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};

/// An in-memory columnar table (also used as the intermediate "frame" between
/// operators and as the result set returned to clients).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    /// Field names and types, one per column.
    pub schema: Schema,
    /// Column vectors, parallel to `schema.fields`.
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn empty(schema: Schema) -> Table {
        let columns = schema
            .fields
            .iter()
            .map(|f| Column::new_empty(f.data_type))
            .collect();
        Table { schema, columns }
    }

    /// Creates a table from a schema and columns, validating shape.
    pub fn new(schema: Schema, columns: Vec<Column>) -> EngineResult<Table> {
        if schema.len() != columns.len() {
            return Err(EngineError::Execution(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        if let Some(first) = columns.first() {
            let n = first.len();
            if columns.iter().any(|c| c.len() != n) {
                return Err(EngineError::Execution(
                    "columns have inconsistent lengths".to_string(),
                ));
            }
        }
        Ok(Table { schema, columns })
    }

    /// Creates a table from dynamically-typed value columns (compatibility
    /// shim for layers that assemble results row-by-row).
    pub fn from_value_columns(schema: Schema, columns: Vec<Vec<Value>>) -> EngineResult<Table> {
        let typed = schema
            .fields
            .iter()
            .zip(columns.iter())
            .map(|(f, c)| Column::from_values_typed(f.data_type, c))
            .collect();
        Table::new(schema, typed)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Materialises the value at (row, col).
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// Alias for [`Table::value_at`], kept for source compatibility with the
    /// previous cell accessor.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.value_at(row, col)
    }

    /// Materialises a whole row as a vector of values.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value_at(row)).collect()
    }

    /// Iterates the table row-by-row as materialised values (compatibility
    /// shim; operators should use the typed columns).
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.num_rows()).map(move |r| self.row(r))
    }

    /// Returns the column with the given (bare) name.
    pub fn column_by_name(&self, name: &str) -> EngineResult<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| EngineError::ColumnNotFound(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// Appends another table with a compatible column count (used by INSERT).
    pub fn append(&mut self, other: &Table) -> EngineResult<()> {
        if other.num_columns() != self.num_columns() {
            return Err(EngineError::TypeMismatch(format!(
                "cannot append table with {} columns into table with {}",
                other.num_columns(),
                self.num_columns()
            )));
        }
        for (dst, src) in self.columns.iter_mut().zip(other.columns.iter()) {
            dst.append(src);
        }
        Ok(())
    }

    /// Returns a new table containing only the rows selected by the packed
    /// `mask`.
    pub fn filter(&self, mask: &crate::selvec::SelVec) -> Table {
        debug_assert_eq!(mask.len(), self.num_rows());
        let columns = self.columns.iter().map(|c| c.filter(mask)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
        }
    }

    /// [`Table::filter`] with the per-column gathers fanned out over the
    /// pool.  Columns are independent, so the result is identical to the
    /// serial filter at any thread count.  Frames below one morsel stay on
    /// the serial path — spawning threads would cost more than the gather.
    pub fn filter_with(
        &self,
        mask: &crate::selvec::SelVec,
        pool: &crate::parallel::ThreadPool,
    ) -> Table {
        debug_assert_eq!(mask.len(), self.num_rows());
        if pool.parallelism() <= 1
            || self.num_rows() <= crate::parallel::MORSEL_ROWS
            || self.num_columns() <= 1
        {
            return self.filter(mask);
        }
        let columns = pool.run(self.columns.len(), |i| self.columns[i].filter(mask));
        Table {
            schema: self.schema.clone(),
            columns,
        }
    }

    /// Returns a new table containing the rows at `indices` (in that order).
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns = self.columns.iter().map(|c| c.take(indices)).collect();
        Table {
            schema: self.schema.clone(),
            columns,
        }
    }

    /// Returns the first `n` rows.
    pub fn limit(&self, n: usize) -> Table {
        let take = n.min(self.num_rows());
        let indices: Vec<usize> = (0..take).collect();
        self.take(&indices)
    }

    /// Approximate memory footprint in bytes, used by the engine profiles to
    /// model scan cost per engine.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum()
    }

    /// Renders the table as an ASCII grid, truncated to `max_rows` rows.
    /// Useful for examples and debugging output.
    pub fn to_ascii(&self, max_rows: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let shown = self.num_rows().min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = (0..self.num_columns())
                .map(|c| format_cell(&self.value_at(r, c)))
                .collect();
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{:width$}", n, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("-+-"),
        );
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        if self.num_rows() > shown {
            out.push_str(&format!("... ({} rows total)\n", self.num_rows()));
        }
        out
    }
}

fn format_cell(v: &Value) -> String {
    match v {
        Value::Float(f) => format!("{f:.4}"),
        other => other.to_string(),
    }
}

/// A convenience builder for constructing tables column-by-column, used by
/// the data generators and tests.  The typed methods build typed columns
/// directly — no `Value` boxing on the load path.
#[derive(Debug, Default)]
pub struct TableBuilder {
    fields: Vec<Field>,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Creates an empty builder.
    pub fn new() -> TableBuilder {
        TableBuilder::default()
    }

    /// Adds an integer column.
    pub fn int_column(mut self, name: &str, values: Vec<i64>) -> Self {
        self.fields.push(Field::new(name, DataType::Int));
        self.columns.push(Column::from_i64(values));
        self
    }

    /// Adds a nullable integer column.
    pub fn opt_int_column(mut self, name: &str, values: Vec<Option<i64>>) -> Self {
        self.fields.push(Field::new(name, DataType::Int));
        self.columns.push(Column::from_opt_i64(values));
        self
    }

    /// Adds a float column.
    pub fn float_column(mut self, name: &str, values: Vec<f64>) -> Self {
        self.fields.push(Field::new(name, DataType::Float));
        self.columns.push(Column::from_f64(values));
        self
    }

    /// Adds a nullable float column.
    pub fn opt_float_column(mut self, name: &str, values: Vec<Option<f64>>) -> Self {
        self.fields.push(Field::new(name, DataType::Float));
        self.columns.push(Column::from_opt_f64(values));
        self
    }

    /// Adds a string column.
    pub fn str_column(mut self, name: &str, values: Vec<String>) -> Self {
        self.fields.push(Field::new(name, DataType::Str));
        self.columns.push(Column::from_str(values));
        self
    }

    /// Adds a nullable string column.
    pub fn opt_str_column(mut self, name: &str, values: Vec<Option<String>>) -> Self {
        self.fields.push(Field::new(name, DataType::Str));
        self.columns.push(Column::from_opt_str(values));
        self
    }

    /// Adds a boolean column.
    pub fn bool_column(mut self, name: &str, values: Vec<bool>) -> Self {
        self.fields.push(Field::new(name, DataType::Bool));
        self.columns.push(Column::from_bool(values));
        self
    }

    /// Adds a column of dynamically-typed values coerced to `data_type`.
    pub fn value_column(mut self, name: &str, data_type: DataType, values: Vec<Value>) -> Self {
        self.fields.push(Field::new(name, data_type));
        self.columns
            .push(Column::from_values_typed(data_type, &values));
        self
    }

    /// Adds an already-typed column.
    pub fn column(mut self, name: &str, column: Column) -> Self {
        self.fields.push(Field::new(name, column.data_type()));
        self.columns.push(column);
        self
    }

    /// Finalises the table, validating column lengths.
    pub fn build(self) -> EngineResult<Table> {
        Table::new(Schema::new(self.fields), self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        TableBuilder::new()
            .int_column("id", vec![1, 2, 3, 4])
            .float_column("price", vec![10.0, 20.0, 30.0, 40.0])
            .str_column(
                "city",
                vec!["ann arbor", "detroit", "ann arbor", "chicago"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_consistent_table() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.value_at(1, 2), Value::Str("detroit".into()));
        assert_eq!(t.columns[0].data_type(), DataType::Int);
    }

    #[test]
    fn new_rejects_ragged_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let res = Table::new(
            schema,
            vec![Column::from_i64(vec![1]), Column::from_i64(vec![])],
        );
        assert!(res.is_err());
    }

    #[test]
    fn filter_and_take_preserve_order() {
        let t = sample_table();
        let filtered = t.filter(&crate::selvec::SelVec::from_bools(&[
            true, false, true, false,
        ]));
        assert_eq!(filtered.num_rows(), 2);
        assert_eq!(filtered.value_at(1, 0), Value::Int(3));
        let taken = t.take(&[3, 0]);
        assert_eq!(taken.value_at(0, 0), Value::Int(4));
        assert_eq!(taken.value_at(1, 0), Value::Int(1));
    }

    #[test]
    fn append_requires_matching_width() {
        let mut t = sample_table();
        let other = sample_table();
        t.append(&other).unwrap();
        assert_eq!(t.num_rows(), 8);
        let narrow = TableBuilder::new()
            .int_column("x", vec![1])
            .build()
            .unwrap();
        assert!(t.append(&narrow).is_err());
    }

    #[test]
    fn ascii_rendering_truncates() {
        let t = sample_table();
        let s = t.to_ascii(2);
        assert!(s.contains("4 rows total"));
        assert!(s.contains("city"));
    }

    #[test]
    fn iter_rows_and_nullable_builders() {
        let t = TableBuilder::new()
            .opt_int_column("a", vec![Some(1), None])
            .opt_float_column("b", vec![None, Some(2.5)])
            .build()
            .unwrap();
        let rows: Vec<Vec<Value>> = t.iter_rows().collect();
        assert_eq!(rows[0], vec![Value::Int(1), Value::Null]);
        assert_eq!(rows[1], vec![Value::Null, Value::Float(2.5)]);
        assert_eq!(t.columns[0].null_count(), 1);
    }
}
