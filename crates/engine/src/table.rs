//! In-memory columnar tables.
//!
//! A [`Table`] is a schema plus one `Vec<Value>` per column.  Operators fully
//! materialise their outputs; the engine targets analytical workloads of up
//! to a few million rows, which fits comfortably in memory and keeps the
//! operator implementations simple and auditable.

use crate::error::{EngineError, EngineResult};
use crate::schema::{Field, Schema};
use crate::value::{DataType, Value};

/// A column is simply an ordered vector of values.
pub type Column = Vec<Value>;

/// An in-memory columnar table (also used as the intermediate "frame" between
/// operators and as the result set returned to clients).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    pub schema: Schema,
    pub columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn empty(schema: Schema) -> Table {
        let columns = schema.fields.iter().map(|_| Vec::new()).collect();
        Table { schema, columns }
    }

    /// Creates a table from a schema and columns, validating shape.
    pub fn new(schema: Schema, columns: Vec<Column>) -> EngineResult<Table> {
        if schema.len() != columns.len() {
            return Err(EngineError::Execution(format!(
                "schema has {} fields but {} columns were provided",
                schema.len(),
                columns.len()
            )));
        }
        if let Some(first) = columns.first() {
            let n = first.len();
            if columns.iter().any(|c| c.len() != n) {
                return Err(EngineError::Execution(
                    "columns have inconsistent lengths".to_string(),
                ));
            }
        }
        Ok(Table { schema, columns })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Returns the value at (row, col).
    pub fn value(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Returns a whole row as a vector of values (cloned).
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }

    /// Returns the column with the given (bare) name.
    pub fn column_by_name(&self, name: &str) -> EngineResult<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| EngineError::ColumnNotFound(name.to_string()))?;
        Ok(&self.columns[idx])
    }

    /// Appends another table with a compatible column count (used by INSERT).
    pub fn append(&mut self, other: &Table) -> EngineResult<()> {
        if other.num_columns() != self.num_columns() {
            return Err(EngineError::TypeMismatch(format!(
                "cannot append table with {} columns into table with {}",
                other.num_columns(),
                self.num_columns()
            )));
        }
        for (dst, src) in self.columns.iter_mut().zip(other.columns.iter()) {
            dst.extend(src.iter().cloned());
        }
        Ok(())
    }

    /// Returns a new table containing only the rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Table {
        debug_assert_eq!(mask.len(), self.num_rows());
        let columns = self
            .columns
            .iter()
            .map(|c| {
                c.iter()
                    .zip(mask.iter())
                    .filter(|(_, keep)| **keep)
                    .map(|(v, _)| v.clone())
                    .collect()
            })
            .collect();
        Table { schema: self.schema.clone(), columns }
    }

    /// Returns a new table containing the rows at `indices` (in that order).
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|c| indices.iter().map(|&i| c[i].clone()).collect())
            .collect();
        Table { schema: self.schema.clone(), columns }
    }

    /// Returns the first `n` rows.
    pub fn limit(&self, n: usize) -> Table {
        let take = n.min(self.num_rows());
        let indices: Vec<usize> = (0..take).collect();
        self.take(&indices)
    }

    /// Approximate memory footprint in bytes, used by the engine profiles to
    /// model scan cost per engine.
    pub fn approx_bytes(&self) -> usize {
        let mut total = 0usize;
        for c in &self.columns {
            for v in c {
                total += match v {
                    Value::Str(s) => 24 + s.len(),
                    _ => 16,
                };
            }
        }
        total
    }

    /// Renders the table as an ASCII grid, truncated to `max_rows` rows.
    /// Useful for examples and debugging output.
    pub fn to_ascii(&self, max_rows: usize) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        let shown = self.num_rows().min(max_rows);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            let row: Vec<String> = (0..self.num_columns())
                .map(|c| format_cell(self.value(r, c)))
                .collect();
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        let header: Vec<String> = names
            .iter()
            .enumerate()
            .map(|(i, n)| format!("{:width$}", n, width = widths[i]))
            .collect();
        out.push_str(&header.join(" | "));
        out.push('\n');
        out.push_str(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-+-"));
        out.push('\n');
        for row in &cells {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, cell)| format!("{:width$}", cell, width = widths[i]))
                .collect();
            out.push_str(&line.join(" | "));
            out.push('\n');
        }
        if self.num_rows() > shown {
            out.push_str(&format!("... ({} rows total)\n", self.num_rows()));
        }
        out
    }
}

fn format_cell(v: &Value) -> String {
    match v {
        Value::Float(f) => format!("{f:.4}"),
        other => other.to_string(),
    }
}

/// A convenience builder for constructing tables column-by-column, used by
/// the data generators and tests.
#[derive(Debug, Default)]
pub struct TableBuilder {
    fields: Vec<Field>,
    columns: Vec<Column>,
}

impl TableBuilder {
    /// Creates an empty builder.
    pub fn new() -> TableBuilder {
        TableBuilder::default()
    }

    /// Adds an integer column.
    pub fn int_column(mut self, name: &str, values: Vec<i64>) -> Self {
        self.fields.push(Field::new(name, DataType::Int));
        self.columns.push(values.into_iter().map(Value::Int).collect());
        self
    }

    /// Adds a float column.
    pub fn float_column(mut self, name: &str, values: Vec<f64>) -> Self {
        self.fields.push(Field::new(name, DataType::Float));
        self.columns.push(values.into_iter().map(Value::Float).collect());
        self
    }

    /// Adds a string column.
    pub fn str_column(mut self, name: &str, values: Vec<String>) -> Self {
        self.fields.push(Field::new(name, DataType::Str));
        self.columns.push(values.into_iter().map(Value::Str).collect());
        self
    }

    /// Adds a boolean column.
    pub fn bool_column(mut self, name: &str, values: Vec<bool>) -> Self {
        self.fields.push(Field::new(name, DataType::Bool));
        self.columns.push(values.into_iter().map(Value::Bool).collect());
        self
    }

    /// Adds an already-typed column of raw values.
    pub fn value_column(mut self, name: &str, data_type: DataType, values: Vec<Value>) -> Self {
        self.fields.push(Field::new(name, data_type));
        self.columns.push(values);
        self
    }

    /// Finalises the table, validating column lengths.
    pub fn build(self) -> EngineResult<Table> {
        Table::new(Schema::new(self.fields), self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        TableBuilder::new()
            .int_column("id", vec![1, 2, 3, 4])
            .float_column("price", vec![10.0, 20.0, 30.0, 40.0])
            .str_column(
                "city",
                vec!["ann arbor", "detroit", "ann arbor", "chicago"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
            )
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_consistent_table() {
        let t = sample_table();
        assert_eq!(t.num_rows(), 4);
        assert_eq!(t.num_columns(), 3);
        assert_eq!(t.value(1, 2), &Value::Str("detroit".into()));
    }

    #[test]
    fn new_rejects_ragged_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let res = Table::new(schema, vec![vec![Value::Int(1)], vec![]]);
        assert!(res.is_err());
    }

    #[test]
    fn filter_and_take_preserve_order() {
        let t = sample_table();
        let filtered = t.filter(&[true, false, true, false]);
        assert_eq!(filtered.num_rows(), 2);
        assert_eq!(filtered.value(1, 0), &Value::Int(3));
        let taken = t.take(&[3, 0]);
        assert_eq!(taken.value(0, 0), &Value::Int(4));
        assert_eq!(taken.value(1, 0), &Value::Int(1));
    }

    #[test]
    fn append_requires_matching_width() {
        let mut t = sample_table();
        let other = sample_table();
        t.append(&other).unwrap();
        assert_eq!(t.num_rows(), 8);
        let narrow = TableBuilder::new().int_column("x", vec![1]).build().unwrap();
        assert!(t.append(&narrow).is_err());
    }

    #[test]
    fn ascii_rendering_truncates() {
        let t = sample_table();
        let s = t.to_ascii(2);
        assert!(s.contains("4 rows total"));
        assert!(s.contains("city"));
    }
}
