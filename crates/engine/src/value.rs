//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`BIGINT`).
    Int,
    /// 64-bit IEEE-754 float (`DOUBLE`).
    Float,
    /// UTF-8 string (`VARCHAR`).
    Str,
    /// Boolean (`BOOLEAN`).
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "BIGINT"),
            DataType::Float => write!(f, "DOUBLE"),
            DataType::Str => write!(f, "VARCHAR"),
            DataType::Bool => write!(f, "BOOLEAN"),
        }
    }
}

impl DataType {
    /// The common type two operands are coerced to for arithmetic and comparison.
    pub fn unify(self, other: DataType) -> DataType {
        use DataType::*;
        match (self, other) {
            (Int, Int) => Int,
            (Int, Float) | (Float, Int) | (Float, Float) => Float,
            (Bool, Bool) => Bool,
            (Str, Str) => Str,
            // fall back to string comparison for anything else
            _ => Str,
        }
    }

    /// True when the type is numeric (int or float).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

/// A dynamically-typed scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE-754 float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value (bools count as 0/1); `None` for NULL and strings.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value; floats are truncated toward zero.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(*f as i64),
            Value::Bool(b) => Some(if *b { 1 } else { 0 }),
            _ => None,
        }
    }

    /// Boolean view of the value; `None` for NULL.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            _ => None,
        }
    }

    /// String view (owned) of the value, rendering numbers; `None` for NULL.
    pub fn as_str_lossy(&self) -> Option<String> {
        match self {
            Value::Null => None,
            Value::Str(s) => Some(s.clone()),
            Value::Int(i) => Some(i.to_string()),
            Value::Float(f) => Some(f.to_string()),
            Value::Bool(b) => Some(b.to_string()),
        }
    }

    /// SQL three-valued comparison; NULL compares as `None`.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering used by ORDER BY and group-key sorting: NULLs sort first,
    /// then by type-aware comparison; NaN sorts last among floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => match (self, other) {
                (Value::Str(a), Value::Str(b)) => a.cmp(b),
                _ => {
                    let a = self.as_f64();
                    let b = other.as_f64();
                    match (a, b) {
                        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                        _ => self
                            .as_str_lossy()
                            .unwrap_or_default()
                            .cmp(&other.as_str_lossy().unwrap_or_default()),
                    }
                }
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// A hashable group-by key component: wraps a value so floats and NULLs can be
/// used as hash-map keys (floats are compared by their bit pattern).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum KeyValue {
    /// SQL NULL (NULLs group together).
    Null,
    /// Integer key (integral floats are canonicalised to this variant).
    Int(i64),
    /// Bit pattern of the f64 (canonicalised so `-0.0 == 0.0`).
    Float(u64),
    /// String key.
    Str(String),
    /// Boolean key.
    Bool(bool),
}

impl KeyValue {
    /// Converts a value to its hashable key form.
    pub fn from_value(v: &Value) -> KeyValue {
        match v {
            Value::Null => KeyValue::Null,
            Value::Int(i) => KeyValue::Int(*i),
            Value::Float(f) => {
                let canon = if *f == 0.0 { 0.0f64 } else { *f };
                // integers stored as floats should group together with Int keys
                if canon.fract() == 0.0 && canon.abs() < 9.0e18 {
                    KeyValue::Int(canon as i64)
                } else {
                    KeyValue::Float(canon.to_bits())
                }
            }
            Value::Str(s) => KeyValue::Str(s.clone()),
            Value::Bool(b) => KeyValue::Bool(*b),
        }
    }

    /// Converts the key back into a value (used to materialise group keys).
    pub fn to_value(&self) -> Value {
        match self {
            KeyValue::Null => Value::Null,
            KeyValue::Int(i) => Value::Int(*i),
            KeyValue::Float(bits) => Value::Float(f64::from_bits(*bits)),
            KeyValue::Str(s) => Value::Str(s.clone()),
            KeyValue::Bool(b) => Value::Bool(*b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion_in_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
        assert_ne!(Value::Null, Value::Int(0));
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn sql_cmp_null_propagates() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Int(1)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Str("a".into()).sql_cmp(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn total_cmp_sorts_nulls_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn key_value_groups_int_and_float_together() {
        assert_eq!(
            KeyValue::from_value(&Value::Int(5)),
            KeyValue::from_value(&Value::Float(5.0))
        );
        assert_ne!(
            KeyValue::from_value(&Value::Float(5.5)),
            KeyValue::from_value(&Value::Int(5))
        );
    }

    #[test]
    fn type_unification() {
        assert_eq!(DataType::Int.unify(DataType::Float), DataType::Float);
        assert_eq!(DataType::Int.unify(DataType::Int), DataType::Int);
        assert_eq!(DataType::Str.unify(DataType::Int), DataType::Str);
    }
}
