//! [`RemoteBackend`] — a [`Backend`] that reaches a remote VerdictDB server
//! over the crate's own wire protocol.
//!
//! This turns the serving layer into a *two-tier middleware-over-middleware*
//! deployment: a local [`verdict_core::VerdictContext`] plans and rewrites
//! queries, then ships the rendered SQL to a remote `verdict-server` through
//! [`VerdictClient`].  Every statement goes out as `BYPASS <sql>` so the
//! remote tier executes it verbatim instead of re-approximating SQL that the
//! local tier already rewrote.
//!
//! The backend deliberately advertises **no optional capabilities**: it
//! cannot observe remote writes, so [`Backend::data_version`] stays `None`
//! (answers over it are uncacheable) and [`Backend::open_block_scan`] stays
//! `None` (progressive queries fall back to one-shot execution).  Both
//! degradations are exactly the graceful paths the core layer already
//! implements for capability-poor backends, and both are observable through
//! `SHOW STATS`.

use crate::client::{ClientError, ClientResult, RemoteAnswer, VerdictClient};
use std::net::ToSocketAddrs;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;
use verdict_engine::engine::Backend;
use verdict_engine::{
    EngineError, EngineResult, ExecStats, Field, QueryResult, Schema, Table, Value,
};
use verdict_sql::dialect::{Dialect, GenericDialect};

/// A [`Backend`] implementation speaking the VerdictDB wire protocol.
///
/// The single client connection is shared behind a mutex: statement traffic
/// from one context is serialised anyway (the protocol is strictly
/// request/response), and the remote server happily accepts more connections
/// if callers want more parallelism — one `RemoteBackend` per context.
pub struct RemoteBackend {
    client: Mutex<VerdictClient>,
    identity: String,
    round_trips: AtomicU64,
}

impl RemoteBackend {
    /// Connects to a `verdict-server` at `addr` (e.g. `"127.0.0.1:4433"` or
    /// a [`std::net::SocketAddr`]).
    pub fn connect<A: ToSocketAddrs + std::fmt::Display>(addr: A) -> ClientResult<RemoteBackend> {
        let identity = format!("remote@{addr}");
        let client = VerdictClient::connect(addr)?;
        Ok(RemoteBackend {
            client: Mutex::new(client),
            identity,
            round_trips: AtomicU64::new(0),
        })
    }

    /// Wire round-trips performed so far (one per statement or probe).
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Relaxed)
    }

    /// Sends one raw statement as `BYPASS <sql>` and returns the frame.
    fn run(&self, sql: &str) -> Result<RemoteAnswer, ClientError> {
        self.round_trips.fetch_add(1, Relaxed);
        let mut client = self
            .client
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        client.exact(sql)
    }

    /// Sends one session-level statement (`SQL <stmt>`, not `BYPASS`) and
    /// ignores the response — used for best-effort hints like `SET`.
    fn run_hint(&self, stmt: &str) {
        self.round_trips.fetch_add(1, Relaxed);
        let mut client = self
            .client
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let _ = client.sql(stmt);
    }
}

/// Maps a wire failure onto the engine error type backends must speak.
fn remote_err(e: ClientError) -> EngineError {
    EngineError::Execution(format!("remote backend: {e}"))
}

/// Rebuilds an engine [`Table`] from a wire frame (the protocol ships rows;
/// the columnar constructor wants per-column value vectors, so transpose).
fn table_from_answer(answer: &RemoteAnswer) -> EngineResult<Table> {
    let fields: Vec<Field> = answer
        .columns
        .iter()
        .zip(answer.types.iter())
        .map(|(name, dt)| Field::new(name, *dt))
        .collect();
    let schema = Schema::new(fields);
    let mut columns: Vec<Vec<Value>> =
        vec![Vec::with_capacity(answer.rows.len()); answer.types.len()];
    for row in &answer.rows {
        for (i, v) in row.iter().enumerate() {
            columns[i].push(v.clone());
        }
    }
    Table::from_value_columns(schema, columns)
}

impl Backend for RemoteBackend {
    fn execute(&self, sql: &str) -> EngineResult<QueryResult> {
        let answer = self.run(sql).map_err(remote_err)?;
        Ok(QueryResult {
            table: table_from_answer(&answer)?,
            stats: ExecStats {
                rows_scanned: answer.header.rows_scanned,
                elapsed: Duration::from_micros(answer.header.elapsed_us),
            },
        })
    }

    fn table_row_count(&self, table: &str) -> EngineResult<u64> {
        let sql = format!(
            "SELECT count(*) AS c FROM {}",
            GenericDialect.quote_ident(table)
        );
        let answer = self.run(&sql).map_err(remote_err)?;
        answer
            .rows
            .first()
            .and_then(|r| r.first())
            .and_then(|v| v.as_i64())
            .map(|n| n as u64)
            .ok_or_else(|| {
                EngineError::Execution(format!("remote backend: no count row for table {table}"))
            })
    }

    fn table_exists(&self, table: &str) -> bool {
        let sql = format!(
            "SELECT * FROM {} LIMIT 1",
            GenericDialect.quote_ident(table)
        );
        self.run(&sql).is_ok()
    }

    fn name(&self) -> &'static str {
        "remote"
    }

    fn identity(&self) -> String {
        self.identity.clone()
    }

    fn dialect(&self) -> &dyn Dialect {
        // The remote tier is another VerdictDB server fronting the in-repo
        // engine, which speaks the generic dialect.
        &GenericDialect
    }

    fn backend_stats(&self) -> Vec<(String, u64)> {
        vec![("remote_round_trips".to_string(), self.round_trips())]
    }

    fn set_parallelism(&self, threads: usize) {
        self.run_hint(&format!("SET parallelism = {threads}"));
    }

    fn set_group_strategy(&self, strategy: verdict_engine::GroupStrategy) {
        use verdict_engine::GroupStrategy::*;
        let name = match strategy {
            Auto => "auto",
            Hash => "hash",
            Dict => "dict",
            Radix => "radix",
        };
        self.run_hint(&format!("SET group_strategy = {name}"));
    }

    // data_version and open_block_scan keep their trait defaults (`None`):
    // the remote tier cannot push invalidations or stream blocks over this
    // protocol, so caching and progressive execution degrade gracefully.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::VerdictServer;
    use std::sync::Arc;
    use verdict_core::{VerdictConfig, VerdictContext};
    use verdict_engine::{Engine, TableBuilder};

    fn serve() -> (crate::server::ServerHandle, Engine) {
        let engine = Engine::with_seed(77);
        let table = TableBuilder::new()
            .int_column("id", (0..500).collect())
            .float_column("price", (0..500).map(|i| i as f64 * 0.25).collect())
            .str_column("city", (0..500).map(|i| format!("c{}", i % 7)).collect())
            .build()
            .unwrap();
        engine.register_table("sales", table);
        let ctx = Arc::new(VerdictContext::new(
            Arc::new(engine.clone()),
            VerdictConfig::default(),
        ));
        let handle = VerdictServer::bind("127.0.0.1:0", ctx)
            .unwrap()
            .spawn()
            .unwrap();
        (handle, engine)
    }

    #[test]
    fn remote_backend_matches_direct_execution() {
        let (handle, engine) = serve();
        let remote = RemoteBackend::connect(handle.addr()).unwrap();
        let sql = "SELECT city, count(*) AS cnt, avg(price) AS ap \
                   FROM sales GROUP BY city ORDER BY city";
        let direct = engine.execute_sql(sql).unwrap();
        let over_wire = remote.execute(sql).unwrap();
        assert_eq!(direct.table.num_rows(), over_wire.table.num_rows());
        for row in 0..direct.table.num_rows() {
            for col in 0..direct.table.num_columns() {
                assert_eq!(
                    direct.table.value_at(row, col),
                    over_wire.table.value_at(row, col),
                    "mismatch at ({row}, {col})"
                );
            }
        }
        assert!(remote.round_trips() >= 1);
        handle.stop();
    }

    #[test]
    fn remote_backend_probes_and_capabilities() {
        let (handle, _engine) = serve();
        let remote = RemoteBackend::connect(handle.addr()).unwrap();
        assert_eq!(remote.table_row_count("sales").unwrap(), 500);
        assert!(remote.table_exists("sales"));
        assert!(!remote.table_exists("nope"));
        assert!(remote.data_version("sales").is_none());
        assert!(remote
            .open_block_scan("SELECT avg(price) FROM sales")
            .is_none());
        assert_eq!(remote.name(), "remote");
        assert!(remote.identity().starts_with("remote@"));
        let stats = remote.backend_stats();
        assert_eq!(stats[0].0, "remote_round_trips");
        assert!(stats[0].1 >= 3);
        handle.stop();
    }
}
